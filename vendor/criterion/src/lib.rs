//! Offline vendored stub of the `criterion` crate.
//!
//! The registry is unreachable in this environment, so the `harness =
//! false` bench targets link against this minimal measurement harness
//! instead. It mirrors the API subset the benches use — groups,
//! `bench_with_input` / `bench_function`, throughput annotations,
//! `criterion_group!` / `criterion_main!` — and reports a mean
//! wall-clock time per iteration on stdout. No statistics, plots, or
//! HTML reports; swap in the real crate when the build has network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Substring filter from the command line (`cargo bench -- FILTER`).
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line configuration (stub: captures an optional
    /// benchmark-name substring filter and ignores harness flags).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a closure outside of any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        self.run_one(&name, 10, None, f);
        self
    }

    fn run_one<F>(&self, id: &str, samples: usize, throughput: Option<&Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        for _ in 0..samples {
            f(&mut bencher);
        }
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters as u32
        };
        match throughput {
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                let rate = *n as f64 / mean.as_secs_f64();
                println!("bench: {id:<48} {mean:>12.2?}/iter  {rate:>14.0} elem/s");
            }
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                let rate = *n as f64 / mean.as_secs_f64();
                println!("bench: {id:<48} {mean:>12.2?}/iter  {rate:>14.0} B/s");
            }
            _ => println!("bench: {id:<48} {mean:>12.2?}/iter"),
        }
    }

    /// Prints the final summary (stub: nothing to aggregate).
    pub fn final_summary(&mut self) {}
}

/// How work per iteration is reported.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many times each bench closure is invoked.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benches with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion
            .run_one(&full, self.sample_size, throughput.as_ref(), |b| {
                f(b, input)
            });
        self
    }

    /// Benchmarks a closure with no explicit input.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let throughput = self.throughput;
        self.criterion
            .run_one(&full, self.sample_size, throughput.as_ref(), |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handed to each bench closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `routine` (the real crate runs many; one
    /// per sample keeps the offline stub fast).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Bundles bench functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_filters() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
                b.iter(|| x + 1);
                ran += 1;
            });
            g.finish();
        }
        assert_eq!(ran, 3);
    }
}
