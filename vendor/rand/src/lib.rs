//! Offline vendored stub of the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the exact API subset the workspace uses — `Rng::gen_range` over
//! integer and float ranges, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng` — with a deterministic xoshiro256++ core. It is *not*
//! a cryptographic or statistically audited generator; it only needs to
//! be fast, uniform enough for simulation, and reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open, non-empty).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Modulo bias is negligible for simulation-sized spans.
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Sign-extend both bounds to 64 bits before subtracting
                // so the span is exact even when end - start overflows
                // the narrower signed type (e.g. i8::MIN..i8::MAX).
                let span = (self.end as i64 as u64).wrapping_sub(self.start as i64 as u64);
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        // f64→f32 rounding can land exactly on 1.0; keep the range
        // half-open by rejecting the closed upper bound.
        let sample = self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start);
        if sample < self.end {
            sample
        } else {
            self.start
        }
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Generators that can be constructed from a small seed (mirrors
/// `rand::SeedableRng`, reduced to the one constructor in use).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, the standard seeding
            // procedure for the xoshiro family.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f), "{f}");
            let i = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&i));
        }
    }

    #[test]
    fn signed_ranges_wider_than_half_the_type_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let b = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&b), "{b}");
            let w = rng.gen_range(i64::MIN..i64::MAX);
            assert!(w < i64::MAX, "{w}");
        }
    }

    #[test]
    fn unsized_rng_usable_through_generics() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0usize..10)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample(&mut rng) < 10);
    }
}
