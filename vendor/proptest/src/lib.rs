//! Offline vendored stub of the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use:
//! [`Strategy`] with `prop_map`, range / tuple / array strategies,
//! `prop::collection::vec`, `prop::bool::ANY`, [`any`], the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`, and
//! [`ProptestConfig`]. Unlike the real crate there is **no shrinking**:
//! cases are sampled from a deterministic per-case RNG, so failures
//! reproduce bit-for-bit across runs, which is exactly what a golden
//! regression gate wants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for case number `case` of a run seeded by
    /// `seed` (we fix the run seed so failures always reproduce).
    pub fn for_case(seed: u64, case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(
            seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors
    /// `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].new_value(rng))
    }
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().next_u64() & 1 == 1
    }
}

use rand::RngCore as _;

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::RngCore as _;

    /// Strategy producing unbiased booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.rng().next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// Admissible length specifications for [`vec`]: an exact `usize`
    /// or a half-open `Range<usize>`.
    pub trait IntoSizeRange {
        /// Lower and upper (exclusive) bound on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for vectors of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { element, lo, hi }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.lo + 1 == self.hi {
                self.lo
            } else {
                rng.rng().gen_range(self.lo..self.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fixed run seed: failures reproduce exactly across runs and machines.
pub const RUN_SEED: u64 = 0x5052_4543_4953_4531; // "PRECISE1"

/// Runs `body` once per configured case with a deterministic RNG.
/// Called by the expansion of [`proptest!`]; not part of the public
/// proptest API.
pub fn run_cases(config: &ProptestConfig, mut body: impl FnMut(&mut TestRng, u64)) {
    let cases = match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(config.cases),
        Err(_) => config.cases,
    };
    for case in 0..u64::from(cases) {
        let mut rng = TestRng::for_case(RUN_SEED, case);
        body(&mut rng, case);
    }
}

/// Property-test entry point. Each `fn name(pat in strategy, ...)` body
/// runs [`ProptestConfig::cases`] times against freshly drawn inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // A tuple of strategies is itself a Strategy producing a
                // tuple of values, which the argument patterns
                // destructure directly.
                let strategies = ($($strat,)+);
                $crate::run_cases(&config, |rng, _case| {
                    let ($($arg,)+) =
                        $crate::Strategy::new_value(&strategies, rng);
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
