//! Allocation accounting for the zero-copy ingest path.
//!
//! The tentpole claim: parsing a TCP_TRACE log through
//! [`parse_log_iter`] + interning performs **no per-record string
//! allocations** — hostnames and programs are shared `Arc<str>`s, and
//! the borrowed [`RawRecordRef`] path allocates nothing at all. This
//! test pins that with a counting global allocator: allocation counts
//! on the hot path must stay orders of magnitude below the record
//! count, while the historical per-line owned parse allocates multiple
//! times per record.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use precisetracer::prelude::*;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Serializes entire tests: the counter is process-global, so
/// concurrently running tests (one thread per core by default) would
/// count each other's allocations — including their setup — into an
/// open measurement window. Every test takes this guard first.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn allocs_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (ALLOCS.load(Ordering::Relaxed) - before, r)
}

const LINES: usize = 10_000;

/// A log with the realistic shape: few distinct hostnames/programs,
/// many records.
fn synthetic_log() -> String {
    let mut s = String::with_capacity(LINES * 64);
    for i in 0..LINES {
        let (host, prog, port) = match i % 3 {
            0 => ("web1", "httpd", 80),
            1 => ("app1", "java", 8009),
            _ => ("db1", "mysqld", 3306),
        };
        s.push_str(&format!(
            "{} {host} {prog} {} {} SEND 10.0.0.1:{port}-10.0.0.2:9000 {}\n",
            1_000_000 + i as u64,
            1000 + (i % 7),
            2000 + (i % 13),
            100 + (i % 900),
        ));
    }
    s
}

#[test]
fn borrowed_iteration_allocates_nothing_per_record() {
    let _serial = serial();
    let text = synthetic_log();
    let (allocs, parsed) = allocs_during(|| {
        parse_log_iter(&text)
            .map(|r| r.expect("valid line").size)
            .sum::<u64>()
    });
    assert!(parsed > 0);
    assert!(
        allocs < 16,
        "borrowed parse of {LINES} records performed {allocs} allocations"
    );
}

#[test]
fn interned_parse_log_allocation_count_is_sublinear() {
    let _serial = serial();
    let text = synthetic_log();
    let (allocs, records) = allocs_during(|| parse_log(&text).expect("valid log"));
    assert_eq!(records.len(), LINES);
    // Vec growth is O(log n) reallocations; the interner allocates once
    // per distinct string (6 here). Everything else is shared.
    assert!(
        allocs < LINES / 10,
        "interned parse of {LINES} records performed {allocs} allocations \
         — the hot path must not allocate per record"
    );
    // The interning is real: equal names share one backing allocation.
    assert!(std::sync::Arc::ptr_eq(
        &records[0].hostname,
        &records[3].hostname
    ));
}

#[test]
fn per_line_owned_parse_allocates_per_record_as_baseline() {
    let _serial = serial();
    // Sanity-check the counter: the naive line-at-a-time owned parse
    // (a fresh interner per line, as `RawRecord::parse_line` must —
    // it has no session state) allocates at least once per record.
    let text = synthetic_log();
    let (allocs, total) = allocs_during(|| {
        text.lines()
            .filter(|l| !l.is_empty())
            .map(|l| RawRecord::parse_line(l).expect("valid").size)
            .sum::<u64>()
    });
    assert!(total > 0);
    assert!(
        allocs >= LINES,
        "expected the owned per-line path to allocate per record, got {allocs}"
    );
}

#[test]
fn parallel_ingest_allocation_count_is_sublinear() {
    let _serial = serial();
    // The chunked parallel scanner inherits the sequential path's
    // allocation discipline: per-chunk Vec growth, one interner per
    // chunk (few distinct strings each), thread spawns, and the final
    // concatenation — never a per-record allocation.
    let text = synthetic_log();
    let (allocs, records) = allocs_during(|| parse_log_parallel(&text, 4).expect("valid log"));
    assert_eq!(records.len(), LINES);
    assert!(
        allocs < LINES / 10,
        "parallel parse of {LINES} records performed {allocs} allocations \
         — the hot path must not allocate per record"
    );
    // Chunk results must splice in input order.
    assert!(records.windows(2).all(|w| w[0].ts <= w[1].ts));
}

#[test]
fn parallel_borrowed_scan_allocates_no_strings() {
    let _serial = serial();
    // The borrowed variant allocates only the per-chunk record vectors
    // and thread machinery: bounded, far below the record count.
    let text = synthetic_log();
    let (allocs, refs) = allocs_during(|| parse_refs_parallel(&text, 4).expect("valid log"));
    assert_eq!(refs.len(), LINES);
    assert!(
        allocs < 256,
        "borrowed parallel scan of {LINES} records performed {allocs} allocations"
    );
}

#[test]
fn classify_ref_ingest_allocates_only_on_first_sight() {
    let _serial = serial();
    let text = synthetic_log();
    let access = AccessPointSpec::new([80], ["10.0.0.1".parse().unwrap()]);
    let classifier = precisetracer::tracer::access::Classifier::new(access);
    let mut interner = Interner::new();
    // Warm the interner with the first few records.
    for r in parse_log_iter(&text).take(10) {
        let _ = classifier.classify_ref(&r.unwrap(), &mut interner);
    }
    let (allocs, n) = allocs_during(|| {
        parse_log_iter(&text)
            .skip(10)
            .map(|r| classifier.classify_ref(&r.unwrap(), &mut interner))
            .count()
    });
    assert_eq!(n, LINES - 10);
    assert!(
        allocs < 16,
        "steady-state classify_ref performed {allocs} allocations over {n} records"
    );
}
