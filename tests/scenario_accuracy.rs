//! Accuracy regression gates for the scenario families beyond the
//! paper's fixed testbed: load-balanced multi-node tiers, connection
//! pooling with entity reuse, packet loss with retransmission, and the
//! multi-frontend deployment. Each test prints the measured
//! precision/recall on failure, so a regression is immediately
//! quantified.

use precisetracer::prelude::*;

/// Runs a preset and asserts precision/recall floors against ground
/// truth, reporting the measured numbers on failure.
fn assert_accuracy(name: &str, cfg: rubis::ExperimentConfig, window: Nanos, floor: f64) {
    let out = rubis::run(cfg);
    assert!(
        out.service.completed > 10,
        "{name}: scenario too small to be meaningful ({} requests)",
        out.service.completed
    );
    let (corr, acc) = out.correlate(window).expect("valid correlator config");
    assert!(
        acc.precision() >= floor && acc.recall() >= floor,
        "{name}: precision {:.4} / recall {:.4} below the {floor} floor \
         (correct={}, false={}, missing={}, logged={}; {})",
        acc.precision(),
        acc.recall(),
        acc.correct_paths,
        acc.false_paths,
        acc.missing_paths,
        acc.logged_requests,
        corr.metrics.summary()
    );
}

#[test]
fn lb_precision_recall_floor() {
    assert_accuracy(
        "lb",
        rubis::ExperimentConfig::lb(),
        Nanos::from_millis(10),
        0.99,
    );
}

#[test]
fn pooled_precision_recall_floor() {
    assert_accuracy(
        "pooled",
        rubis::ExperimentConfig::pooled(),
        Nanos::from_millis(10),
        0.99,
    );
}

#[test]
fn lossy_1pct_precision_recall_floor() {
    // Retransmit lag spreads matching receives hundreds of ms from
    // their sends, so the lossy gate uses a window covering the RTO
    // backoff.
    assert_accuracy(
        "lossy 1%",
        rubis::ExperimentConfig::lossy(),
        Nanos::from_millis(100),
        0.95,
    );
}

#[test]
fn partial_capture_precision_recall_floor() {
    // The partial-capture family (tentpole acceptance gate): the v2
    // sniffer lane at 2% per-segment capture drop must keep
    // precision/recall ≥ 0.95 — `seq=` range arithmetic lets ingest
    // and the session router absorb the records the sniffer missed.
    assert_accuracy(
        "partial 2%",
        rubis::ExperimentConfig::partial(),
        Nanos::from_millis(10),
        0.95,
    );
}

#[test]
fn sharded_matches_batch_accuracy_on_new_scenarios() {
    // The sharded pipeline must reach the same accuracy as the batch
    // path on every new scenario — in particular on pooling, where
    // session routing must follow channel time order across entities,
    // and on partial capture, where range-based claims must absorb
    // records the sniffer missed.
    for (name, cfg, window) in [
        ("lb", rubis::ExperimentConfig::lb(), Nanos::from_millis(10)),
        (
            "pooled",
            rubis::ExperimentConfig::pooled(),
            Nanos::from_millis(10),
        ),
        (
            "lossy",
            rubis::ExperimentConfig::lossy(),
            Nanos::from_millis(100),
        ),
        (
            "lossy_v2",
            rubis::ExperimentConfig::lossy_v2(),
            Nanos::from_millis(100),
        ),
        (
            "partial",
            rubis::ExperimentConfig::partial(),
            Nanos::from_millis(10),
        ),
    ] {
        let out = rubis::run(cfg);
        let (_, batch_acc) = out.correlate(window).unwrap();
        let sharded = Pipeline::new(
            PipelineConfig::from(out.correlator_config(window)).with_mode(Mode::Sharded(4)),
        )
        .unwrap()
        .run(Source::records(out.records.clone()))
        .unwrap();
        let sharded_acc = out.truth.evaluate(&sharded.cags);
        assert_eq!(
            (
                sharded_acc.correct_paths,
                sharded_acc.false_paths,
                sharded_acc.missing_paths
            ),
            (
                batch_acc.correct_paths,
                batch_acc.false_paths,
                batch_acc.missing_paths
            ),
            "{name}: sharded accuracy diverged from batch"
        );
    }
}

#[test]
fn multi_frontend_batch_output_is_byte_identical_to_sharded() {
    // Two web frontends: batch used to assign ids in per-host BEGIN
    // delivery order while the sharded merge renumbered by global root
    // order — a documented id divergence. Batch output is now
    // canonicalized into the same root order, so even this scenario
    // must agree byte-for-byte across the two paths.
    let out = rubis::run(rubis::ExperimentConfig::multi_frontend());
    let (batch, acc) = out.correlate(Nanos::from_millis(10)).unwrap();
    assert!(acc.is_perfect(), "{acc:?}");
    let sharded = Pipeline::new(
        PipelineConfig::from(out.correlator_config(Nanos::from_millis(10)))
            .with_mode(Mode::Sharded(4)),
    )
    .unwrap()
    .run(Source::records(out.records.clone()))
    .unwrap();
    let sharded_acc = out.truth.evaluate(&sharded.cags);
    assert!(sharded_acc.is_perfect(), "{sharded_acc:?}");
    assert_eq!(
        format!("{:?}{:?}", batch.cags, batch.unfinished),
        format!("{:?}{:?}", sharded.cags, sharded.unfinished),
        "multi-frontend batch output diverged from the sharded merge"
    );
}

#[test]
fn multi_frontend_n_is_the_distributed_test_bed() {
    // Provenance: the checked-in distributed golden corpus is exactly
    // this preset's output, so `tests/golden/multi_frontend_3.log`
    // carries real ground truth, not a hand-edited approximation.
    let out = rubis::run(rubis::ExperimentConfig::multi_frontend_n(3));
    let mut text = String::new();
    for r in &out.records {
        text.push_str(&r.to_string());
        text.push('\n');
    }
    let checked_in = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/multi_frontend_3.log"
    ))
    .expect("checked-in distributed corpus");
    let body: String = checked_in
        .lines()
        .filter(|l| !l.starts_with("#!"))
        .flat_map(|l| [l, "\n"])
        .collect();
    assert_eq!(
        text, body,
        "tests/golden/multi_frontend_3.log no longer matches multi_frontend_n(3)"
    );

    // With BEGINs on three hosts, sessions straddle every router's
    // claim stream; the cluster must still be perfectly accurate and
    // byte-identical to the equivalent sharded run.
    let dist = Pipeline::new(
        PipelineConfig::from(out.correlator_config(Nanos::from_millis(10))).with_mode(
            Mode::Distributed {
                routers: 3,
                workers_per_router: 2,
            },
        ),
    )
    .unwrap()
    .run(Source::records(out.records.clone()))
    .unwrap();
    let acc = out.truth.evaluate(&dist.cags);
    assert!(acc.is_perfect(), "{acc:?}");
    let sharded = Pipeline::new(
        PipelineConfig::from(out.correlator_config(Nanos::from_millis(10)))
            .with_mode(Mode::Sharded(6)),
    )
    .unwrap()
    .run(Source::records(out.records.clone()))
    .unwrap();
    assert_eq!(
        format!("{:?}{:?}", dist.cags, dist.unfinished),
        format!("{:?}{:?}", sharded.cags, sharded.unfinished),
        "multi-frontend distributed output diverged from the sharded merge"
    );
}
