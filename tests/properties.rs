//! Property-based tests over the whole pipeline: for arbitrary
//! workloads, seeds, topology parameters and windows within the paper's
//! assumptions, tracing must stay exact and CAGs well-formed.

use precisetracer::prelude::*;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = rubis::ExperimentConfig> {
    (
        2usize..24,      // clients
        6u64..14,        // steady seconds
        0u64..4,         // mix selector (0-1 browse, 2-3 default)
        any::<u64>(),    // seed
        0i64..400,       // skew ms
        prop::bool::ANY, // noise
        1u64..200,       // window ms (chosen later)
    )
        .prop_map(|(clients, secs, mix, seed, skew, noise, _w)| {
            let mut cfg = rubis::ExperimentConfig::quick(clients, secs);
            if mix >= 2 {
                cfg.mix = rubis::Mix::default_mix();
            }
            cfg.seed = seed;
            cfg.spec = cfg.spec.with_skew_ms(skew);
            if noise {
                cfg.noise = rubis::NoiseSpec {
                    ssh_msgs_per_sec: 30.0,
                    mysql_msgs_per_sec: 60.0,
                };
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The paper's headline: 100% path accuracy, no false positives, no
    /// false negatives — for any workload within the assumptions.
    #[test]
    fn accuracy_is_always_perfect(cfg in arb_config(), window_ms in 1u64..200) {
        let out = rubis::run(cfg);
        let (corr, acc) = out.correlate(Nanos::from_millis(window_ms)).unwrap();
        prop_assert!(acc.is_perfect(), "{acc:?} ({})", corr.metrics.summary());
        // Structural invariants hold for every produced CAG.
        for cag in &corr.cags {
            prop_assert!(cag.validate().is_ok());
        }
    }

    /// Total servicing latency always equals the sum of attributed
    /// component latencies (the partition property behind Fig. 15).
    #[test]
    fn component_latencies_partition_total(seed in any::<u64>()) {
        let mut cfg = rubis::ExperimentConfig::quick(6, 6);
        cfg.seed = seed;
        let out = rubis::run(cfg);
        let (corr, _) = out.correlate(Nanos::from_millis(10)).unwrap();
        for cag in &corr.cags {
            let total = cag.total_latency().unwrap();
            let sum: u64 = cag
                .component_latencies()
                .values()
                .map(|n| n.as_nanos())
                .sum();
            prop_assert_eq!(total.as_nanos(), sum, "CAG {}", cag.id);
        }
    }

    /// The correlator is deterministic: same log, same window → same
    /// paths.
    #[test]
    fn correlation_is_deterministic(seed in any::<u64>()) {
        let mut cfg = rubis::ExperimentConfig::quick(5, 6);
        cfg.seed = seed;
        let out = rubis::run(cfg);
        let (a, _) = out.correlate(Nanos::from_millis(10)).unwrap();
        let (b, _) = out.correlate(Nanos::from_millis(10)).unwrap();
        let ta: Vec<Vec<u64>> = a.cags.iter().map(|c| c.sorted_tags()).collect();
        let tb: Vec<Vec<u64>> = b.cags.iter().map(|c| c.sorted_tags()).collect();
        prop_assert_eq!(ta, tb);
    }

    /// Isomorphic classification is stable: every CAG of the same request
    /// type with the same query count lands in the same pattern.
    #[test]
    fn patterns_are_stable_across_seeds(seed in any::<u64>()) {
        let mut cfg = rubis::ExperimentConfig::quick(8, 8);
        cfg.seed = seed;
        let out = rubis::run(cfg);
        let (corr, _) = out.correlate(Nanos::from_millis(10)).unwrap();
        let mut agg = PatternAggregator::new();
        agg.add_all(&corr.cags);
        // Browse_Only has exactly 4 structural classes.
        prop_assert!(agg.len() <= 4, "got {} patterns", agg.len());
    }
}
