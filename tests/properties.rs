//! Property-based tests over the whole pipeline: for arbitrary
//! workloads, seeds, topology parameters and windows within the paper's
//! assumptions, tracing must stay exact and CAGs well-formed.

use precisetracer::prelude::*;
use precisetracer::tracer::binfmt;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = rubis::ExperimentConfig> {
    (
        2usize..24,      // clients
        6u64..14,        // steady seconds
        0u64..4,         // mix selector (0-1 browse, 2-3 default)
        any::<u64>(),    // seed
        0i64..400,       // skew ms
        prop::bool::ANY, // noise
        1u64..200,       // window ms (chosen later)
    )
        .prop_map(|(clients, secs, mix, seed, skew, noise, _w)| {
            let mut cfg = rubis::ExperimentConfig::quick(clients, secs);
            if mix >= 2 {
                cfg.mix = rubis::Mix::default_mix();
            }
            cfg.seed = seed;
            cfg.spec = cfg.spec.with_skew_ms(skew);
            if noise {
                cfg.noise = rubis::NoiseSpec {
                    ssh_msgs_per_sec: 30.0,
                    mysql_msgs_per_sec: 60.0,
                };
            }
            cfg
        })
}

/// Runs a record batch through the [`Pipeline`] facade in the given
/// mode (the sole public entry point since the shim removal).
fn run_mode(cfg: &CorrelatorConfig, mode: Mode, records: Vec<RawRecord>) -> CorrelationOutput {
    Pipeline::new(PipelineConfig::from(cfg.clone()).with_mode(mode))
        .unwrap()
        .run(Source::records(records))
        .unwrap()
}

/// Sorted ground-truth tag sets of a CAG collection (order-insensitive
/// content fingerprint).
fn tag_sets(cags: &[Cag]) -> Vec<Vec<u64>> {
    let mut t: Vec<Vec<u64>> = cags.iter().map(|c| c.sorted_tags()).collect();
    t.sort();
    t
}

/// Sorted (pattern key, count) census of a CAG collection.
fn pattern_census(cags: &[Cag]) -> Vec<(String, u64)> {
    let agg = PatternAggregator::from_cags(cags);
    let mut p: Vec<(String, u64)> = agg
        .patterns()
        .iter()
        .map(|p| (p.key.to_string(), p.count))
        .collect();
    p.sort();
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The paper's headline: 100% path accuracy, no false positives, no
    /// false negatives — for any workload within the assumptions.
    #[test]
    fn accuracy_is_always_perfect(cfg in arb_config(), window_ms in 1u64..200) {
        let out = rubis::run(cfg);
        let (corr, acc) = out.correlate(Nanos::from_millis(window_ms)).unwrap();
        prop_assert!(acc.is_perfect(), "{acc:?} ({})", corr.metrics.summary());
        // Structural invariants hold for every produced CAG.
        for cag in &corr.cags {
            prop_assert!(cag.validate().is_ok());
        }
    }

    /// Total servicing latency always equals the sum of attributed
    /// component latencies (the partition property behind Fig. 15).
    #[test]
    fn component_latencies_partition_total(seed in any::<u64>()) {
        let mut cfg = rubis::ExperimentConfig::quick(6, 6);
        cfg.seed = seed;
        let out = rubis::run(cfg);
        let (corr, _) = out.correlate(Nanos::from_millis(10)).unwrap();
        for cag in &corr.cags {
            let total = cag.total_latency().unwrap();
            let sum: u64 = cag
                .component_latencies()
                .values()
                .map(|n| n.as_nanos())
                .sum();
            prop_assert_eq!(total.as_nanos(), sum, "CAG {}", cag.id);
        }
    }

    /// The correlator is deterministic: same log, same window → same
    /// paths.
    #[test]
    fn correlation_is_deterministic(seed in any::<u64>()) {
        let mut cfg = rubis::ExperimentConfig::quick(5, 6);
        cfg.seed = seed;
        let out = rubis::run(cfg);
        let (a, _) = out.correlate(Nanos::from_millis(10)).unwrap();
        let (b, _) = out.correlate(Nanos::from_millis(10)).unwrap();
        let ta: Vec<Vec<u64>> = a.cags.iter().map(|c| c.sorted_tags()).collect();
        let tb: Vec<Vec<u64>> = b.cags.iter().map(|c| c.sorted_tags()).collect();
        prop_assert_eq!(ta, tb);
    }

    /// Streaming-first invariant, part 1: for any record permutation
    /// *within a host* (per-host logs may arrive shuffled, e.g.
    /// concatenated per-CPU buffers), pushing the whole shuffled log
    /// through the streaming API and finishing produces exactly the
    /// batch path's CAGs on the *original* log — same count, same
    /// ground-truth tag sets, same pattern keys and counts. The
    /// insertion-sorting staging queues absorb the permutation.
    #[test]
    fn streaming_equals_batch_under_within_host_permutation(
        seed in any::<u64>(),
        noise in prop::bool::ANY,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut cfg = rubis::ExperimentConfig::quick(6, 6);
        cfg.seed = seed;
        if noise {
            cfg.noise = rubis::NoiseSpec {
                ssh_msgs_per_sec: 20.0,
                mysql_msgs_per_sec: 40.0,
            };
        }
        let out = rubis::run(cfg);
        let batch = run_mode(
            &out.correlator_config(Nanos::from_millis(10)),
            Mode::Batch,
            out.records.clone(),
        );

        // Shuffle the records of each host among that host's log slots.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let mut per_host: std::collections::BTreeMap<String, Vec<RawRecord>> =
            std::collections::BTreeMap::new();
        for r in &out.records {
            per_host.entry(r.hostname.to_string()).or_default().push(r.clone());
        }
        for records in per_host.values_mut() {
            for i in (1..records.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                records.swap(i, j);
            }
        }
        let mut cursors: std::collections::BTreeMap<String, usize> =
            per_host.keys().map(|h| (h.clone(), 0)).collect();
        let permuted: Vec<RawRecord> = out
            .records
            .iter()
            .map(|r| {
                let c = cursors.get_mut(&*r.hostname).unwrap();
                let rec = per_host[&*r.hostname][*c].clone();
                *c += 1;
                rec
            })
            .collect();

        let mut sc = Pipeline::new(
            PipelineConfig::from(out.correlator_config(Nanos::from_millis(10)))
                .with_mode(Mode::Streaming),
        )
        .unwrap()
        .session()
        .unwrap();
        for rec in permuted {
            sc.push(rec).unwrap();
        }
        let mut streamed = sc.poll().unwrap();
        let fin = sc.finish().unwrap();
        streamed.extend(fin.cags);

        prop_assert_eq!(streamed.len(), batch.cags.len());
        prop_assert_eq!(fin.unfinished.len(), batch.unfinished.len());
        prop_assert_eq!(tag_sets(&streamed), tag_sets(&batch.cags));
        prop_assert_eq!(pattern_census(&streamed), pattern_census(&batch.cags));
    }

    /// Streaming-first invariant, part 2: with per-host streams in local
    /// time order (what a real probe emits), ANY cross-host arrival
    /// interleaving and ANY poll cadence yield the batch path's CAGs —
    /// same tag sets, same pattern keys and counts. Only the emission
    /// *order* may differ, because an online ranker cannot see records
    /// that have not arrived yet.
    #[test]
    fn streaming_content_invariant_under_arrival_interleaving(
        seed in any::<u64>(),
        chunk in 1usize..48,
        noise in prop::bool::ANY,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut cfg = rubis::ExperimentConfig::quick(6, 6);
        cfg.seed = seed;
        if noise {
            cfg.noise = rubis::NoiseSpec {
                ssh_msgs_per_sec: 20.0,
                mysql_msgs_per_sec: 40.0,
            };
        }
        let out = rubis::run(cfg);
        let batch = run_mode(
            &out.correlator_config(Nanos::from_millis(10)),
            Mode::Batch,
            out.records.clone(),
        );

        // Random merge of the per-host streams (each stream kept in
        // local-time order).
        let mut rng = StdRng::seed_from_u64(seed ^ 0x517cc1b727220a95);
        let mut per_host: Vec<std::collections::VecDeque<RawRecord>> = {
            let mut m: std::collections::BTreeMap<String, std::collections::VecDeque<RawRecord>> =
                std::collections::BTreeMap::new();
            let mut sorted = out.records.clone();
            sorted.sort_by_key(|r| r.ts);
            for r in sorted {
                m.entry(r.hostname.to_string()).or_default().push_back(r);
            }
            m.into_values().collect()
        };
        let mut sc = Pipeline::new(
            PipelineConfig::from(out.correlator_config(Nanos::from_millis(10)))
                .with_mode(Mode::Streaming),
        )
        .unwrap()
        .session()
        .unwrap();
        let mut streamed = Vec::new();
        let mut pushed = 0usize;
        while !per_host.is_empty() {
            let pick = rng.gen_range(0..per_host.len());
            let rec = per_host[pick].pop_front().unwrap();
            if per_host[pick].is_empty() {
                per_host.swap_remove(pick);
            }
            sc.push(rec).unwrap();
            pushed += 1;
            if pushed.is_multiple_of(chunk) {
                streamed.extend(sc.poll().unwrap());
            }
        }
        let fin = sc.finish().unwrap();
        streamed.extend(fin.cags);

        prop_assert_eq!(streamed.len(), batch.cags.len());
        prop_assert_eq!(tag_sets(&streamed), tag_sets(&batch.cags));
        prop_assert_eq!(pattern_census(&streamed), pattern_census(&batch.cags));
    }

    /// Sharded invariant, part 1: the sharded pipeline's output is
    /// **byte-identical for every shard count** (the canonical merge
    /// erases the partition), and its CAG content equals the
    /// single-threaded batch path — same count, tag sets and patterns,
    /// with the additive counters summing exactly.
    #[test]
    fn sharded_output_equals_single_shard_for_any_shard_count(
        seed in any::<u64>(),
        shards_a in 2usize..9,
        shards_b in 2usize..9,
        noise in prop::bool::ANY,
    ) {
        let mut cfg = rubis::ExperimentConfig::quick(6, 6);
        cfg.seed = seed;
        if noise {
            cfg.noise = rubis::NoiseSpec {
                ssh_msgs_per_sec: 20.0,
                mysql_msgs_per_sec: 40.0,
            };
        }
        let out = rubis::run(cfg);
        let config = out.correlator_config(Nanos::from_millis(10));
        let batch = run_mode(&config, Mode::Batch, out.records.clone());
        let single = run_mode(&config, Mode::Sharded(1), out.records.clone());
        let render = |o: &CorrelationOutput| {
            format!("{:?}\n{:?}", o.cags, o.unfinished)
        };
        for shards in [shards_a, shards_b] {
            let sharded = run_mode(&config, Mode::Sharded(shards), out.records.clone());
            // Determinism across shard counts: full byte equality,
            // ids and stream order included.
            prop_assert_eq!(
                render(&sharded),
                render(&single),
                "shards={} diverged from shards=1",
                shards
            );
            // Content equality with the single-threaded batch path.
            prop_assert_eq!(sharded.cags.len(), batch.cags.len());
            prop_assert_eq!(tag_sets(&sharded.cags), tag_sets(&batch.cags));
            prop_assert_eq!(pattern_census(&sharded.cags), pattern_census(&batch.cags));
            // Additive counters sum exactly across shards.
            prop_assert_eq!(sharded.metrics.records_in, batch.metrics.records_in);
            prop_assert_eq!(sharded.metrics.filtered_out, batch.metrics.filtered_out);
            prop_assert_eq!(sharded.metrics.cags_finished, batch.metrics.cags_finished);
            prop_assert_eq!(sharded.metrics.cags_unfinished, batch.metrics.cags_unfinished);
            prop_assert_eq!(
                sharded.metrics.ranker.noise_discards,
                batch.metrics.ranker.noise_discards
            );
            for cag in &sharded.cags {
                prop_assert!(cag.validate().is_ok());
            }
        }
    }

    /// Distributed invariant: a cluster of `R` router peers hosting
    /// `W` shard workers each — claims crossing a process-style wire
    /// boundary with incremental string interning — is byte-identical
    /// to single-process `Mode::Sharded(R × W)`, over random seeds,
    /// router counts and workers-per-router.
    #[test]
    fn distributed_output_equals_sharded_for_any_topology(
        seed in any::<u64>(),
        routers_ix in 0usize..3,
        wpr in 1usize..4,
        noise in prop::bool::ANY,
    ) {
        let routers = [1usize, 2, 4][routers_ix];
        let mut cfg = rubis::ExperimentConfig::quick(6, 6);
        cfg.seed = seed;
        if noise {
            cfg.noise = rubis::NoiseSpec {
                ssh_msgs_per_sec: 20.0,
                mysql_msgs_per_sec: 40.0,
            };
        }
        let out = rubis::run(cfg);
        let config = out.correlator_config(Nanos::from_millis(10));
        let sharded = run_mode(&config, Mode::Sharded(routers * wpr), out.records.clone());
        let dist = run_mode(
            &config,
            Mode::Distributed { routers, workers_per_router: wpr },
            out.records.clone(),
        );
        let render = |o: &CorrelationOutput| {
            format!("{:?}\n{:?}", o.cags, o.unfinished)
        };
        prop_assert_eq!(
            render(&dist),
            render(&sharded),
            "distributed({}x{}) diverged from sharded({})",
            routers, wpr, routers * wpr
        );
        // The absorbed cluster metrics must match the sharded merge
        // exactly (wall time aside).
        prop_assert_eq!(dist.metrics.records_in, sharded.metrics.records_in);
        prop_assert_eq!(dist.metrics.filtered_out, sharded.metrics.filtered_out);
        prop_assert_eq!(dist.metrics.cags_finished, sharded.metrics.cags_finished);
        prop_assert_eq!(dist.metrics.cags_unfinished, sharded.metrics.cags_unfinished);
        prop_assert_eq!(
            dist.metrics.ranker.noise_discards,
            sharded.metrics.ranker.noise_discards
        );
        prop_assert_eq!(dist.metrics.engine.delivered, sharded.metrics.engine.delivered);
    }

    /// Sharded invariant, part 2: the streaming push path — records
    /// arriving in any per-host-ordered interleaving, in arbitrary
    /// chunk sizes with flushes between chunks — produces exactly the
    /// one-shot batch entry point's bytes. Session routing is a pure
    /// function of the per-entity sequences and per-channel claim
    /// FIFOs, so arrival interleaving cannot change the partition.
    #[test]
    fn sharded_streaming_chunks_equal_one_shot(
        seed in any::<u64>(),
        shards in 1usize..6,
        chunk in 1usize..4096,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut cfg = rubis::ExperimentConfig::quick(5, 6);
        cfg.seed = seed;
        let out = rubis::run(cfg);
        let config = out.correlator_config(Nanos::from_millis(10));
        let oneshot = run_mode(&config, Mode::Sharded(shards), out.records.clone());

        // Random cross-host interleaving, per-host order preserved.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2545f4914f6cdd1d);
        let mut per_host: Vec<std::collections::VecDeque<RawRecord>> = {
            let mut m: std::collections::BTreeMap<String, std::collections::VecDeque<RawRecord>> =
                std::collections::BTreeMap::new();
            let mut sorted = out.records.clone();
            sorted.sort_by_key(|r| r.ts);
            for r in sorted {
                m.entry(r.hostname.to_string()).or_default().push_back(r);
            }
            m.into_values().collect()
        };
        let mut sc = Pipeline::new(PipelineConfig::from(config).with_mode(Mode::Sharded(shards)))
            .unwrap()
            .session()
            .unwrap();
        let mut pushed = 0usize;
        while !per_host.is_empty() {
            let pick = rng.gen_range(0..per_host.len());
            let rec = per_host[pick].pop_front().unwrap();
            if per_host[pick].is_empty() {
                per_host.swap_remove(pick);
            }
            sc.push(rec).unwrap();
            pushed += 1;
            if pushed.is_multiple_of(chunk) {
                sc.poll().unwrap();
            }
        }
        let streamed = sc.finish().unwrap();
        prop_assert_eq!(
            format!("{:?}{:?}", streamed.cags, streamed.unfinished),
            format!("{:?}{:?}", oneshot.cags, oneshot.unfinished)
        );
        prop_assert_eq!(streamed.metrics.records_in, oneshot.metrics.records_in);
        prop_assert_eq!(
            streamed.metrics.ranker.noise_discards,
            oneshot.metrics.ranker.noise_discards
        );
    }

    /// Retransmission invariance: for any lossy-run log, deduplicating
    /// the sniffer-marked retransmitted byte-ranges before correlation
    /// yields exactly the CAG set of correlating the raw log — the
    /// correlator's ingest dedup is equivalent to the standalone
    /// pre-pass, in every mode (batch and sharded).
    #[test]
    fn retransmission_dedup_is_correlation_invariant(
        seed in any::<u64>(),
        loss_millis in 5u64..25, // 0.5%..2.5% per-segment loss
    ) {
        let mut cfg = rubis::ExperimentConfig::lossy_at(loss_millis as f64 / 1000.0);
        cfg.seed = seed;
        cfg.clients = 6;
        cfg.phases = rubis::Phases::quick(6);
        let out = rubis::run(cfg);
        let config = out.correlator_config(Nanos::from_millis(100));
        let raw = run_mode(&config, Mode::Batch, out.records.clone());
        let deduped_records = dedup_retransmissions(out.records.clone());
        prop_assert!(
            deduped_records.len() <= out.records.len(),
            "dedup never adds records"
        );
        let deduped = run_mode(&config, Mode::Batch, deduped_records.clone());
        prop_assert_eq!(raw.cags.len(), deduped.cags.len());
        prop_assert_eq!(tag_sets(&raw.cags), tag_sets(&deduped.cags));
        prop_assert_eq!(pattern_census(&raw.cags), pattern_census(&deduped.cags));
        prop_assert_eq!(
            raw.metrics.retrans_dropped,
            (out.records.len() - deduped_records.len()) as u64
        );
        // The sharded reader performs the same dedup.
        let sharded = run_mode(&config, Mode::Sharded(3), out.records.clone());
        prop_assert_eq!(sharded.metrics.retrans_dropped, raw.metrics.retrans_dropped);
        prop_assert_eq!(tag_sets(&sharded.cags), tag_sets(&raw.cags));
    }

    /// Shard-count byte-equality holds on all three new scenario
    /// families: replicated tiers behind a load balancer, connection
    /// pooling with entity reuse, and lossy links with retransmission.
    #[test]
    fn sharded_bytes_are_shard_count_invariant_on_new_scenarios(
        seed in any::<u64>(),
        scenario in 0usize..3,
        shards in 2usize..6,
    ) {
        let mut cfg = match scenario {
            0 => rubis::ExperimentConfig::lb(),
            1 => rubis::ExperimentConfig::pooled(),
            _ => rubis::ExperimentConfig::lossy(),
        };
        cfg.seed = seed;
        cfg.clients = 8;
        cfg.phases = rubis::Phases::quick(6);
        let out = rubis::run(cfg);
        let config = out.correlator_config(Nanos::from_millis(100));
        let single = run_mode(&config, Mode::Sharded(1), out.records.clone());
        let sharded = run_mode(&config, Mode::Sharded(shards), out.records.clone());
        prop_assert_eq!(
            format!("{:?}{:?}", sharded.cags, sharded.unfinished),
            format!("{:?}{:?}", single.cags, single.unfinished),
            "scenario {} shards {} diverged", scenario, shards
        );
        prop_assert_eq!(sharded.metrics.records_in, single.metrics.records_in);
        prop_assert_eq!(sharded.metrics.retrans_dropped, single.metrics.retrans_dropped);
    }

    /// TCP_TRACE v2 render→parse round-trip: any record — any
    /// combination of the `seq=` and `retrans` trailing attributes —
    /// renders to a line that parses back to the identical record
    /// (modulo the text format's out-of-band ground-truth tag).
    #[test]
    fn v2_record_render_parse_roundtrip(
        ts in any::<u64>(),
        ids in any::<u64>(),
        flags in 0u8..8,
        a in any::<u32>(),
        b in any::<u32>(),
        ports in any::<u32>(),
        size in any::<u64>(),
        seq_val in any::<u64>(),
    ) {
        let (pid, tid) = ((ids >> 32) as u32, ids as u32);
        let (pa, pb) = ((ports >> 16) as u16, ports as u16);
        let send = flags & 1 != 0;
        let retrans = flags & 2 != 0;
        let seq = (flags & 4 != 0).then_some(seq_val);
        let rec = RawRecord {
            ts: LocalTime::from_nanos(ts),
            hostname: "node-1".into(),
            program: "prog.x".into(),
            pid,
            tid,
            op: if send { RawOp::Send } else { RawOp::Receive },
            src: EndpointV4::new(std::net::Ipv4Addr::from(a), pa),
            dst: EndpointV4::new(std::net::Ipv4Addr::from(b), pb),
            size,
            tag: 0,
            retrans,
            seq,
        };
        let line = rec.to_string();
        let parsed = RawRecord::parse_line(&line).expect("rendered line must parse");
        prop_assert_eq!(parsed, rec);
    }

    /// The Pipeline facade's modes agree on the partial-capture family:
    /// sharded output is byte-identical for every shard count **and to
    /// the batch mode** (batch CAGs are canonicalized into the sharded
    /// merge's root order), and streaming CAG content (tags, patterns)
    /// matches too — capture gaps must not desynchronize the session
    /// router.
    #[test]
    fn pipeline_modes_agree_on_partial_capture(
        seed in any::<u64>(),
        drop_millis in 0u64..40, // 0%..4% per-segment capture drop
        shards in 2usize..6,
    ) {
        let mut cfg = rubis::ExperimentConfig::partial_at(drop_millis as f64 / 1000.0);
        cfg.seed = seed;
        cfg.clients = 6;
        cfg.phases = rubis::Phases::quick(6);
        let out = rubis::run(cfg);
        let base = PipelineConfig::from(out.correlator_config(Nanos::from_millis(10)));
        let batch = Pipeline::new(base.clone()).unwrap()
            .run(Source::records(out.records.clone())).unwrap();
        let streaming = Pipeline::new(base.clone().with_mode(Mode::Streaming)).unwrap()
            .run(Source::records(out.records.clone())).unwrap();
        let single = Pipeline::new(base.clone().with_mode(Mode::Sharded(1))).unwrap()
            .run(Source::records(out.records.clone())).unwrap();
        let sharded = Pipeline::new(base.clone().with_mode(Mode::Sharded(shards))).unwrap()
            .run(Source::records(out.records.clone())).unwrap();
        prop_assert_eq!(
            format!("{:?}{:?}", sharded.cags, sharded.unfinished),
            format!("{:?}{:?}", single.cags, single.unfinished),
            "shard count must not change bytes"
        );
        prop_assert_eq!(
            format!("{:?}{:?}", sharded.cags, sharded.unfinished),
            format!("{:?}{:?}", batch.cags, batch.unfinished),
            "batch and sharded must agree byte-for-byte"
        );
        prop_assert_eq!(tag_sets(&streaming.cags), tag_sets(&batch.cags));
        prop_assert_eq!(pattern_census(&streaming.cags), pattern_census(&batch.cags));
        prop_assert_eq!(sharded.metrics.v2_records, batch.metrics.v2_records);
        prop_assert_eq!(sharded.metrics.seq_gaps, batch.metrics.seq_gaps);
    }

    /// Parallel ingest is observationally identical to the sequential
    /// parser for arbitrary generated corpora, thread counts and v1/v2
    /// mixes: the chunked scanner must agree record-for-record with
    /// `parse_log`, including when records straddle chunk boundaries.
    #[test]
    fn parallel_ingest_equals_sequential_parse(
        seed in any::<u64>(),
        threads in 2usize..9,
        drop_millis in 0u64..30,
    ) {
        let mut cfg = rubis::ExperimentConfig::partial_at(drop_millis as f64 / 1000.0);
        cfg.seed = seed;
        cfg.clients = 4;
        cfg.phases = rubis::Phases::quick(4);
        let out = rubis::run(cfg);
        let mut text = String::new();
        for r in &out.records {
            text.push_str(&r.to_string());
            text.push('\n');
        }
        let sequential = parse_log(&text).unwrap();
        let parallel = parse_log_parallel(&text, threads).unwrap();
        prop_assert_eq!(parallel, sequential);
        // Borrowed scan agrees too.
        let refs = parse_refs_parallel(&text, threads).unwrap();
        let seq_refs: Vec<RawRecordRef<'_>> =
            parse_log_iter(&text).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(refs, seq_refs);
    }

    /// PTBIN round-trip: rendering a corpus to TCP_TRACE text, encoding
    /// it to PTBIN and decoding back renders **byte-identical** text —
    /// for v1-only, retrans-marked and seq-carrying v2 corpora, any
    /// seed, and any encode/decode thread count.
    #[test]
    fn ptbin_text_roundtrip_is_byte_identical(
        seed in any::<u64>(),
        scenario in 0usize..3,
        enc_threads in 1usize..9,
        dec_threads in 1usize..9,
    ) {
        let mut cfg = match scenario {
            0 => rubis::ExperimentConfig::partial_at(0.02), // v2 seq= lane
            1 => rubis::ExperimentConfig::lossy(),          // v1 retrans markers
            _ => rubis::ExperimentConfig::quick(4, 4),      // plain v1
        };
        cfg.seed = seed;
        cfg.clients = 4;
        cfg.phases = rubis::Phases::quick(4);
        let out = rubis::run(cfg);
        let mut text = String::new();
        for r in &out.records {
            text.push_str(&r.to_string());
            text.push('\n');
        }
        let bin = binfmt::encode_text(&text, enc_threads).unwrap();
        let decoded = binfmt::decode_refs_parallel(&bin, dec_threads).unwrap();
        let mut back = String::with_capacity(text.len());
        for r in &decoded {
            back.push_str(&r.to_string());
            back.push('\n');
        }
        prop_assert_eq!(back, text);
        // And the owned decode path agrees with the borrowed one.
        let owned = binfmt::decode_records(&bin).unwrap();
        prop_assert_eq!(owned.len(), decoded.len());
        for (o, d) in owned.iter().zip(&decoded) {
            prop_assert_eq!(&o.as_record_ref(), d);
        }
    }

    /// Isomorphic classification is stable: every CAG of the same request
    /// type with the same query count lands in the same pattern.
    #[test]
    fn patterns_are_stable_across_seeds(seed in any::<u64>()) {
        let mut cfg = rubis::ExperimentConfig::quick(8, 8);
        cfg.seed = seed;
        let out = rubis::run(cfg);
        let (corr, _) = out.correlate(Nanos::from_millis(10)).unwrap();
        let mut agg = PatternAggregator::new();
        agg.add_all(&corr.cags);
        // Browse_Only has exactly 4 structural classes.
        prop_assert!(agg.len() <= 4, "got {} patterns", agg.len());
    }
}

/// Batch-vs-sharded *byte* equality on gap-damaged corpora, swept over
/// 100 seeds: the canonicalized batch emission order (root sort key +
/// sequential ids) must coincide with the sharded merge for every
/// capture-gap pattern, not just the proptest sample.
#[test]
fn batch_equals_sharded_bytes_on_gap_damaged_corpora_for_100_seeds() {
    for seed in 0u64..100 {
        let drop = 0.001 + (seed % 37) as f64 * 0.001; // 0.1%..3.7%
        let mut cfg = rubis::ExperimentConfig::partial_at(drop);
        cfg.seed = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed);
        cfg.clients = 4;
        cfg.phases = rubis::Phases::quick(4);
        let out = rubis::run(cfg);
        let base = PipelineConfig::from(out.correlator_config(Nanos::from_millis(10)));
        let shards = 2 + (seed % 4) as usize;
        let batch = Pipeline::new(base.clone())
            .unwrap()
            .run(Source::records(out.records.clone()))
            .unwrap();
        let sharded = Pipeline::new(base.with_mode(Mode::Sharded(shards)))
            .unwrap()
            .run(Source::records(out.records.clone()))
            .unwrap();
        assert_eq!(
            format!("{:?}{:?}", batch.cags, batch.unfinished),
            format!("{:?}{:?}", sharded.cags, sharded.unfinished),
            "seed {seed} (drop {drop}, shards {shards}): batch and sharded bytes diverged"
        );
    }
}

/// The tentpole's dedup re-expression, pinned on the lossy corpus
/// (`lossy_p01`'s scenario family captured through the v2 sniffer
/// lane): deduplicating by `seq=` range arithmetic produces output
/// **byte-identical** to trusting the v1 `retrans` marker — offset
/// analysis at ingest drops exactly the records the capture frontend
/// would have flagged. Checked for the preset seed and two others, in
/// batch and sharded mode.
#[test]
fn seq_range_dedup_matches_marker_dedup_on_lossy_corpus() {
    for seed in [0x105_5e5u64, 1, 42] {
        let mut cfg = rubis::ExperimentConfig::lossy_v2();
        cfg.seed = seed;
        let out = rubis::run(cfg);
        let marked = out.records.iter().filter(|r| r.retrans).count() as u64;
        assert!(marked > 0, "seed {seed:#x}: no retransmissions to dedup");
        // Marker run: strip every seq= so ingest falls back to v1.
        let stripped: Vec<RawRecord> = out
            .records
            .iter()
            .cloned()
            .map(|mut r| {
                r.seq = None;
                r
            })
            .collect();
        for mode in [Mode::Batch, Mode::Sharded(3)] {
            let p = Pipeline::new(
                PipelineConfig::from(out.correlator_config(Nanos::from_millis(100)))
                    .with_mode(mode),
            )
            .unwrap();
            let by_range = p.run(Source::records(out.records.clone())).unwrap();
            let by_marker = p.run(Source::records(stripped.clone())).unwrap();
            assert_eq!(
                format!("{:?}{:?}", by_range.cags, by_range.unfinished),
                format!("{:?}{:?}", by_marker.cags, by_marker.unfinished),
                "seed {seed:#x} {mode:?}: range dedup diverged from marker dedup"
            );
            assert_eq!(by_range.metrics.retrans_dropped, marked);
            assert_eq!(by_range.metrics.seq_dedup_ranges, marked);
            assert_eq!(by_marker.metrics.retrans_dropped, marked);
            assert_eq!(by_marker.metrics.seq_dedup_ranges, 0);
        }
    }
}

/// The standalone pre-pass and the in-pipeline ingest dedup stay
/// equivalent for v2 corpora: correlating `dedup_retransmissions`'s
/// output equals correlating the raw v2 log.
#[test]
fn v2_dedup_prepass_equals_ingest_dedup() {
    let out = rubis::run(rubis::ExperimentConfig::lossy_v2());
    let p = Pipeline::new(PipelineConfig::from(
        out.correlator_config(Nanos::from_millis(100)),
    ))
    .unwrap();
    let raw = p.run(Source::records(out.records.clone())).unwrap();
    let pre = dedup_retransmissions(out.records.clone());
    assert!(pre.len() < out.records.len());
    let deduped = p.run(Source::records(pre)).unwrap();
    assert_eq!(tag_sets(&raw.cags), tag_sets(&deduped.cags));
    assert_eq!(raw.cags.len(), deduped.cags.len());
}

/// Torn-tail robustness (live sources): feeding a corpus to the
/// incremental ingest primitives in arbitrary chunkings reproduces the
/// one-shot parse exactly — text via `split_complete_lines` + carry,
/// PTBIN via `binfmt::StreamDecoder` — so a tailer polling a growing
/// file can cut reads anywhere (mid-line, mid-cell, mid-header) and
/// never lose or corrupt a record.
#[test]
fn incremental_reparse_equals_one_shot_for_arbitrary_chunkings() {
    use precisetracer::tracer::ingest::split_complete_lines;
    use precisetracer::tracer::raw::parse_log;

    let out = rubis::run(rubis::ExperimentConfig::quick(4, 4));
    let text: String = out.records.iter().map(|r| format!("{r}\n")).collect();
    let bin = binfmt::encode_text(&text, 1).unwrap();
    let want_text = parse_log(&text).unwrap();
    let want_bin = binfmt::decode_records(&bin).unwrap();

    let mut lcg = 0x9e37_79b9_7f4a_7c15u64;
    let mut next_chunk = |max: usize| {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (lcg >> 33) as usize % max + 1
    };

    for max_chunk in [1usize, 7, 53, 256, 4096] {
        // Text: carry the torn tail across read boundaries.
        let bytes = text.as_bytes();
        let (mut got, mut carry, mut i) = (Vec::new(), Vec::<u8>::new(), 0usize);
        while i < bytes.len() {
            let n = next_chunk(max_chunk).min(bytes.len() - i);
            carry.extend_from_slice(&bytes[i..i + n]);
            i += n;
            let (done, torn) = split_complete_lines(&carry);
            let complete = std::str::from_utf8(done).unwrap();
            got.extend(parse_log(complete).unwrap());
            carry = torn.to_vec();
        }
        got.extend(parse_log(std::str::from_utf8(&carry).unwrap()).unwrap());
        assert_eq!(got, want_text, "text max_chunk={max_chunk}");

        // Binary: the stream decoder buffers torn fragments itself.
        let (mut got, mut dec, mut i) = (Vec::new(), binfmt::StreamDecoder::new(), 0usize);
        while i < bin.len() {
            let n = next_chunk(max_chunk).min(bin.len() - i);
            dec.push(&bin[i..i + n]);
            got.extend(dec.drain().unwrap());
            i += n;
        }
        assert_eq!(got, want_bin, "binary max_chunk={max_chunk}");
        assert!(dec.is_clean(), "binary max_chunk={max_chunk}");
    }
}
