//! Integration tests for the `pt` command-line tool: the end-user
//! workflow of simulating (or capturing) a TCP_TRACE log and analyzing
//! it from the shell.

use std::process::Command;

fn pt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pt"))
}

/// A temp-file path that is removed when dropped, so failing tests
/// don't leave artifacts behind in the system temp directory.
struct TmpFile(std::path::PathBuf);

impl TmpFile {
    fn new(name: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("pt-cli-test-{}-{name}", std::process::id()));
        TmpFile(p)
    }

    fn as_str(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TmpFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

const INTERNAL: &str = "10.0.0.1,10.0.0.2,10.0.0.3";

#[test]
fn simulate_correlate_patterns_diff_roundtrip() {
    let log = TmpFile::new("trace.log");
    let dot = TmpFile::new("pattern.dot");

    // simulate
    let out = pt()
        .args([
            "simulate",
            "--clients",
            "10",
            "--seconds",
            "8",
            "--seed",
            "3",
        ])
        .args(["--out", log.as_str()])
        .output()
        .expect("run pt simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&log.0).unwrap();
    assert!(text.lines().count() > 100, "log should have records");

    // correlate
    let out = pt()
        .args([
            "correlate",
            log.as_str(),
            "--port",
            "80",
            "--internal",
            INTERNAL,
        ])
        .output()
        .expect("run pt correlate");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("causal paths"), "{stdout}");
    assert!(stdout.contains("mean request latency"), "{stdout}");

    // patterns + dot export
    let out = pt()
        .args([
            "patterns",
            log.as_str(),
            "--port",
            "80",
            "--internal",
            INTERNAL,
        ])
        .args(["--dot", dot.as_str()])
        .output()
        .expect("run pt patterns");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("patterns over"), "{stdout}");
    assert!(stdout.contains("httpd2java"), "{stdout}");
    let dot_text = std::fs::read_to_string(&dot.0).unwrap();
    assert!(dot_text.starts_with("digraph"));

    // diff against itself: no significant change
    let out = pt()
        .args(["diff", log.as_str(), log.as_str()])
        .args(["--port", "80", "--internal", INTERNAL])
        .output()
        .expect("run pt diff");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no significant change"), "{stdout}");
}

fn stderr_of(args: &[&str]) -> String {
    let out = pt().args(args).output().expect("run pt");
    assert!(!out.status.success(), "expected failure for {args:?}");
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn no_arguments_prints_usage_to_stderr() {
    let err = stderr_of(&[]);
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn unknown_command_names_itself() {
    let err = stderr_of(&["frobnicate"]);
    assert!(err.contains("unknown command"), "{err}");
    assert!(err.contains("frobnicate"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn missing_required_flags_are_reported_by_name() {
    let err = stderr_of(&["correlate"]);
    assert!(err.contains("missing log file"), "{err}");
    let err = stderr_of(&["correlate", "/nonexistent.log"]);
    assert!(err.contains("missing --port"), "{err}");
    let err = stderr_of(&["correlate", "/nonexistent.log", "--port", "80"]);
    assert!(err.contains("missing --internal"), "{err}");
    let err = stderr_of(&["simulate", "--clients", "5"]);
    assert!(err.contains("missing --out"), "{err}");
    let err = stderr_of(&["simulate"]);
    assert!(err.contains("missing --clients"), "{err}");
}

#[test]
fn malformed_flag_values_are_reported_by_name() {
    let err = stderr_of(&[
        "correlate",
        "/nonexistent.log",
        "--port",
        "eighty",
        "--internal",
        INTERNAL,
    ]);
    assert!(err.contains("bad --port"), "{err}");
    let err = stderr_of(&[
        "correlate",
        "/nonexistent.log",
        "--port",
        "80",
        "--internal",
        "10.0.0.999",
    ]);
    assert!(err.contains("bad --internal"), "{err}");
    let err = stderr_of(&[
        "correlate",
        "/nonexistent.log",
        "--port",
        "80",
        "--internal",
        INTERNAL,
        "--window-ms",
        "soon",
    ]);
    assert!(err.contains("bad --window-ms"), "{err}");
}

#[test]
fn adaptive_window_and_memory_budget_flags_work() {
    let log = TmpFile::new("adaptive.log");
    let out = pt()
        .args([
            "simulate",
            "--clients",
            "8",
            "--seconds",
            "8",
            "--seed",
            "9",
        ])
        .args(["--out", log.as_str()])
        .output()
        .expect("run pt simulate");
    assert!(out.status.success());

    // Adaptive windowing on a real log: must correlate and report the
    // adaptive-window activity line.
    let out = pt()
        .args(["correlate", log.as_str(), "--port", "80"])
        .args(["--internal", INTERNAL])
        .args(["--adaptive-window"])
        .output()
        .expect("run pt correlate --adaptive-window");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("causal paths"), "{stdout}");
    assert!(stdout.contains("adaptive window:"), "{stdout}");

    // A generous budget changes nothing; the run still succeeds.
    let out = pt()
        .args(["correlate", log.as_str(), "--port", "80"])
        .args(["--internal", INTERNAL])
        .args(["--memory-budget", "64m"])
        .output()
        .expect("run pt correlate --memory-budget");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("causal paths"), "{stdout}");

    // Malformed budget is reported by name.
    let err = stderr_of(&[
        "correlate",
        log.as_str(),
        "--port",
        "80",
        "--internal",
        INTERNAL,
        "--memory-budget",
        "lots",
    ]);
    assert!(err.contains("bad --memory-budget"), "{err}");
}

#[test]
fn sharded_correlation_flags_work_and_are_order_insensitive() {
    let log = TmpFile::new("sharded.log");
    let out = pt()
        .args([
            "simulate",
            "--clients",
            "10",
            "--seconds",
            "8",
            "--seed",
            "17",
        ])
        .args(["--out", log.as_str()])
        .output()
        .expect("run pt simulate");
    assert!(out.status.success());

    // Patterns output is content-deterministic, so the sharded pipeline
    // must reproduce the single-threaded bytes for any shard count —
    // and flag placement before/after the positional must not matter.
    let baseline = pt()
        .args([
            "patterns",
            log.as_str(),
            "--port",
            "80",
            "--internal",
            INTERNAL,
        ])
        .output()
        .expect("run pt patterns");
    assert!(baseline.status.success());
    for shard_args in [
        vec![
            "patterns",
            log.as_str(),
            "--port",
            "80",
            "--internal",
            INTERNAL,
            "--shards",
            "4",
        ],
        // Same flags, interleaved around the positional argument.
        vec![
            "patterns",
            "--shards",
            "4",
            "--port",
            "80",
            log.as_str(),
            "--internal",
            INTERNAL,
        ],
        // Auto shard count.
        vec![
            "patterns",
            log.as_str(),
            "--port",
            "80",
            "--internal",
            INTERNAL,
            "--shards",
            "0",
        ],
    ] {
        let sharded = pt().args(&shard_args).output().expect("run pt patterns");
        assert!(
            sharded.status.success(),
            "{}",
            String::from_utf8_lossy(&sharded.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&sharded.stdout),
            String::from_utf8_lossy(&baseline.stdout),
            "sharded pattern output diverged for {shard_args:?}"
        );
    }

    // correlate accepts the sealing-latency bound alongside shards.
    let out = pt()
        .args(["correlate", log.as_str(), "--port", "80"])
        .args(["--internal", INTERNAL])
        .args(["--shards", "2", "--max-seal-lag", "128"])
        .output()
        .expect("run pt correlate --shards --max-seal-lag");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("causal paths"), "{stdout}");
}

#[test]
fn distributed_correlation_flags_work() {
    let log = TmpFile::new("distributed.log");
    let out = pt()
        .args(["simulate", "--clients", "10", "--seconds", "8"])
        .args(["--seed", "17", "--out", log.as_str()])
        .output()
        .expect("run pt simulate");
    assert!(out.status.success());

    let correlate = |extra: &[&str]| {
        let out = pt()
            .args(["correlate", log.as_str(), "--port", "80"])
            .args(["--internal", INTERNAL])
            .args(extra)
            .output()
            .expect("run pt correlate");
        assert!(
            out.status.success(),
            "correlate {extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        strip_wall(&String::from_utf8_lossy(&out.stdout))
    };

    // Spawn transport: `--routers N` forks router children of the pt
    // binary itself; bytes must match `--shards N` exactly.
    let shards2 = correlate(&["--shards", "2"]);
    assert_eq!(
        correlate(&["--routers", "2"]),
        shards2,
        "--routers 2 diverged from --shards 2"
    );
    assert_eq!(
        correlate(&["--routers", "2", "--workers-per-router", "2"]),
        correlate(&["--shards", "4"]),
        "--routers 2 --workers-per-router 2 diverged from --shards 4"
    );

    // TCP transport: real `pt router --listen` daemons on loopback.
    let mut routers = Vec::new();
    let mut addrs = Vec::new();
    let mut banners = Vec::new();
    for _ in 0..2 {
        let mut child = pt()
            .args(["router", "--listen", "127.0.0.1:0"])
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn pt router");
        // The daemon announces its bound address on stderr first. The
        // reader must stay alive for the daemon's lifetime — closing
        // the pipe would EPIPE its later log lines.
        use std::io::BufRead as _;
        let mut banner = std::io::BufReader::new(child.stderr.take().unwrap());
        let mut line = String::new();
        banner.read_line(&mut line).expect("read router banner");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("addr in router banner")
            .to_string();
        assert!(addr.starts_with("127.0.0.1:"), "banner: {line:?}");
        addrs.push(addr);
        banners.push(banner);
        routers.push(child);
    }
    let tcp = correlate(&["--routers", "2", "--router-addr", &addrs.join(",")]);
    assert_eq!(tcp, shards2, "--router-addr run diverged from --shards 2");
    for mut child in routers {
        child.kill().ok();
        child.wait().ok();
    }
}

#[test]
fn distributed_flags_are_validated() {
    let log = TmpFile::new("distributed-validate.log");
    std::fs::write(
        log.as_str(),
        "1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120\n",
    )
    .unwrap();
    let base = [
        "correlate",
        log.as_str(),
        "--port",
        "80",
        "--internal",
        INTERNAL,
    ];

    let err = stderr_of(&[&base[..], &["--routers", "2", "--shards", "2"]].concat());
    assert!(err.contains("--routers conflicts with --shards"), "{err}");

    let err = stderr_of(&[&base[..], &["--workers-per-router", "2"]].concat());
    assert!(
        err.contains("--workers-per-router requires --routers"),
        "{err}"
    );

    let err = stderr_of(&[&base[..], &["--router-addr", "127.0.0.1:1"]].concat());
    assert!(err.contains("--router-addr requires --routers"), "{err}");

    let err = stderr_of(
        &[
            &base[..],
            &["--routers", "2", "--router-addr", "127.0.0.1:1"],
        ]
        .concat(),
    );
    assert!(err.contains("1 router addresses for 2 routers"), "{err}");

    let err = stderr_of(&[&base[..], &["--routers", "0"]].concat());
    assert!(err.contains("router"), "{err}");

    // A dead TCP peer is one clear router error, not a hang.
    let err = stderr_of(
        &[
            &base[..],
            &["--routers", "1", "--router-addr", "127.0.0.1:9"],
        ]
        .concat(),
    );
    assert!(err.contains("router 0 failed"), "{err}");

    let err = stderr_of(&["router"]);
    assert!(err.contains("--stdio or --listen"), "{err}");
    let err = stderr_of(&["router", "--stdio", "--listen", "127.0.0.1:0"]);
    assert!(err.contains("conflicts"), "{err}");
}

#[test]
fn new_flags_are_validated_by_name() {
    let err = stderr_of(&[
        "correlate",
        "/nonexistent.log",
        "--port",
        "80",
        "--internal",
        INTERNAL,
        "--shards",
        "many",
    ]);
    assert!(err.contains("bad --shards"), "{err}");
    let err = stderr_of(&[
        "correlate",
        "/nonexistent.log",
        "--port",
        "80",
        "--internal",
        INTERNAL,
        "--max-seal-lag",
        "soon",
    ]);
    assert!(err.contains("bad --max-seal-lag"), "{err}");
    // A value flag at the end of the line is reported, not ignored.
    let err = stderr_of(&[
        "correlate",
        "/nonexistent.log",
        "--port",
        "80",
        "--internal",
        INTERNAL,
        "--shards",
    ]);
    assert!(err.contains("missing value for --shards"), "{err}");
    let err = stderr_of(&[
        "correlate",
        "/nonexistent.log",
        "--port",
        "80",
        "--internal",
        INTERNAL,
        "--ingest-threads",
        "many",
    ]);
    assert!(err.contains("bad --ingest-threads"), "{err}");
}

#[test]
fn ingest_threads_and_orphan_parity_flags_work() {
    let log = TmpFile::new("ingest.log");
    let out = pt()
        .args([
            "simulate",
            "--clients",
            "10",
            "--seconds",
            "8",
            "--seed",
            "23",
        ])
        .args(["--out", log.as_str()])
        .output()
        .expect("run pt simulate");
    assert!(out.status.success());

    // Patterns output is content-deterministic: the parallel chunk
    // scanner must reproduce the single-threaded bytes exactly, for an
    // explicit thread count and for the per-core auto setting.
    let baseline = pt()
        .args([
            "patterns",
            log.as_str(),
            "--port",
            "80",
            "--internal",
            INTERNAL,
        ])
        .output()
        .expect("run pt patterns");
    assert!(baseline.status.success());
    for threads in ["4", "0"] {
        let parallel = pt()
            .args([
                "patterns",
                log.as_str(),
                "--port",
                "80",
                "--internal",
                INTERNAL,
                "--ingest-threads",
                threads,
            ])
            .output()
            .expect("run pt patterns --ingest-threads");
        assert!(
            parallel.status.success(),
            "{}",
            String::from_utf8_lossy(&parallel.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&parallel.stdout),
            String::from_utf8_lossy(&baseline.stdout),
            "parallel ingest changed pattern output at --ingest-threads {threads}"
        );
    }

    // The escape hatch is accepted alongside the sharded pipeline and
    // still produces a successful correlation report.
    let out = pt()
        .args(["correlate", log.as_str(), "--port", "80"])
        .args(["--internal", INTERNAL])
        .args(["--shards", "2", "--orphan-parity", "--ingest-threads", "2"])
        .output()
        .expect("run pt correlate --orphan-parity");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("causal paths"), "{stdout}");
}

#[test]
fn scenario_simulate_flags_roundtrip() {
    // Replicated tiers: the simulate summary names every replica IP,
    // and correlating with that internal list succeeds.
    let log = TmpFile::new("scenario.log");
    let out = pt()
        .args([
            "simulate",
            "--clients",
            "8",
            "--seconds",
            "6",
            "--seed",
            "5",
        ])
        .args(["--app-replicas", "2", "--db-replicas", "2"])
        .args(["--lb-policy", "least-conn"])
        .args(["--out", log.as_str()])
        .output()
        .expect("run pt simulate with replicas");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("10.0.10.2"), "{stdout}");
    assert!(stdout.contains("10.0.10.3"), "{stdout}");
    let out = pt()
        .args(["correlate", log.as_str(), "--port", "80"])
        .args([
            "--internal",
            "10.0.0.1,10.0.0.2,10.0.10.2,10.0.0.3,10.0.10.3",
        ])
        .output()
        .expect("run pt correlate on lb log");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("causal paths"));

    // Lossy links: the log carries retrans-marked records that parse.
    let lossy = TmpFile::new("scenario-lossy.log");
    let out = pt()
        .args([
            "simulate",
            "--clients",
            "8",
            "--seconds",
            "6",
            "--seed",
            "5",
        ])
        .args(["--loss", "0.02", "--pool", "2"])
        .args(["--out", lossy.as_str()])
        .output()
        .expect("run pt simulate with loss");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&lossy.0).unwrap();
    assert!(
        text.lines().any(|l| l.ends_with(" retrans")),
        "no retrans records"
    );
    let out = pt()
        .args(["correlate", lossy.as_str(), "--port", "80"])
        .args(["--internal", INTERNAL, "--window-ms", "100"])
        .output()
        .expect("run pt correlate on lossy log");
    assert!(out.status.success());

    // Bad values are reported by name.
    let err = stderr_of(&[
        "simulate",
        "--clients",
        "5",
        "--out",
        "/tmp/x",
        "--loss",
        "1.5",
    ]);
    assert!(err.contains("bad --loss"), "{err}");
    let err = stderr_of(&[
        "simulate",
        "--clients",
        "5",
        "--out",
        "/tmp/x",
        "--lb-policy",
        "hash",
    ]);
    assert!(err.contains("bad --lb-policy"), "{err}");
    let err = stderr_of(&[
        "simulate",
        "--clients",
        "5",
        "--out",
        "/tmp/x",
        "--pool",
        "0",
    ]);
    assert!(err.contains("bad --pool"), "{err}");
    let err = stderr_of(&[
        "simulate",
        "--clients",
        "5",
        "--out",
        "/tmp/x",
        "--app-replicas",
        "0",
    ]);
    assert!(err.contains("bad --app-replicas"), "{err}");
    // Above the subnet scheme's capacity: a clean CLI error, no panic.
    let err = stderr_of(&[
        "simulate",
        "--clients",
        "5",
        "--out",
        "/tmp/x",
        "--web-replicas",
        "26",
    ]);
    assert!(err.contains("bad --web-replicas"), "{err}");
    assert!(err.contains("at most 25"), "{err}");
}

#[test]
fn dot_flag_is_patterns_only() {
    // correlate/diff must reject --dot instead of silently ignoring it
    // (only patterns writes the file).
    let err = stderr_of(&[
        "correlate",
        "/nonexistent.log",
        "--port",
        "80",
        "--internal",
        INTERNAL,
        "--dot",
        "/tmp/x.dot",
    ]);
    assert!(err.contains("unknown flag"), "{err}");
    assert!(err.contains("--dot"), "{err}");
}

#[test]
fn absurd_shard_counts_are_rejected_not_spawned() {
    let log = TmpFile::new("capped.log");
    std::fs::write(
        &log.0,
        "1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120\n",
    )
    .unwrap();
    let err = stderr_of(&[
        "correlate",
        log.as_str(),
        "--port",
        "80",
        "--internal",
        INTERNAL,
        "--shards",
        "1000000",
    ]);
    assert!(err.contains("exceeds the maximum"), "{err}");
}

#[test]
fn unknown_flags_are_rejected_not_ignored() {
    let err = stderr_of(&[
        "correlate",
        "/nonexistent.log",
        "--port",
        "80",
        "--internal",
        INTERNAL,
        "--frobnicate",
    ]);
    assert!(err.contains("unknown flag"), "{err}");
    assert!(err.contains("--frobnicate"), "{err}");
    // simulate rejects correlate-only flags instead of silently
    // ignoring them.
    let err = stderr_of(&[
        "simulate",
        "--clients",
        "5",
        "--out",
        "/tmp/x",
        "--shards",
        "4",
    ]);
    assert!(err.contains("unknown flag"), "{err}");
}

#[test]
fn missing_input_file_reports_path_and_os_error() {
    let err = stderr_of(&[
        "correlate",
        "/nonexistent.log",
        "--port",
        "80",
        "--internal",
        INTERNAL,
    ]);
    assert!(err.contains("/nonexistent.log"), "{err}");
    assert!(err.contains("No such file"), "{err}");
}

#[test]
fn unparsable_log_reports_parse_error() {
    let bad = TmpFile::new("bad.log");
    std::fs::write(&bad.0, "this is not a TCP_TRACE log\n").unwrap();
    let err = stderr_of(&[
        "correlate",
        bad.as_str(),
        "--port",
        "80",
        "--internal",
        INTERNAL,
    ]);
    assert!(err.contains("cannot parse trace record"), "{err}");
}

#[test]
fn help_prints_usage() {
    let out = pt().args(["--help"]).output().expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("TCP_TRACE"));
}

#[test]
fn capture_drop_simulates_v2_log_and_stats_report_ingest_counters() {
    let log = TmpFile::new("partial.log");
    // Sniffer-based v2 capture with a 2% per-segment drop.
    let out = pt()
        .args([
            "simulate",
            "--clients",
            "6",
            "--seconds",
            "6",
            "--seed",
            "7",
        ])
        .args(["--capture-drop", "0.02"])
        .args(["--out", log.as_str()])
        .output()
        .expect("run pt simulate --capture-drop");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&log.0).unwrap();
    assert!(
        text.lines().filter(|l| l.contains(" seq=")).count() > 100,
        "v2 capture must emit seq= stream offsets"
    );

    // --stats surfaces the ingest dedup counters.
    let out = pt()
        .args(["correlate", log.as_str(), "--port", "80"])
        .args(["--internal", INTERNAL, "--stats"])
        .output()
        .expect("run pt correlate --stats");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("ingest: retrans_dropped="),
        "--stats must print the ingest counters: {stdout}"
    );
    assert!(stdout.contains("seq_dedup_ranges="), "{stdout}");
    let v2_line = stdout
        .lines()
        .find(|l| l.starts_with("ingest:"))
        .expect("ingest line");
    let v2: u64 = v2_line
        .split("v2_records=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap()
        .parse()
        .unwrap();
    assert!(v2 > 100, "v2 records must be counted: {v2_line}");

    // Without --stats the counters stay off the output.
    let out = pt()
        .args(["correlate", log.as_str(), "--port", "80"])
        .args(["--internal", INTERNAL])
        .output()
        .expect("run pt correlate");
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stdout).contains("ingest:"));
}

#[test]
fn stats_flag_is_correlate_only() {
    let out = pt()
        .args(["patterns", "/nonexistent.log", "--port", "80"])
        .args(["--internal", INTERNAL, "--stats"])
        .output()
        .expect("run pt patterns --stats");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown flag \"--stats\""),
        "patterns must reject --stats"
    );
}

#[test]
fn capture_drop_rejects_bad_probability() {
    let log = TmpFile::new("bad-drop.log");
    let out = pt()
        .args(["simulate", "--clients", "2", "--capture-drop", "1.5"])
        .args(["--out", log.as_str()])
        .output()
        .expect("run pt simulate");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--capture-drop"));
}

/// Strips the wall-clock token from a correlate report so two runs can
/// be compared byte-for-byte.
fn strip_wall(s: &str) -> String {
    s.split_whitespace()
        .filter(|t| !t.starts_with("wall="))
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn convert_roundtrips_text_and_binary() {
    let log = TmpFile::new("convert.log");
    let bin = TmpFile::new("convert.ptbin");
    let back = TmpFile::new("convert-back.log");

    // A v2 log (seq= offsets) exercises the optional record fields.
    let out = pt()
        .args([
            "simulate",
            "--clients",
            "6",
            "--seconds",
            "6",
            "--seed",
            "7",
        ])
        .args(["--capture-drop", "0.01"])
        .args(["--out", log.as_str()])
        .output()
        .expect("run pt simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Text -> binary (parallel parse), direction sniffed from content.
    let out = pt()
        .args(["convert", log.as_str(), bin.as_str()])
        .args(["--ingest-threads", "2"])
        .output()
        .expect("run pt convert to binary");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("PTBIN"));
    let bin_bytes = std::fs::read(&bin.0).unwrap();
    assert_eq!(&bin_bytes[..4], b"PTBN", "missing PTBIN magic");
    let text_bytes = std::fs::read(&log.0).unwrap();
    assert!(
        bin_bytes.len() < text_bytes.len(),
        "binary form should be more compact than text"
    );

    // Correlating the binary form reports exactly the text results.
    let correlate = |path: &str| {
        let out = pt()
            .args(["correlate", path, "--port", "80"])
            .args(["--internal", INTERNAL, "--stats"])
            .output()
            .expect("run pt correlate");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        strip_wall(&String::from_utf8_lossy(&out.stdout))
    };
    assert_eq!(
        correlate(log.as_str()),
        correlate(bin.as_str()),
        "binary correlation diverged from text"
    );

    // Binary -> text: byte-identical to the original log.
    let out = pt()
        .args(["convert", bin.as_str(), back.as_str()])
        .output()
        .expect("run pt convert to text");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&back.0).unwrap(),
        text_bytes,
        "text -> PTBIN -> text must round-trip byte-identically"
    );
}

#[test]
fn convert_reports_missing_arguments_by_name() {
    let err = stderr_of(&["convert"]);
    assert!(err.contains("missing input file"), "{err}");
    let err = stderr_of(&["convert", "/nonexistent.log"]);
    assert!(err.contains("missing output file"), "{err}");
    let err = stderr_of(&["convert", "/nonexistent.log", "/tmp/out.ptbin"]);
    assert!(err.contains("/nonexistent.log"), "{err}");
}

#[test]
fn stats_flag_reports_marker_dedup_on_lossy_v1_logs() {
    let log = TmpFile::new("lossy-v1.log");
    let out = pt()
        .args([
            "simulate",
            "--clients",
            "6",
            "--seconds",
            "6",
            "--seed",
            "9",
        ])
        .args(["--loss", "0.02", "--out", log.as_str()])
        .output()
        .expect("run pt simulate --loss");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&log.0).unwrap();
    assert!(
        text.lines().any(|l| l.ends_with(" retrans")),
        "lossy v1 log must carry retrans markers"
    );
    let out = pt()
        .args(["correlate", log.as_str(), "--port", "80"])
        .args(["--internal", INTERNAL, "--window-ms", "100", "--stats"])
        .output()
        .expect("run pt correlate --stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("ingest:"))
        .expect("ingest line");
    // v1 log: marker dedup fires, range dedup has nothing to do.
    assert!(line.contains("seq_dedup_ranges=0"), "{line}");
    assert!(line.contains("v2_records=0"), "{line}");
    let dropped: u64 = line
        .split("retrans_dropped=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap()
        .parse()
        .unwrap();
    assert!(dropped > 0, "marker dedup must drop records: {line}");
}

/// Extracts the integer value of `key=` from a `key=value` stats line.
fn stat(line: &str, key: &str) -> u64 {
    line.split(&format!("{key}="))
        .nth(1)
        .and_then(|s| s.split(['B', ' ']).next())
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("bad {key}= in {line:?}"))
}

#[test]
fn serve_follows_a_file_to_idle_end_and_reports() {
    let log = TmpFile::new("serve.log");
    let out = pt()
        .args([
            "simulate",
            "--clients",
            "8",
            "--seconds",
            "6",
            "--seed",
            "5",
        ])
        .args(["--out", log.as_str()])
        .output()
        .expect("run pt simulate");
    assert!(out.status.success());
    let records = std::fs::read_to_string(&log.0).unwrap().lines().count() as u64;

    let out = pt()
        .args([
            "serve",
            log.as_str(),
            "--port",
            "80",
            "--internal",
            INTERNAL,
        ])
        .args([
            "--idle-end-ms",
            "200",
            "--kpi-every",
            "200",
            "--print-paths",
        ])
        .output()
        .expect("run pt serve");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stats = stdout
        .lines()
        .find(|l| l.starts_with("serve:"))
        .expect("final stats line");
    assert_eq!(stat(stats, "records"), records, "{stats}");
    assert!(
        stat(stats, "sealed") + stat(stats, "drained") > 0,
        "{stats}"
    );
    assert_eq!(stat(stats, "shed"), 0, "{stats}");
    assert!(stdout.contains("kpi: records="), "{stdout}");
    assert!(stdout.contains("path: root_ts="), "{stdout}");
}

#[test]
fn serve_rejects_bad_flags_by_name() {
    let err = stderr_of(&["serve", "--port", "80", "--internal", INTERNAL]);
    assert!(err.contains("missing source file"), "{err}");
    let err = stderr_of(&[
        "serve",
        "/nonexistent.log",
        "--port",
        "80",
        "--internal",
        INTERNAL,
        "--shed",
        "panic",
    ]);
    assert!(err.contains("bad --shed"), "{err}");
    let err = stderr_of(&[
        "serve",
        "/nonexistent.log",
        "--port",
        "80",
        "--internal",
        INTERNAL,
        "--format",
        "csv",
    ]);
    assert!(err.contains("bad --format"), "{err}");
}

/// SIGTERM mid-stream: the daemon must stop tailing, drain what is
/// sealable, print the final stats line and exit 0.
#[cfg(unix)]
#[test]
fn serve_drains_and_exits_zero_on_sigterm() {
    use std::io::Read as _;

    let log = TmpFile::new("sigterm.log");
    let out = pt()
        .args([
            "simulate",
            "--clients",
            "8",
            "--seconds",
            "6",
            "--seed",
            "11",
        ])
        .args(["--out", log.as_str()])
        .output()
        .expect("run pt simulate");
    assert!(out.status.success());
    let records = std::fs::read_to_string(&log.0).unwrap().lines().count() as u64;

    // No --idle-end-ms: the daemon follows forever; only the signal
    // ends it.
    let mut child = pt()
        .args([
            "serve",
            log.as_str(),
            "--port",
            "80",
            "--internal",
            INTERNAL,
        ])
        .args(["--poll-ms", "5", "--kpi-every", "0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pt serve");

    // Give it time to ingest the whole file, then signal.
    std::thread::sleep(std::time::Duration::from_millis(600));
    let kill = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());

    // The drain must finish promptly; poll rather than block forever.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let status = loop {
        match child.try_wait().expect("wait on pt serve") {
            Some(s) => break s,
            None if std::time::Instant::now() > deadline => {
                child.kill().ok();
                panic!("pt serve did not exit within 10s of SIGTERM");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    };
    assert!(status.success(), "SIGTERM drain must exit 0, got {status}");

    let mut stdout = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    let stats = stdout
        .lines()
        .find(|l| l.starts_with("serve:"))
        .expect("final stats line after SIGTERM");
    assert_eq!(stat(stats, "records"), records, "{stats}");
    assert!(
        stat(stats, "sealed") + stat(stats, "drained") > 0,
        "{stats}"
    );
}

/// SIGTERM mid-stream with the spill tier active: the drain must
/// remove every spill artifact — nothing matching `pt-spill-*` may
/// survive in the spill directory after the daemon exits.
#[cfg(unix)]
#[test]
fn serve_sigterm_leaves_no_spill_artifacts() {
    use std::io::Read as _;

    let log = TmpFile::new("spillterm.log");
    let out = pt()
        .args([
            "simulate",
            "--clients",
            "8",
            "--seconds",
            "6",
            "--seed",
            "17",
        ])
        .args(["--out", log.as_str()])
        .output()
        .expect("run pt simulate");
    assert!(out.status.success());

    // A dedicated spill directory so leftover files are unambiguous.
    let spill_dir = std::env::temp_dir().join(format!("pt-cli-spill-{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir).unwrap();

    // Tiny budget: the daemon pages state through the spill file while
    // following; only the signal ends it.
    let mut child = pt()
        .args([
            "serve",
            log.as_str(),
            "--port",
            "80",
            "--internal",
            INTERNAL,
        ])
        .args(["--poll-ms", "5", "--kpi-every", "0"])
        .args(["--memory-budget", "64K"])
        .args(["--spill-dir", spill_dir.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pt serve");

    std::thread::sleep(std::time::Duration::from_millis(600));
    let kill = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let status = loop {
        match child.try_wait().expect("wait on pt serve") {
            Some(s) => break s,
            None if std::time::Instant::now() > deadline => {
                child.kill().ok();
                panic!("pt serve did not exit within 10s of SIGTERM");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    };
    assert!(status.success(), "SIGTERM drain must exit 0, got {status}");

    let mut stdout = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    let stats = stdout
        .lines()
        .find(|l| l.starts_with("serve:"))
        .expect("final stats line after SIGTERM");
    assert_eq!(stat(stats, "shed"), 0, "spill mode must not shed: {stats}");

    let stray: Vec<String> = std::fs::read_dir(&spill_dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.ok()?.file_name().to_string_lossy().into_owned();
            name.starts_with("pt-spill-").then_some(name)
        })
        .collect();
    std::fs::remove_dir_all(&spill_dir).ok();
    assert!(
        stray.is_empty(),
        "spill artifacts survived the SIGTERM drain: {stray:?}"
    );
}
