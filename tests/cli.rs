//! Integration tests for the `pt` command-line tool: the end-user
//! workflow of simulating (or capturing) a TCP_TRACE log and analyzing
//! it from the shell.

use std::process::Command;

fn pt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pt"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pt-cli-test-{}-{name}", std::process::id()));
    p
}

const INTERNAL: &str = "10.0.0.1,10.0.0.2,10.0.0.3";

#[test]
fn simulate_correlate_patterns_diff_roundtrip() {
    let log = tmp("trace.log");
    let dot = tmp("pattern.dot");

    // simulate
    let out = pt()
        .args(["simulate", "--clients", "10", "--seconds", "8", "--seed", "3"])
        .args(["--out", log.to_str().unwrap()])
        .output()
        .expect("run pt simulate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&log).unwrap();
    assert!(text.lines().count() > 100, "log should have records");

    // correlate
    let out = pt()
        .args(["correlate", log.to_str().unwrap(), "--port", "80", "--internal", INTERNAL])
        .output()
        .expect("run pt correlate");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("causal paths"), "{stdout}");
    assert!(stdout.contains("mean request latency"), "{stdout}");

    // patterns + dot export
    let out = pt()
        .args(["patterns", log.to_str().unwrap(), "--port", "80", "--internal", INTERNAL])
        .args(["--dot", dot.to_str().unwrap()])
        .output()
        .expect("run pt patterns");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("patterns over"), "{stdout}");
    assert!(stdout.contains("httpd2java"), "{stdout}");
    let dot_text = std::fs::read_to_string(&dot).unwrap();
    assert!(dot_text.starts_with("digraph"));

    // diff against itself: no significant change
    let out = pt()
        .args([
            "diff",
            log.to_str().unwrap(),
            log.to_str().unwrap(),
            "--port",
            "80",
            "--internal",
            INTERNAL,
        ])
        .output()
        .expect("run pt diff");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no significant change"), "{stdout}");

    let _ = std::fs::remove_file(log);
    let _ = std::fs::remove_file(dot);
}

#[test]
fn missing_arguments_fail_cleanly() {
    let out = pt().output().expect("run pt");
    assert!(!out.status.success());
    let out = pt().args(["correlate"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing"), "{err}");
    let out = pt()
        .args(["correlate", "/nonexistent.log", "--port", "80", "--internal", "10.0.0.1"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = pt().args(["--help"]).output().expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("TCP_TRACE"));
}
