//! Golden-trace regression harness.
//!
//! Every `tests/golden/*.log` file is a TCP_TRACE log (hand-written or
//! captured with `pt simulate`) whose second-to-parse line is a
//! directive comment:
//!
//! ```text
//! #! port=80 internal=10.0.0.1,10.0.0.2 window_ms=10
//! ```
//!
//! The harness correlates the log and renders the full correlation
//! result — CAG count, per-CAG vertex structure, latencies, pattern
//! keys, and latency-percentage tables — into a canonical text form
//! that must match the checked-in `<case>.golden` file **byte for
//! byte**. Any change to Ranker/Engine/pattern behavior that alters a
//! correlation result fails these tests; intentional changes are
//! re-blessed with:
//!
//! ```text
//! PT_GOLDEN_REGEN=1 cargo test --test golden
//! ```

use std::fmt::Write as _;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

use precisetracer::prelude::*;

/// Correlator settings extracted from a case's `#!` directive line.
struct Directive {
    access: AccessPointSpec,
    window: Nanos,
}

fn parse_directive(text: &str, path: &Path) -> Directive {
    let line = text
        .lines()
        .find(|l| l.starts_with("#!"))
        .unwrap_or_else(|| panic!("{}: missing #! directive line", path.display()));
    let mut port: Option<u16> = None;
    let mut internal: Vec<Ipv4Addr> = Vec::new();
    let mut window_ms: u64 = 10;
    for kv in line.trim_start_matches("#!").split_ascii_whitespace() {
        let (k, v) = kv
            .split_once('=')
            .unwrap_or_else(|| panic!("{}: bad directive token {kv:?}", path.display()));
        match k {
            "port" => port = Some(v.parse().expect("directive port")),
            "internal" => {
                internal = v
                    .split(',')
                    .map(|ip| ip.parse().expect("directive internal ip"))
                    .collect();
            }
            "window_ms" => window_ms = v.parse().expect("directive window_ms"),
            other => panic!("{}: unknown directive key {other:?}", path.display()),
        }
    }
    Directive {
        access: AccessPointSpec::new([port.expect("directive needs port=")], internal),
        window: Nanos::from_millis(window_ms),
    }
}

/// Renders a correlation result into the canonical golden text: every
/// field here is deterministic for a fixed input log (no wall-clock or
/// allocation-dependent values).
fn render(out: &CorrelationOutput) -> String {
    let mut s = String::new();
    let m = &out.metrics;
    writeln!(
        s,
        "records_in={} filtered_out={} cags={} unfinished={}",
        m.records_in,
        m.filtered_out,
        out.cags.len(),
        out.unfinished.len()
    )
    .unwrap();

    for cag in &out.cags {
        let total = cag
            .total_latency()
            .map(|n| n.as_nanos().to_string())
            .unwrap_or_else(|| "-".into());
        writeln!(
            s,
            "cag id={} finished={} vertices={} total_ns={}",
            cag.id,
            cag.finished,
            cag.vertices.len(),
            total
        )
        .unwrap();
        for (i, v) in cag.vertices.iter().enumerate() {
            writeln!(
                s,
                "  v{i} {} ts={} ctx={}/{}/{}/{} chan={} size={} ctx_parent={} msg_parent={}",
                v.ty,
                v.ts,
                v.ctx.hostname,
                v.ctx.program,
                v.ctx.pid,
                v.ctx.tid,
                v.channel,
                v.size,
                v.ctx_parent
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".into()),
                v.msg_parent
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".into()),
            )
            .unwrap();
        }
        for (component, latency) in cag.component_latencies() {
            writeln!(s, "  component {component} {}ns", latency.as_nanos()).unwrap();
        }
    }

    let agg = PatternAggregator::from_cags(&out.cags);
    writeln!(s, "patterns={}", agg.len()).unwrap();
    for p in agg.average_paths() {
        writeln!(
            s,
            "pattern key={} count={} vertices={} mean_total_ns={}",
            p.key,
            p.count,
            p.exemplar.vertices.len(),
            p.mean_total.as_nanos()
        )
        .unwrap();
        writeln!(s, "  signature {}", p.signature).unwrap();
        for (component, pct) in &p.percentages {
            writeln!(s, "  {component} {pct:.4}%").unwrap();
        }
    }
    s
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn run_case(name: &str) -> (String, PathBuf) {
    let log_path = golden_dir().join(format!("{name}.log"));
    let text = std::fs::read_to_string(&log_path)
        .unwrap_or_else(|e| panic!("{}: {e}", log_path.display()));
    let directive = parse_directive(&text, &log_path);
    let records = parse_log(&text).expect("golden log must parse");
    assert!(!records.is_empty(), "{name}: empty golden log");
    let config = PipelineConfig::new(directive.access).with_window(directive.window);
    let out = Pipeline::new(config)
        .expect("valid golden config")
        .run(Source::records(records))
        .expect("golden log must correlate");
    for cag in &out.cags {
        cag.validate()
            .unwrap_or_else(|e| panic!("{name}: invalid CAG {}: {e}", cag.id));
    }
    (render(&out), golden_dir().join(format!("{name}.golden")))
}

/// How a streaming golden case feeds the correlator.
enum Feed {
    /// Push one record at a time in log order, polling after every
    /// push. Byte-exact against the batch golden when requests do not
    /// overlap: the ranker never has to guess about records that exist
    /// in the log but have not arrived yet.
    PollEveryRecord,
    /// Push everything in log order (interleaved across hosts, no
    /// `close_host`), then poll, then finish. Byte-exact against the
    /// batch golden for any log: ranking starts with the same staged
    /// input the batch drain sees. For concurrent logs, polling
    /// *between* pushes can only reorder CAG *emission* (the batch
    /// ranker sees the future; an online one cannot) — content equality
    /// for that mode is pinned by the permutation property test.
    PushAllThenPoll,
}

/// Runs a golden case through the **streaming** API instead of the
/// batch drain. The output must be byte-identical to the batch golden.
fn run_case_streaming(name: &str, feed: Feed) -> (String, PathBuf) {
    let log_path = golden_dir().join(format!("{name}.log"));
    let text = std::fs::read_to_string(&log_path)
        .unwrap_or_else(|e| panic!("{}: {e}", log_path.display()));
    let directive = parse_directive(&text, &log_path);
    let records = parse_log(&text).expect("golden log must parse");
    let config = PipelineConfig::new(directive.access)
        .with_window(directive.window)
        .with_mode(Mode::Streaming);
    let mut sc = Pipeline::new(config)
        .expect("valid streaming config")
        .session()
        .expect("valid streaming config");
    let mut cags = Vec::new();
    for rec in records {
        sc.push(rec).expect("push before finish");
        if matches!(feed, Feed::PollEveryRecord) {
            cags.extend(sc.poll().expect("poll before finish"));
        }
    }
    cags.extend(sc.poll().expect("poll before finish"));
    let mut out = sc.finish().expect("single finish");
    cags.extend(std::mem::take(&mut out.cags));
    out.cags = cags;
    for cag in &out.cags {
        cag.validate()
            .unwrap_or_else(|e| panic!("{name}: invalid streamed CAG {}: {e}", cag.id));
    }
    // The incremental session emits in completion order; the batch
    // golden is canonical (root order). Same renumbering, then the
    // bytes must match exactly.
    out.canonicalize();
    (render(&out), golden_dir().join(format!("{name}.golden")))
}

/// Asserts the streaming path reproduces the batch golden byte for
/// byte (same `.golden` file — never re-blessed from this path).
fn check_case_streaming(name: &str, feed: Feed) {
    let (got, golden_path) = run_case_streaming(name, feed);
    let want = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    assert!(
        got == want,
        "{name}: STREAMING correlation diverged from the batch golden {}\n\
         --- streamed ---\n{got}\n--- batch golden ---\n{want}",
        golden_path.display()
    );
}

/// Runs a golden case through the **sharded** pipeline (zero-copy text
/// ingest, N worker threads, canonical merge) and renders the result.
fn run_case_sharded(name: &str, shards: usize) -> String {
    let log_path = golden_dir().join(format!("{name}.log"));
    let text = std::fs::read_to_string(&log_path)
        .unwrap_or_else(|e| panic!("{}: {e}", log_path.display()));
    let directive = parse_directive(&text, &log_path);
    let config = PipelineConfig::new(directive.access)
        .with_window(directive.window)
        .with_mode(Mode::Sharded(shards));
    let out = Pipeline::new(config)
        .expect("valid sharded config")
        .run(Source::text(&text))
        .expect("golden log must correlate sharded");
    for cag in &out.cags {
        cag.validate()
            .unwrap_or_else(|e| panic!("{name}: invalid sharded CAG {}: {e}", cag.id));
    }
    render(&out)
}

/// The sharded pipeline emits CAGs in canonical root order with
/// sequentially renumbered ids — the same canonical order the batch
/// run now emits directly. So the sharded rendering must byte-match
/// the batch run that itself byte-matches the checked-in `.golden`
/// file — and must be byte-identical for every shard count.
fn check_case_sharded(name: &str) {
    let (_, golden_path) = run_case(name); // asserts nothing; reuse paths
    let log_path = golden_dir().join(format!("{name}.log"));
    let text = std::fs::read_to_string(&log_path).unwrap();
    let directive = parse_directive(&text, &log_path);
    let records = parse_log(&text).unwrap();
    let config = PipelineConfig::new(directive.access).with_window(directive.window);
    let batch = Pipeline::new(config)
        .unwrap()
        .run(Source::records(records))
        .unwrap();
    let want = render(&batch);
    let one = run_case_sharded(name, 1);
    assert!(
        one == want,
        "{name}: sharded(1) diverged from canonicalized batch golden {}\n\
         --- sharded ---\n{one}\n--- batch (id order) ---\n{want}",
        golden_path.display()
    );
    for shards in [2, 4] {
        let got = run_case_sharded(name, shards);
        assert!(
            got == one,
            "{name}: sharded({shards}) bytes differ from sharded(1)\n\
             --- shards={shards} ---\n{got}\n--- shards=1 ---\n{one}"
        );
    }
}

fn check_case(name: &str) {
    let (got, golden_path) = run_case(name);
    if std::env::var_os("PT_GOLDEN_REGEN").is_some() {
        std::fs::write(&golden_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\n(run `PT_GOLDEN_REGEN=1 cargo test --test golden` to bless)",
            golden_path.display()
        )
    });
    assert!(
        got == want,
        "{name}: correlation output diverged from {}\n\
         --- got ---\n{got}\n--- want ---\n{want}\n\
         If this change is intentional, re-bless with \
         `PT_GOLDEN_REGEN=1 cargo test --test golden`.",
        golden_path.display()
    );
}

#[test]
fn golden_static_single() {
    check_case("static_single");
}

#[test]
fn golden_three_tier_single() {
    check_case("three_tier_single");
}

#[test]
fn golden_interleaved_chunked() {
    check_case("interleaved_chunked");
}

#[test]
fn golden_sim_c4_s5_seed11() {
    check_case("sim_c4_s5_seed11");
}

#[test]
fn golden_sim_c6_s6_seed42_noise() {
    check_case("sim_c6_s6_seed42_noise");
}

#[test]
fn golden_lb_2replica() {
    check_case("lb_2replica");
}

#[test]
fn golden_pooled_reuse() {
    check_case("pooled_reuse");
}

#[test]
fn golden_lossy_p01() {
    check_case("lossy_p01");
}

#[test]
fn golden_partial_capture() {
    check_case("partial_capture");
}

#[test]
fn golden_streaming_static_single() {
    check_case_streaming("static_single", Feed::PollEveryRecord);
}

#[test]
fn golden_streaming_three_tier_single() {
    check_case_streaming("three_tier_single", Feed::PollEveryRecord);
}

#[test]
fn golden_streaming_interleaved_chunked() {
    check_case_streaming("interleaved_chunked", Feed::PollEveryRecord);
}

#[test]
fn golden_streaming_sim_c4_s5_seed11() {
    check_case_streaming("sim_c4_s5_seed11", Feed::PushAllThenPoll);
}

#[test]
fn golden_streaming_sim_c6_s6_seed42_noise() {
    check_case_streaming("sim_c6_s6_seed42_noise", Feed::PushAllThenPoll);
}

#[test]
fn golden_streaming_lb_2replica() {
    check_case_streaming("lb_2replica", Feed::PushAllThenPoll);
}

#[test]
fn golden_streaming_pooled_reuse() {
    check_case_streaming("pooled_reuse", Feed::PushAllThenPoll);
}

#[test]
fn golden_streaming_lossy_p01() {
    check_case_streaming("lossy_p01", Feed::PushAllThenPoll);
}

#[test]
fn golden_streaming_partial_capture() {
    check_case_streaming("partial_capture", Feed::PushAllThenPoll);
}

#[test]
fn golden_gap_heavy() {
    check_case("gap_heavy");
}

#[test]
fn golden_bulk_mix_drop() {
    check_case("bulk_mix_drop");
}

#[test]
fn golden_streaming_bulk_mix_drop() {
    check_case_streaming("bulk_mix_drop", Feed::PushAllThenPoll);
}

#[test]
fn golden_sharded_bulk_mix_drop() {
    check_case_sharded("bulk_mix_drop");
}

#[test]
fn golden_streaming_gap_heavy() {
    check_case_streaming("gap_heavy", Feed::PushAllThenPoll);
}

#[test]
fn golden_sharded_gap_heavy() {
    check_case_sharded("gap_heavy");
}

#[test]
fn golden_sharded_static_single() {
    check_case_sharded("static_single");
}

#[test]
fn golden_sharded_three_tier_single() {
    check_case_sharded("three_tier_single");
}

#[test]
fn golden_sharded_interleaved_chunked() {
    check_case_sharded("interleaved_chunked");
}

#[test]
fn golden_sharded_sim_c4_s5_seed11() {
    check_case_sharded("sim_c4_s5_seed11");
}

#[test]
fn golden_sharded_sim_c6_s6_seed42_noise() {
    check_case_sharded("sim_c6_s6_seed42_noise");
}

#[test]
fn golden_sharded_lb_2replica() {
    check_case_sharded("lb_2replica");
}

#[test]
fn golden_sharded_pooled_reuse() {
    check_case_sharded("pooled_reuse");
}

#[test]
fn golden_sharded_lossy_p01() {
    check_case_sharded("lossy_p01");
}

#[test]
fn golden_sharded_partial_capture() {
    check_case_sharded("partial_capture");
}

#[test]
fn golden_multi_frontend_3() {
    check_case("multi_frontend_3");
}

#[test]
fn golden_streaming_multi_frontend_3() {
    check_case_streaming("multi_frontend_3", Feed::PushAllThenPoll);
}

#[test]
fn golden_sharded_multi_frontend_3() {
    check_case_sharded("multi_frontend_3");
}

/// Every case in tests/golden/ must be wired to a named #[test] above,
/// so a new corpus file cannot be silently skipped.
#[test]
fn golden_corpus_is_fully_covered() {
    let known = [
        "static_single",
        "three_tier_single",
        "interleaved_chunked",
        "sim_c4_s5_seed11",
        "sim_c6_s6_seed42_noise",
        "lb_2replica",
        "pooled_reuse",
        "lossy_p01",
        "partial_capture",
        "gap_heavy",
        "bulk_mix_drop",
        "multi_frontend_3",
    ];
    let mut found: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "log").then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    found.sort();
    let mut expected: Vec<String> = known.iter().map(|s| s.to_string()).collect();
    expected.sort();
    assert_eq!(
        found, expected,
        "add a #[test] wrapper for each new golden case"
    );
}

/// PTBIN parity on every golden corpus: converting each `.log` to a
/// PTBIN file and correlating it via [`Source::binary_path`] renders
/// **byte-identical** output to correlating the original text file via
/// [`Source::path`] — in all three modes.
#[test]
fn golden_binary_source_matches_text_source_in_every_mode() {
    use precisetracer::tracer::binfmt;
    let mut cases = 0usize;
    for entry in std::fs::read_dir(golden_dir()).expect("tests/golden") {
        let log_path = entry.expect("dir entry").path();
        if log_path.extension().map(|e| e != "log").unwrap_or(true) {
            continue;
        }
        cases += 1;
        let name = log_path.file_stem().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&log_path).unwrap();
        let directive = parse_directive(&text, &log_path);
        let bin = binfmt::encode_text(&text, 2).expect("golden log must encode");
        let bin_path =
            std::env::temp_dir().join(format!("pt_golden_{name}_{}.ptbin", std::process::id()));
        std::fs::write(&bin_path, &bin).unwrap();
        let base = PipelineConfig::new(directive.access).with_window(directive.window);
        for mode in [
            Mode::Batch,
            Mode::Streaming,
            Mode::Sharded(3),
            Mode::Distributed {
                routers: 3,
                workers_per_router: 1,
            },
        ] {
            let from_text = Pipeline::new(base.clone().with_mode(mode))
                .unwrap()
                .run(Source::path(&log_path))
                .unwrap();
            let from_binary = Pipeline::new(base.clone().with_mode(mode))
                .unwrap()
                .run(Source::binary_path(&bin_path))
                .unwrap();
            assert!(
                render(&from_text) == render(&from_binary),
                "{name} {mode:?}: PTBIN correlation diverged from text"
            );
        }
        std::fs::remove_file(&bin_path).ok();
    }
    assert!(cases >= 10, "expected the full golden corpus, got {cases}");
}

/// Spill parity on every golden corpus: a run starved down to a 4 KiB
/// memory budget — which pages cold CAGs, orphan chains and dedup
/// coverage through the disk spill tier — renders **byte-identical**
/// output to the unbounded run, in all three modes and at several
/// shard counts. Spilling changes residency, never decisions.
#[test]
fn golden_spill_budget_matches_unbounded_in_every_mode() {
    let spill_dir = std::env::temp_dir();
    let mut cases = 0usize;
    for entry in std::fs::read_dir(golden_dir()).expect("tests/golden") {
        let log_path = entry.expect("dir entry").path();
        if log_path.extension().map(|e| e != "log").unwrap_or(true) {
            continue;
        }
        cases += 1;
        let name = log_path.file_stem().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&log_path).unwrap();
        let directive = parse_directive(&text, &log_path);
        let base = PipelineConfig::new(directive.access).with_window(directive.window);
        for mode in [
            Mode::Batch,
            Mode::Streaming,
            Mode::Sharded(2),
            Mode::Sharded(4),
            Mode::Distributed {
                routers: 2,
                workers_per_router: 2,
            },
        ] {
            let unbounded = Pipeline::new(base.clone().with_mode(mode))
                .unwrap()
                .run(Source::path(&log_path))
                .unwrap();
            let spilled = Pipeline::new(
                base.clone()
                    .with_mode(mode)
                    .with_memory_budget(4 << 10)
                    .with_spill_dir(&spill_dir),
            )
            .unwrap()
            .run(Source::path(&log_path))
            .unwrap();
            assert!(
                render(&unbounded) == render(&spilled),
                "{name} {mode:?}: spill-budgeted correlation diverged from unbounded"
            );
            assert_eq!(
                spilled.metrics.engine.budget_evicted_cags, 0,
                "{name} {mode:?}: spill mode must never shed"
            );
        }
    }
    assert!(cases >= 10, "expected the full golden corpus, got {cases}");
}

/// Distributed parity on every golden corpus: a two-router in-process
/// cluster (`--routers 2`) renders **byte-identical** output to
/// `Mode::Sharded(2)` — the cluster merge is canonical, so crossing a
/// process boundary must never change a single byte.
#[test]
fn golden_distributed_matches_sharded_on_every_corpus() {
    let mut cases = 0usize;
    for entry in std::fs::read_dir(golden_dir()).expect("tests/golden") {
        let log_path = entry.expect("dir entry").path();
        if log_path.extension().map(|e| e != "log").unwrap_or(true) {
            continue;
        }
        cases += 1;
        let name = log_path.file_stem().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&log_path).unwrap();
        let directive = parse_directive(&text, &log_path);
        let base = PipelineConfig::new(directive.access).with_window(directive.window);
        let sharded = Pipeline::new(base.clone().with_mode(Mode::Sharded(2)))
            .unwrap()
            .run(Source::text(&text))
            .unwrap();
        let dist = Pipeline::new(base.with_mode(Mode::Distributed {
            routers: 2,
            workers_per_router: 1,
        }))
        .unwrap()
        .run(Source::text(&text))
        .unwrap();
        assert!(
            render(&sharded) == render(&dist),
            "{name}: distributed(2x1) diverged from sharded(2)"
        );
    }
    assert!(cases >= 11, "expected the full golden corpus, got {cases}");
}

/// A budget tight enough to force actual page traffic must still give
/// recall 1.00: the big simulated corpus correlates byte-identically
/// under 4 KiB with a nonzero fault count — proof the spill tier was
/// truly exercised, not just enabled.
#[test]
fn golden_spill_faults_occur_without_recall_loss() {
    let log_path = golden_dir().join("sim_c6_s6_seed42_noise.log");
    let text = std::fs::read_to_string(&log_path).unwrap();
    let directive = parse_directive(&text, &log_path);
    let base = PipelineConfig::new(directive.access).with_window(directive.window);
    let unbounded = Pipeline::new(base.clone())
        .unwrap()
        .run(Source::path(&log_path))
        .unwrap();
    let spilled = Pipeline::new(base.with_memory_budget(4 << 10))
        .unwrap()
        .run(Source::path(&log_path))
        .unwrap();
    assert!(
        render(&unbounded) == render(&spilled),
        "tiny-budget spill run diverged from unbounded"
    );
    let faults = spilled.metrics.engine.spill_faults + spilled.metrics.spill_dedup_faults;
    assert!(
        faults > 0,
        "a 4 KiB budget on the sim corpus must fault spilled state back in"
    );
    assert!(
        spilled.metrics.engine.spilled_cags
            + spilled.metrics.engine.spilled_orphans
            + spilled.metrics.spilled_dedup_entries
            > 0,
        "a 4 KiB budget on the sim corpus must spill state out"
    );
}

/// The harness must actually be able to fail: perturbing a single
/// vertex size in a correlation result changes the canonical rendering.
#[test]
fn golden_rendering_detects_perturbation() {
    let log_path = golden_dir().join("three_tier_single.log");
    let text = std::fs::read_to_string(&log_path).unwrap();
    let directive = parse_directive(&text, &log_path);
    let records = parse_log(&text).unwrap();
    let config = PipelineConfig::new(directive.access).with_window(directive.window);
    let mut out = Pipeline::new(config)
        .unwrap()
        .run(Source::records(records))
        .unwrap();
    let baseline = render(&out);
    out.cags[0].vertices[0].size += 1;
    let perturbed = render(&out);
    assert_ne!(
        baseline, perturbed,
        "rendering must be sensitive to vertex data"
    );
}
