//! End-to-end integration: simulate → trace → analyze, across the
//! paper's experimental dimensions at reduced scale.

use precisetracer::prelude::*;

fn quick(clients: usize, secs: u64) -> rubis::ExperimentConfig {
    rubis::ExperimentConfig::quick(clients, secs)
}

#[test]
fn accuracy_is_perfect_across_windows() {
    let out = rubis::run(quick(20, 12));
    for window in [
        Nanos::from_millis(1),
        Nanos::from_millis(10),
        Nanos::from_millis(100),
        Nanos::from_secs(10),
    ] {
        let (corr, acc) = out.correlate(window).unwrap();
        assert!(acc.is_perfect(), "window {window}: {acc:?}");
        assert_eq!(corr.cags.len() as u64, acc.logged_requests);
    }
}

#[test]
fn accuracy_is_perfect_across_skews() {
    for skew_ms in [1i64, 50, 200, 500] {
        let mut cfg = quick(10, 10);
        cfg.spec = cfg.spec.with_skew_ms(skew_ms);
        let out = rubis::run(cfg);
        let (_, acc) = out.correlate(Nanos::from_millis(1)).unwrap();
        assert!(acc.is_perfect(), "skew {skew_ms}: {acc:?}");
    }
}

#[test]
fn accuracy_is_perfect_under_combined_noise() {
    let mut cfg = quick(12, 10);
    cfg.noise = rubis::NoiseSpec {
        ssh_msgs_per_sec: 80.0,
        mysql_msgs_per_sec: 200.0,
    };
    let out = rubis::run(cfg);
    let (corr, acc) = out.correlate(Nanos::from_millis(2)).unwrap();
    assert!(acc.is_perfect(), "{acc:?}");
    assert!(corr.metrics.ranker.noise_discards > 50);
}

#[test]
fn every_cag_is_structurally_valid() {
    let out = rubis::run(quick(15, 10));
    let (corr, _) = out.correlate(Nanos::from_millis(10)).unwrap();
    for cag in &corr.cags {
        cag.validate()
            .unwrap_or_else(|e| panic!("CAG {}: {e}", cag.id));
        assert!(cag.finished);
        assert!(cag.total_latency().is_some());
    }
}

#[test]
fn text_roundtrip_preserves_correlation() {
    // Serialize the probe log to the TCP_TRACE text format and re-parse:
    // the same paths must come out (modulo ground-truth tags, which the
    // text format does not carry).
    let out = rubis::run(quick(6, 8));
    let text: String = out.records.iter().map(|r| format!("{r}\n")).collect();
    let reparsed = parse_log(&text).unwrap();
    assert_eq!(reparsed.len(), out.records.len());
    let config = out.correlator_config(Nanos::from_millis(10));
    let corr_text = Pipeline::new(config.into())
        .unwrap()
        .run(Source::records(reparsed))
        .unwrap();
    let (corr_orig, acc) = out.correlate(Nanos::from_millis(10)).unwrap();
    assert!(acc.is_perfect());
    assert_eq!(corr_text.cags.len(), corr_orig.cags.len());
    for (a, b) in corr_text.cags.iter().zip(&corr_orig.cags) {
        assert_eq!(a.vertices.len(), b.vertices.len());
    }
}

#[test]
fn streaming_equals_offline_on_real_logs() {
    let out = rubis::run(quick(8, 8));
    let (offline, acc) = out.correlate(Nanos::from_millis(10)).unwrap();
    assert!(acc.is_perfect());
    let mut sc = Pipeline::new(
        PipelineConfig::from(out.correlator_config(Nanos::from_millis(10)))
            .with_mode(Mode::Streaming),
    )
    .unwrap()
    .session()
    .unwrap();
    // Push in log order (interleaved across nodes), polling as we go.
    let mut sorted = out.records.clone();
    sorted.sort_by_key(|r| r.ts);
    let mut cags = Vec::new();
    for r in sorted {
        sc.push(r).unwrap();
        cags.extend(sc.poll().unwrap());
    }
    let fin = sc.finish().unwrap();
    cags.extend(fin.cags);
    assert_eq!(cags.len(), offline.cags.len());
    let mut off_tags: Vec<Vec<u64>> = offline.cags.iter().map(|c| c.sorted_tags()).collect();
    let mut str_tags: Vec<Vec<u64>> = cags.iter().map(|c| c.sorted_tags()).collect();
    off_tags.sort();
    str_tags.sort();
    assert_eq!(off_tags, str_tags);
}

#[test]
fn pattern_census_matches_request_mix() {
    // Four structurally distinct classes exist in Browse_Only: static
    // (no backend), 1-query, 2-query and 3-query paths.
    let out = rubis::run(quick(25, 15));
    let (corr, _) = out.correlate(Nanos::from_millis(10)).unwrap();
    let mut agg = PatternAggregator::new();
    agg.add_all(&corr.cags);
    assert_eq!(agg.len(), 4, "expected 4 shape classes");
    let counts: Vec<u64> = agg.patterns().iter().map(|p| p.count).collect();
    let total: u64 = counts.iter().sum();
    assert_eq!(total as usize, corr.cags.len());
    // The 2-query class (ViewItem + Search + UserInfo ≈ 68% of weight)
    // must dominate.
    assert!(counts[0] as f64 / total as f64 > 0.5, "{counts:?}");
}

#[test]
fn max_threads_bottleneck_appears_and_fix_works() {
    // Reduced-scale Fig. 15/16: with MaxThreads=8 and enough clients,
    // the httpd→java share explodes; raising the pool fixes it.
    let run_with = |mt: usize| {
        let mut cfg = quick(60, 15);
        cfg.spec = cfg.spec.with_max_threads(mt);
        let out = rubis::run(cfg);
        let (corr, acc) = out.correlate(Nanos::from_millis(10)).unwrap();
        assert!(acc.is_perfect());
        let b = BreakdownReport::dominant(&corr.cags).unwrap();
        (
            out.service.rt_mean(),
            b.pct(&Component::new("httpd", "java")),
        )
    };
    let (rt_small, pct_small) = run_with(8);
    let (rt_big, pct_big) = run_with(250);
    assert!(
        pct_small > pct_big + 10.0,
        "undersized pool must inflate httpd2java: {pct_small:.1}% vs {pct_big:.1}%"
    );
    assert!(rt_small > rt_big, "{rt_small} vs {rt_big}");
}

#[test]
fn fault_signatures_localize() {
    let breakdown = |faults: Vec<Fault>| {
        let mut cfg = quick(60, 15);
        for f in faults {
            cfg.spec = cfg.spec.with_fault(f);
        }
        let out = rubis::run(cfg);
        let (corr, acc) = out.correlate(Nanos::from_millis(10)).unwrap();
        assert!(acc.is_perfect());
        BreakdownReport::dominant(&corr.cags).unwrap()
    };
    let normal = breakdown(vec![]);
    // EJB delay → java internal.
    let ejb = breakdown(vec![Fault::EjbDelay {
        delay: Dist::Exp { mean: 80e6 },
    }]);
    let d = Diagnosis::localize(&DiffReport::between(&normal, &ejb), 8.0).expect("diagnosis");
    assert_eq!(d.suspect, SuspectKind::TierInternal("java".into()), "{d:?}");
    // Degraded NIC → java network.
    let net = breakdown(vec![Fault::AppNetDegrade { bps: 10_000_000 }]);
    let d = Diagnosis::localize(&DiffReport::between(&normal, &net), 5.0).expect("diagnosis");
    assert_eq!(d.suspect, SuspectKind::TierNetwork("java".into()), "{d:?}");
}

#[test]
fn probe_overhead_is_small_but_nonzero() {
    let run_with = |tracing: bool| {
        let mut cfg = quick(40, 15);
        cfg.spec = cfg.spec.with_tracing(tracing);
        rubis::run(cfg)
    };
    let off = run_with(false);
    let on = run_with(true);
    assert_eq!(off.records.len(), 0);
    assert!(!on.records.is_empty());
    let rt_off = off.service.rt_mean().as_nanos() as f64;
    let rt_on = on.service.rt_mean().as_nanos() as f64;
    // Overhead exists but stays well under the paper's 30% bound.
    assert!(rt_on < rt_off * 1.30, "rt {rt_off} -> {rt_on}");
}

#[test]
fn deformed_paths_are_detected_when_records_are_lost() {
    // Drop all mysqld records (a "lost activities" scenario): paths
    // deform but the correlator does not hallucinate complete ones.
    let out = rubis::run(quick(8, 8));
    let lossy: Vec<_> = out
        .records
        .iter()
        .filter(|r| &*r.hostname != "db1")
        .cloned()
        .collect();
    let config = out.correlator_config(Nanos::from_millis(10));
    let corr = Pipeline::new(config.into())
        .unwrap()
        .run(Source::records(lossy))
        .unwrap();
    let acc = out.truth.evaluate(&corr.cags);
    // No path can be correct (every backend request lost its db records),
    // except pure-static requests that never touch the database.
    for cag in &corr.cags {
        cag.validate().unwrap();
    }
    assert!(acc.accuracy() < 1.0);
}

#[test]
fn accuracy_survives_skew_noise_and_tiny_window_combined() {
    // Regression test: heavy clock skew + noise + a 1ms window +
    // in-flight spans far exceeding the window. A receive blocked
    // behind noise must not be declared noise while its matching send
    // is still in the input (the anywhere-send index decides is_noise).
    let mut cfg = quick(60, 8);
    cfg.spec = cfg.spec.with_skew_ms(250);
    cfg.noise = rubis::NoiseSpec {
        ssh_msgs_per_sec: 40.0,
        mysql_msgs_per_sec: 80.0,
    };
    let out = rubis::run(cfg);
    let (corr, acc) = out.correlate(Nanos::from_millis(1)).unwrap();
    assert!(acc.is_perfect(), "{acc:?} ({})", corr.metrics.summary());
    assert_eq!(corr.metrics.ranker.forced_deliveries, 0);
}
