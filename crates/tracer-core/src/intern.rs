//! String interning for the ingest hot path.
//!
//! A TCP_TRACE log repeats the same handful of hostnames and program
//! names on every line; parsing each line into an owned [`RawRecord`]
//! (or classifying it into an [`Activity`](crate::activity::Activity))
//! naively allocates a fresh string per field per record. The
//! [`Interner`] deduplicates those fields into shared `Arc<str>`s so
//! the steady-state ingest path performs **zero string allocations per
//! record** — only refcount bumps — and all equal hostnames/programs
//! share one backing allocation (which also shrinks the resident
//! `ContextId` footprint of long sessions).

use std::sync::Arc;

use crate::fasthash::FxBuildHasher;

/// A deduplicating `&str → Arc<str>` cache.
///
/// # Examples
///
/// ```
/// use tracer_core::intern::Interner;
/// let mut i = Interner::new();
/// let a = i.intern("web1");
/// let b = i.intern("web1");
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(i.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Interner {
    set: std::collections::HashSet<Arc<str>, FxBuildHasher>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Returns the shared `Arc<str>` for `s`, allocating it only on
    /// first sight.
    pub fn intern(&mut self, s: &str) -> Arc<str> {
        if let Some(existing) = self.set.get(s) {
            return Arc::clone(existing);
        }
        let arc: Arc<str> = Arc::from(s);
        self.set.insert(Arc::clone(&arc));
        arc
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut i = Interner::new();
        let a = i.intern("httpd");
        let b = i.intern("httpd");
        let c = i.intern("java");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert_eq!(i.len(), 0);
        assert!(i.is_empty());
    }
}
