//! The unified correlation pipeline — the **one** public entry point.
//!
//! The paper's tool is a single pipeline: probe records in, CAGs and
//! performance analysis out. Earlier revisions of this crate exposed
//! that pipeline through three divergent entry points (an offline
//! `Correlator`, an incremental `StreamingCorrelator` and a parallel
//! `ShardedCorrelator`) that every caller had to wire up by hand.
//! [`Pipeline`] replaces all three: one [`PipelineConfig`] — a
//! superset of [`CorrelatorConfig`] plus a [`Mode`] — and one
//! [`Source`] abstraction over owned records, record iterators,
//! zero-copy text ingest and [`crate::binfmt`] PTBIN binary streams,
//! consumed by a single `builder → run(source) → CorrelationOutput`
//! path.
//!
//! ```text
//!            ┌───────────────── Pipeline ─────────────────┐
//! Source ──→ │ ingest (range dedup, classify, filter) ──→ │ ──→ CorrelationOutput
//!            │   mode: Batch | Streaming | Sharded(n)     │
//!            └────────────────────────────────────────────┘
//! ```
//!
//! * [`Mode::Batch`] — the paper's offline evaluation setup: group per
//!   node, sort by local time, drain through the streaming core. CAG
//!   ids follow seal order.
//! * [`Mode::Streaming`] — records are pushed in arrival order and the
//!   output streams out with bounded memory; on a complete source this
//!   is byte-identical to `Batch` whenever ranking starts with the
//!   input staged (pinned by the golden tests). For true online use,
//!   open an incremental handle with [`Pipeline::session`].
//! * [`Mode::Sharded`]`(n)` — the reader-side session router feeding
//!   `n` worker threads, merged into canonical root order; output is
//!   byte-identical for every shard count.
//!
//! The old three entry-point types went through one release as
//! deprecated shims and have been removed; the engines they named now
//! run only behind this facade (see the README's migration table).
//!
//! # Examples
//!
//! ```
//! use tracer_core::prelude::*;
//!
//! # fn main() -> Result<(), TraceError> {
//! let access = AccessPointSpec::new([80], ["10.0.0.1".parse().unwrap()]);
//! let log = "\
//! 1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120
//! 2000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512
//! ";
//! let pipeline = Pipeline::new(PipelineConfig::new(access).with_mode(Mode::Sharded(4)))?;
//! let out = pipeline.run(Source::text(log))?;
//! assert_eq!(out.cags.len(), 1);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use crate::access::AccessPointSpec;
use crate::activity::{Activity, Nanos};
use crate::cag::Cag;
use crate::correlator::{
    CorrelationOutput, Correlator, CorrelatorConfig, EngineOptions, RankerOptions,
    StreamingCorrelator, WindowPolicy,
};
use crate::dist::{DistCorrelator, RouterTransport};
use crate::error::TraceError;
use crate::filter::FilterSet;
use crate::raw::{parse_log, RawRecord};
use crate::shard::ShardedCorrelator;

/// How the pipeline executes a correlation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Offline batch (the paper's evaluation setup): the complete
    /// record set is grouped per node and sorted by local time before
    /// draining through the streaming core. The default.
    #[default]
    Batch,
    /// Single-instance streaming: records are pushed in source order
    /// and correlate with bounded memory as they arrive.
    Streaming,
    /// Parallel sharded correlation with this many worker threads
    /// (`0` = one per CPU core, capped): reader-side session routing,
    /// canonical deterministic merge — byte-identical output for every
    /// shard count.
    Sharded(usize),
    /// Multi-process distributed correlation (see [`crate::dist`]):
    /// `routers` router peers of `workers_per_router` shard workers
    /// each, reached over [`PipelineConfig::router_transport`]. Output
    /// is byte-identical to `Sharded(routers × workers_per_router)` on
    /// every corpus.
    Distributed {
        /// Router peer count (processes, TCP peers or threads).
        routers: usize,
        /// Shard workers hosted by each router peer (`0` = 1).
        workers_per_router: usize,
    },
}

/// Full pipeline configuration: everything [`CorrelatorConfig`] holds
/// plus the execution [`Mode`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// The correlation knobs shared by every mode (access points,
    /// filters, window policy, memory budget, sealing SLO, router GC).
    pub correlator: CorrelatorConfig,
    /// Which execution strategy [`Pipeline::run`] uses.
    pub mode: Mode,
    /// Parser threads for text and path sources: `1` (the default)
    /// parses sequentially, `0` uses one thread per core, anything
    /// else that many threads. The parallel scanner
    /// ([`crate::ingest`]) produces a record sequence byte-identical
    /// to the sequential parser, so this knob only changes speed.
    pub ingest_threads: usize,
    /// How [`Mode::Distributed`] reaches its router peers: in-process
    /// threads (the default), spawned `pt router --stdio` children, or
    /// TCP connections to `pt router --listen` processes. Ignored by
    /// the other modes.
    pub router_transport: RouterTransport,
}

impl PipelineConfig {
    /// A default (batch-mode) configuration for a service with the
    /// given access spec.
    pub fn new(access: AccessPointSpec) -> Self {
        PipelineConfig {
            correlator: CorrelatorConfig::new(access),
            mode: Mode::Batch,
            ingest_threads: 1,
            router_transport: RouterTransport::default(),
        }
    }

    /// Sets the execution mode.
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the router transport for [`Mode::Distributed`].
    pub fn with_router_transport(mut self, transport: RouterTransport) -> Self {
        self.router_transport = transport;
        self
    }

    /// Sets the parser thread count for text/path sources (`0` = one
    /// per core, `1` = sequential).
    pub fn with_ingest_threads(mut self, threads: usize) -> Self {
        self.ingest_threads = threads;
        self
    }

    /// Ships sharded orphan-chain records to the workers instead of
    /// dropping them reader-side (see
    /// [`CorrelatorConfig::with_orphan_parity`]).
    pub fn with_orphan_parity(mut self) -> Self {
        self.correlator = self.correlator.with_orphan_parity();
        self
    }

    /// Sets the sliding time window.
    pub fn with_window(mut self, window: Nanos) -> Self {
        self.correlator = self.correlator.with_window(window);
        self
    }

    /// Sets the window policy (static knob vs adaptive latency
    /// tracking).
    pub fn with_window_policy(mut self, policy: WindowPolicy) -> Self {
        self.correlator = self.correlator.with_window_policy(policy);
        self
    }

    /// Enables adaptive windowing with the default `p99 × 4` policy.
    pub fn with_adaptive_window(mut self) -> Self {
        self.correlator = self.correlator.with_adaptive_window();
        self
    }

    /// Sets the explicit resident-memory budget in bytes.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.correlator = self.correlator.with_memory_budget(bytes);
        self
    }

    /// Sets the spill tier's directory (see
    /// [`CorrelatorConfig::spill_dir`]).
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.correlator = self.correlator.with_spill_dir(dir);
        self
    }

    /// Sheds state under budget pressure instead of spilling it (see
    /// [`CorrelatorConfig::shed_on_budget`]).
    pub fn with_shed_on_budget(mut self) -> Self {
        self.correlator = self.correlator.with_shed_on_budget();
        self
    }

    /// Bounds the sealing latency of finished CAGs (see
    /// [`CorrelatorConfig::max_seal_lag`]).
    pub fn with_max_seal_lag(mut self, lag: u64) -> Self {
        self.correlator = self.correlator.with_max_seal_lag(lag);
        self
    }

    /// Evicts idle per-channel router state in sharded mode; `0`
    /// disables the GC (see
    /// [`CorrelatorConfig::channel_idle_horizon`]).
    pub fn with_channel_idle_horizon(mut self, records: u64) -> Self {
        self.correlator = self.correlator.with_channel_idle_horizon(records);
        self
    }

    /// Force-settles parked lane heads in sharded mode once `depth`
    /// records buffer behind them; `0` parks indefinitely (see
    /// [`CorrelatorConfig::lane_settle_depth`]).
    pub fn with_lane_settle_depth(mut self, depth: u64) -> Self {
        self.correlator = self.correlator.with_lane_settle_depth(depth);
        self
    }

    /// Sets the attribute filters.
    pub fn with_filters(mut self, filters: FilterSet) -> Self {
        self.correlator = self.correlator.with_filters(filters);
        self
    }

    /// Sets the ranker options wholesale.
    pub fn with_ranker(mut self, ranker: RankerOptions) -> Self {
        self.correlator = self.correlator.with_ranker(ranker);
        self
    }

    /// Sets the engine options wholesale.
    pub fn with_engine(mut self, engine: EngineOptions) -> Self {
        self.correlator = self.correlator.with_engine(engine);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Config`] when the window is zero, no access
    /// point is configured, or a sharded shard count is out of range.
    pub fn validate(&self) -> Result<(), TraceError> {
        self.correlator.validate()?;
        match self.mode {
            Mode::Sharded(n) => {
                if n > crate::shard::MAX_SHARDS {
                    return Err(TraceError::config(format!(
                        "shard count {n} exceeds the maximum of {}",
                        crate::shard::MAX_SHARDS
                    )));
                }
            }
            Mode::Distributed {
                routers,
                workers_per_router,
            } => {
                if routers == 0 {
                    return Err(TraceError::config(
                        "distributed mode needs at least 1 router",
                    ));
                }
                if routers > crate::dist::MAX_ROUTERS {
                    return Err(TraceError::config(format!(
                        "router count {routers} exceeds the maximum of {}",
                        crate::dist::MAX_ROUTERS
                    )));
                }
                let total = routers * workers_per_router.max(1);
                if total > crate::shard::MAX_SHARDS {
                    return Err(TraceError::config(format!(
                        "{routers} routers x {} workers = {total} shards exceeds the maximum of {}",
                        workers_per_router.max(1),
                        crate::shard::MAX_SHARDS
                    )));
                }
                if let RouterTransport::Connect { addrs } = &self.router_transport {
                    if addrs.len() != routers {
                        return Err(TraceError::config(format!(
                            "{} router addresses for {routers} routers",
                            addrs.len()
                        )));
                    }
                }
            }
            Mode::Batch | Mode::Streaming => {}
        }
        Ok(())
    }
}

impl From<CorrelatorConfig> for PipelineConfig {
    /// Wraps an existing correlator configuration in batch mode — the
    /// one-line migration path from the removed legacy entry points.
    fn from(correlator: CorrelatorConfig) -> Self {
        PipelineConfig {
            correlator,
            mode: Mode::Batch,
            ingest_threads: 1,
            router_transport: RouterTransport::default(),
        }
    }
}

/// One source of TCP_TRACE records, unifying the three ingest shapes
/// the old entry points each exposed differently.
#[derive(Debug)]
pub enum Source<'a> {
    /// Owned, already-parsed records (any order; batch and sharded
    /// modes re-sort per node).
    Records(Vec<RawRecord>),
    /// A TCP_TRACE text log. Sharded mode ingests it **zero-copy**
    /// (borrowed [`crate::raw::RawRecordRef`] parsing, interned
    /// strings); the single-instance modes parse it into owned records
    /// first.
    Text(&'a str),
    /// A TCP_TRACE log file, read as one whole buffer at
    /// [`Pipeline::run`] and scanned with
    /// `PipelineConfig::ingest_threads` parser threads (see
    /// [`crate::ingest`]). Behaves exactly like [`Source::Text`] over
    /// the file's contents.
    Path(std::path::PathBuf),
    /// A PTBIN binary record file (see [`crate::binfmt`]), read as one
    /// whole buffer at [`Pipeline::run`] and decoded with
    /// `PipelineConfig::ingest_threads` workers — text parsing is
    /// skipped entirely, and sharded mode stages the decoded records
    /// zero-copy (strings borrowed from the file buffer). Correlating
    /// a converted log is byte-identical to correlating the text
    /// original.
    BinaryPath(std::path::PathBuf),
}

impl Source<'_> {
    /// A source over owned records.
    pub fn records(records: Vec<RawRecord>) -> Source<'static> {
        Source::Records(records)
    }

    /// A source over a TCP_TRACE text log.
    pub fn text(text: &str) -> Source<'_> {
        Source::Text(text)
    }

    /// A source over a TCP_TRACE log file, whole-buffer-read at run
    /// time.
    pub fn path(path: impl Into<std::path::PathBuf>) -> Source<'static> {
        Source::Path(path.into())
    }

    /// A source over a PTBIN binary record file (the output of
    /// `pt convert` / [`crate::binfmt`] encoding), whole-buffer-read
    /// and decoded at run time without any text parsing.
    pub fn binary_path(path: impl Into<std::path::PathBuf>) -> Source<'static> {
        Source::BinaryPath(path.into())
    }

    /// A source draining an arbitrary record iterator (collected up
    /// front; use [`Pipeline::session`] to push records incrementally
    /// without collecting).
    pub fn collected(records: impl IntoIterator<Item = RawRecord>) -> Source<'static> {
        Source::Records(records.into_iter().collect())
    }
}

impl FromIterator<RawRecord> for Source<'static> {
    fn from_iter<T: IntoIterator<Item = RawRecord>>(records: T) -> Self {
        Source::Records(records.into_iter().collect())
    }
}

impl From<Vec<RawRecord>> for Source<'static> {
    fn from(records: Vec<RawRecord>) -> Self {
        Source::Records(records)
    }
}

impl<'a> From<&'a str> for Source<'a> {
    fn from(text: &'a str) -> Self {
        Source::Text(text)
    }
}

/// The unified correlation pipeline facade. See the module docs.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Builds a pipeline, validating the configuration up front.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Config`] when
    /// [`PipelineConfig::validate`] fails.
    pub fn new(config: PipelineConfig) -> Result<Self, TraceError> {
        config.validate()?;
        Ok(Pipeline { config })
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs one complete correlation: ingests the source (duplicate
    /// byte ranges are deduplicated — v2 `seq=` arithmetic or the v1
    /// `retrans` marker — then records classify and filter), correlates
    /// it in the configured [`Mode`], and returns the output.
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed text sources and propagates
    /// configuration errors.
    pub fn run(&self, source: Source<'_>) -> Result<CorrelationOutput, TraceError> {
        let cfg = self.config.correlator.clone();
        let threads = self.config.ingest_threads;
        // A binary source skips text parsing entirely: one whole-buffer
        // read, fixed-width record decoding, done.
        if let Source::BinaryPath(p) = &source {
            let buf = crate::binfmt::read_binary_file(p)?;
            return self.run_binary(&buf);
        }
        // A path source is one whole-buffer read; every mode then sees
        // borrowed text and benefits from the parallel chunk scanner.
        let owned;
        let source = match source {
            Source::Path(p) => {
                owned = crate::ingest::read_log_file(&p)?;
                Source::Text(&owned)
            }
            s => s,
        };
        let parse_text = |t: &str| -> Result<Vec<RawRecord>, TraceError> {
            if threads == 1 {
                parse_log(t)
            } else {
                crate::ingest::parse_log_parallel(t, threads)
            }
        };
        match self.config.mode {
            Mode::Batch => {
                let records = match source {
                    Source::Records(r) => r,
                    Source::Text(t) => parse_text(t)?,
                    _ => unreachable!("path sources resolve above"),
                };
                Correlator::new(cfg).correlate(records)
            }
            Mode::Streaming => {
                let records = match source {
                    Source::Records(r) => r,
                    Source::Text(t) => parse_text(t)?,
                    _ => unreachable!("path sources resolve above"),
                };
                let mut sc = StreamingCorrelator::new(cfg)?;
                for rec in records {
                    sc.push(rec)?;
                }
                let mut out = sc.finish()?;
                // A full run returns everything at once, so the
                // canonical cross-mode order applies here too; only
                // incremental sessions keep emission order.
                out.canonicalize();
                Ok(out)
            }
            Mode::Sharded(n) => match source {
                Source::Records(r) => ShardedCorrelator::correlate(cfg, n, r),
                Source::Text(t) if threads != 1 => {
                    // Parallel zero-copy ingest: the parsed slice is
                    // byte-identical to `parse_log_iter`'s sequence, so
                    // staging it record-by-record routes exactly like
                    // `correlate_text`.
                    let refs = crate::ingest::parse_refs_parallel(t, threads)?;
                    let mut sc = ShardedCorrelator::new(cfg, n)?;
                    for r in &refs {
                        sc.stage_ref(r);
                    }
                    sc.finish()
                }
                Source::Text(t) => ShardedCorrelator::correlate_text(cfg, n, t),
                _ => unreachable!("path sources resolve above"),
            },
            Mode::Distributed {
                routers,
                workers_per_router,
            } => {
                let transport = &self.config.router_transport;
                match source {
                    Source::Records(r) => {
                        crate::dist::correlate(cfg, routers, workers_per_router, transport, r)
                    }
                    Source::Text(t) if threads != 1 => {
                        let refs = crate::ingest::parse_refs_parallel(t, threads)?;
                        let mut dc =
                            DistCorrelator::new(cfg, routers, workers_per_router, transport)?;
                        for r in &refs {
                            dc.stage_ref(r);
                        }
                        dc.finish()
                    }
                    Source::Text(t) => {
                        crate::dist::correlate_text(cfg, routers, workers_per_router, transport, t)
                    }
                    _ => unreachable!("path sources resolve above"),
                }
            }
        }
    }

    /// Correlates a decoded PTBIN buffer. The decoded record sequence
    /// is exactly what text parsing of the converted log would produce
    /// (the format round-trips losslessly), so every mode's output is
    /// byte-identical to the equivalent text run.
    fn run_binary(&self, buf: &[u8]) -> Result<CorrelationOutput, TraceError> {
        let cfg = self.config.correlator.clone();
        let threads = self.config.ingest_threads;
        let decode_owned = || -> Result<Vec<RawRecord>, TraceError> {
            if threads == 1 {
                crate::binfmt::decode_records(buf)
            } else {
                let refs = crate::binfmt::decode_refs_parallel(buf, threads)?;
                let mut interner = crate::intern::Interner::new();
                Ok(refs
                    .iter()
                    .map(|r| r.to_owned_interned(&mut interner))
                    .collect())
            }
        };
        match self.config.mode {
            Mode::Batch => Correlator::new(cfg).correlate(decode_owned()?),
            Mode::Streaming => {
                let mut sc = StreamingCorrelator::new(cfg)?;
                for rec in decode_owned()? {
                    sc.push(rec)?;
                }
                let mut out = sc.finish()?;
                out.canonicalize();
                Ok(out)
            }
            Mode::Sharded(n) => {
                // Zero-copy staging: the decoded refs borrow their
                // strings straight from the file buffer, exactly like
                // the sharded text reader borrows from the log text.
                let mut sc = ShardedCorrelator::new(cfg, n)?;
                if threads == 1 {
                    let reader = crate::binfmt::Reader::new(buf)?;
                    for r in reader.iter() {
                        sc.stage_ref(&r?);
                    }
                } else {
                    let refs = crate::binfmt::decode_refs_parallel(buf, threads)?;
                    for r in &refs {
                        sc.stage_ref(r);
                    }
                }
                sc.finish()
            }
            Mode::Distributed {
                routers,
                workers_per_router,
            } => {
                let mut dc = DistCorrelator::new(
                    cfg,
                    routers,
                    workers_per_router,
                    &self.config.router_transport,
                )?;
                if threads == 1 {
                    let reader = crate::binfmt::Reader::new(buf)?;
                    for r in reader.iter() {
                        dc.stage_ref(&r?);
                    }
                } else {
                    let refs = crate::binfmt::decode_refs_parallel(buf, threads)?;
                    for r in &refs {
                        dc.stage_ref(r);
                    }
                }
                dc.finish()
            }
        }
    }

    /// Correlates pre-classified activity streams (one per host, each
    /// sorted by local time) — the harness path for synthetic
    /// activities. Runs through the single-instance drain regardless of
    /// mode (the sharded reader routes raw records, not activities).
    ///
    /// # Errors
    ///
    /// Returns a configuration error when the window settings are
    /// invalid.
    pub fn run_activities(
        &self,
        streams: Vec<(Arc<str>, Vec<Activity>)>,
    ) -> Result<CorrelationOutput, TraceError> {
        Correlator::new(self.config.correlator.clone()).correlate_activities(streams)
    }

    /// Opens an incremental session: push records (or raw log lines) as
    /// they arrive, poll for sealed CAGs, finish for the final output.
    /// The mode decides the machinery underneath — a batch session
    /// buffers and drains at finish; a streaming session correlates
    /// online with bounded memory; a sharded session routes to its
    /// workers as records arrive.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn session(&self) -> Result<PipelineSession, TraceError> {
        let cfg = self.config.correlator.clone();
        Ok(PipelineSession {
            inner: match self.config.mode {
                Mode::Batch => {
                    cfg.validate()?;
                    SessionInner::Batch {
                        config: cfg,
                        buffered: Vec::new(),
                        finished: false,
                    }
                }
                Mode::Streaming => SessionInner::Streaming(StreamingCorrelator::new(cfg)?),
                Mode::Sharded(n) => SessionInner::Sharded(ShardedCorrelator::new(cfg, n)?),
                Mode::Distributed {
                    routers,
                    workers_per_router,
                } => SessionInner::Dist(DistCorrelator::new(
                    cfg,
                    routers,
                    workers_per_router,
                    &self.config.router_transport,
                )?),
            },
        })
    }
}

#[allow(clippy::large_enum_variant)] // one session per run; size is irrelevant
#[derive(Debug)]
enum SessionInner {
    Batch {
        config: CorrelatorConfig,
        buffered: Vec<RawRecord>,
        finished: bool,
    },
    Streaming(StreamingCorrelator),
    Sharded(ShardedCorrelator),
    Dist(DistCorrelator),
}

/// An incremental pipeline run opened by [`Pipeline::session`]. After
/// [`PipelineSession::finish`] the session is spent: every further call
/// returns [`TraceError::Finished`].
#[derive(Debug)]
pub struct PipelineSession {
    inner: SessionInner,
}

impl PipelineSession {
    /// Pushes one raw record.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] after [`Self::finish`].
    pub fn push(&mut self, rec: RawRecord) -> Result<(), TraceError> {
        match &mut self.inner {
            SessionInner::Batch {
                buffered, finished, ..
            } => {
                if *finished {
                    return Err(TraceError::Finished);
                }
                buffered.push(rec);
                Ok(())
            }
            SessionInner::Streaming(sc) => sc.push(rec),
            SessionInner::Sharded(sc) => sc.push(rec),
            SessionInner::Dist(dc) => dc.push(rec),
        }
    }

    /// Parses and pushes one TCP_TRACE log line (zero-copy in sharded
    /// mode).
    ///
    /// # Errors
    ///
    /// Returns a parse error for a malformed line, and
    /// [`TraceError::Finished`] after [`Self::finish`].
    pub fn push_line(&mut self, line: &str) -> Result<(), TraceError> {
        match &mut self.inner {
            SessionInner::Sharded(sc) => sc.push_line(line),
            SessionInner::Dist(dc) => dc.push_line(line),
            _ => self.push(RawRecord::parse_line(line)?),
        }
    }

    /// Returns the CAGs sealed since the last poll. Batch sessions
    /// correlate only at [`Self::finish`] and always return an empty
    /// vector; sharded sessions flush their worker batches and emit at
    /// finish.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] after [`Self::finish`].
    pub fn poll(&mut self) -> Result<Vec<Cag>, TraceError> {
        match &mut self.inner {
            SessionInner::Batch { finished, .. } => {
                if *finished {
                    return Err(TraceError::Finished);
                }
                Ok(Vec::new())
            }
            SessionInner::Streaming(sc) => sc.poll(),
            SessionInner::Sharded(sc) => {
                sc.flush()?;
                Ok(Vec::new())
            }
            SessionInner::Dist(dc) => {
                dc.flush()?;
                Ok(Vec::new())
            }
        }
    }

    /// Current approximate resident bytes of the session's correlation
    /// state (buffered records for a batch session; window buffers +
    /// engine state for streaming; reader-side router state for
    /// sharded).
    pub fn approx_bytes(&self) -> usize {
        match &self.inner {
            SessionInner::Batch { buffered, .. } => {
                buffered.len() * std::mem::size_of::<RawRecord>()
            }
            SessionInner::Streaming(sc) => sc.approx_bytes(),
            SessionInner::Sharded(sc) => sc.approx_router_bytes(),
            SessionInner::Dist(dc) => dc.approx_router_bytes(),
        }
    }

    /// Live spill-tier counters `(objects spilled, faults)` of the
    /// session's correlation state. Streaming sessions report their
    /// correlator's counters; batch buffers nothing spillable and
    /// sharded workers own their state privately until the final drain,
    /// so both report `(0, 0)` here (the drain metrics carry the
    /// totals).
    pub fn spill_counters(&self) -> (u64, u64) {
        match &self.inner {
            SessionInner::Streaming(sc) => sc.spill_counters(),
            _ => (0, 0),
        }
    }

    /// Ends the input and returns the final output (remaining finished
    /// CAGs plus deformed paths). The session is spent afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] when called twice.
    pub fn finish(&mut self) -> Result<CorrelationOutput, TraceError> {
        match &mut self.inner {
            SessionInner::Batch {
                config,
                buffered,
                finished,
            } => {
                if *finished {
                    return Err(TraceError::Finished);
                }
                *finished = true;
                Correlator::new(config.clone()).correlate(std::mem::take(buffered))
            }
            SessionInner::Streaming(sc) => sc.finish(),
            SessionInner::Sharded(sc) => sc.finish(),
            SessionInner::Dist(dc) => dc.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access() -> AccessPointSpec {
        AccessPointSpec::new(
            [80],
            [
                "10.0.0.1".parse().unwrap(),
                "10.0.0.2".parse().unwrap(),
                "10.0.0.3".parse().unwrap(),
            ],
        )
    }

    /// A full three-tier request (same fixture as the correlator
    /// tests).
    fn three_tier_log() -> &'static str {
        "\
        1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120\n\
        2000 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:8009 64\n\
        500900 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:8009 64\n\
        501500 app java 9 21 SEND 10.0.0.2:4101-10.0.0.3:3306 32\n\
        901900 db mysqld 5 55 RECEIVE 10.0.0.2:4101-10.0.0.3:3306 32\n\
        903000 db mysqld 5 55 SEND 10.0.0.3:3306-10.0.0.2:4101 800\n\
        503600 app java 9 21 RECEIVE 10.0.0.3:3306-10.0.0.2:4101 800\n\
        504000 app java 9 21 SEND 10.0.0.2:8009-10.0.0.1:4001 256\n\
        4500 web httpd 7 7 RECEIVE 10.0.0.2:8009-10.0.0.1:4001 256\n\
        5000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512\n\
        "
    }

    fn render(out: &CorrelationOutput) -> String {
        format!("{:?}|{:?}", out.cags, out.unfinished)
    }

    #[test]
    fn every_mode_correlates_the_three_tier_request() {
        for mode in [
            Mode::Batch,
            Mode::Streaming,
            Mode::Sharded(2),
            Mode::Distributed {
                routers: 2,
                workers_per_router: 2,
            },
        ] {
            let p = Pipeline::new(PipelineConfig::new(access()).with_mode(mode)).unwrap();
            let out = p.run(Source::text(three_tier_log())).unwrap();
            assert_eq!(out.cags.len(), 1, "{mode:?}");
            assert_eq!(out.cags[0].vertices.len(), 10, "{mode:?}");
            out.cags[0].validate().expect("valid CAG");
        }
    }

    #[test]
    fn source_shapes_are_equivalent() {
        let records = parse_log(three_tier_log()).unwrap();
        for mode in [
            Mode::Batch,
            Mode::Streaming,
            Mode::Sharded(3),
            Mode::Distributed {
                routers: 3,
                workers_per_router: 1,
            },
        ] {
            let p = Pipeline::new(PipelineConfig::new(access()).with_mode(mode)).unwrap();
            let from_text = p.run(Source::text(three_tier_log())).unwrap();
            let from_records = p.run(Source::records(records.clone())).unwrap();
            let from_iter = p
                .run(records.iter().cloned().collect::<Source<'static>>())
                .unwrap();
            assert_eq!(render(&from_text), render(&from_records), "{mode:?}");
            assert_eq!(render(&from_text), render(&from_iter), "{mode:?}");
        }
    }

    #[test]
    fn binary_source_matches_text_source_in_every_mode() {
        let bin = crate::binfmt::encode_text(three_tier_log(), 1).unwrap();
        let path = std::env::temp_dir().join(format!(
            "pt_pipeline_binary_source_{}.ptbin",
            std::process::id()
        ));
        std::fs::write(&path, &bin).unwrap();
        for mode in [
            Mode::Batch,
            Mode::Streaming,
            Mode::Sharded(2),
            Mode::Distributed {
                routers: 2,
                workers_per_router: 2,
            },
        ] {
            for threads in [1, 3] {
                let p = Pipeline::new(
                    PipelineConfig::new(access())
                        .with_mode(mode)
                        .with_ingest_threads(threads),
                )
                .unwrap();
                let from_text = p.run(Source::text(three_tier_log())).unwrap();
                let from_binary = p.run(Source::binary_path(&path)).unwrap();
                assert_eq!(
                    render(&from_text),
                    render(&from_binary),
                    "{mode:?} threads={threads}"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sessions_reach_the_batch_output_in_every_mode() {
        let p = Pipeline::new(PipelineConfig::new(access())).unwrap();
        let want = render(&p.run(Source::text(three_tier_log())).unwrap());
        for mode in [
            Mode::Batch,
            Mode::Streaming,
            Mode::Sharded(2),
            Mode::Distributed {
                routers: 2,
                workers_per_router: 2,
            },
        ] {
            let p = Pipeline::new(PipelineConfig::new(access()).with_mode(mode)).unwrap();
            let mut s = p.session().unwrap();
            let mut cags = Vec::new();
            for line in three_tier_log().lines() {
                s.push_line(line.trim()).unwrap();
                cags.extend(s.poll().unwrap());
            }
            let mut out = s.finish().unwrap();
            cags.extend(std::mem::take(&mut out.cags));
            assert_eq!(cags.len(), 1, "{mode:?}");
            assert_eq!(out.metrics.records_in, 10, "{mode:?}");
            if mode == Mode::Batch {
                out.cags = cags;
                assert_eq!(render(&out), want);
            }
            // Spent after finish, across all modes.
            assert_eq!(s.poll(), Err(TraceError::Finished), "{mode:?}");
            assert!(matches!(s.finish(), Err(TraceError::Finished)), "{mode:?}");
        }
    }

    #[test]
    fn invalid_configs_are_rejected_up_front() {
        let no_access = PipelineConfig::new(AccessPointSpec::default());
        assert!(Pipeline::new(no_access).is_err());
        let bad_shards =
            PipelineConfig::new(access()).with_mode(Mode::Sharded(crate::shard::MAX_SHARDS + 1));
        assert!(Pipeline::new(bad_shards).is_err());
        let zero_window = PipelineConfig::new(access()).with_window(Nanos::ZERO);
        assert!(Pipeline::new(zero_window).is_err());
        let zero_routers = PipelineConfig::new(access()).with_mode(Mode::Distributed {
            routers: 0,
            workers_per_router: 1,
        });
        assert!(Pipeline::new(zero_routers).is_err());
        let too_many_routers = PipelineConfig::new(access()).with_mode(Mode::Distributed {
            routers: crate::dist::MAX_ROUTERS + 1,
            workers_per_router: 1,
        });
        assert!(Pipeline::new(too_many_routers).is_err());
        let too_many_workers = PipelineConfig::new(access()).with_mode(Mode::Distributed {
            routers: 2,
            workers_per_router: crate::shard::MAX_SHARDS,
        });
        assert!(Pipeline::new(too_many_workers).is_err());
        let addr_mismatch = PipelineConfig::new(access())
            .with_mode(Mode::Distributed {
                routers: 2,
                workers_per_router: 1,
            })
            .with_router_transport(RouterTransport::Connect {
                addrs: vec!["127.0.0.1:1".into()],
            });
        assert!(Pipeline::new(addr_mismatch).is_err());
    }

    #[test]
    fn config_builders_delegate() {
        let cfg = PipelineConfig::new(access())
            .with_window(Nanos::from_millis(5))
            .with_memory_budget(1 << 20)
            .with_spill_dir("/tmp/pt-spill-test")
            .with_shed_on_budget()
            .with_max_seal_lag(64)
            .with_channel_idle_horizon(10_000)
            .with_lane_settle_depth(512)
            .with_orphan_parity()
            .with_ingest_threads(4)
            .with_mode(Mode::Sharded(0));
        assert_eq!(cfg.correlator.ranker.window, Nanos::from_millis(5));
        assert_eq!(cfg.correlator.memory_budget, Some(1 << 20));
        assert_eq!(
            cfg.correlator.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/pt-spill-test"))
        );
        assert!(cfg.correlator.shed_on_budget);
        assert_eq!(cfg.correlator.max_seal_lag, Some(64));
        assert_eq!(cfg.correlator.channel_idle_horizon, Some(10_000));
        assert_eq!(cfg.correlator.lane_settle_depth, Some(512));
        assert!(cfg.correlator.orphan_parity);
        let off = PipelineConfig::new(access())
            .with_channel_idle_horizon(0)
            .with_lane_settle_depth(0);
        assert_eq!(off.correlator.channel_idle_horizon, None);
        assert_eq!(off.correlator.lane_settle_depth, None);
        assert_eq!(cfg.ingest_threads, 4);
        assert_eq!(cfg.mode, Mode::Sharded(0));
    }
}
