//! Correlation metrics: counters, wall time and the memory gauge used by
//! the Fig. 11 experiment.

use std::time::Duration;

use crate::engine::EngineCounters;
use crate::ranker::RankerCounters;

/// Everything PreciseTracer can report about one correlation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorrelatorMetrics {
    /// Raw records presented to the correlator.
    pub records_in: u64,
    /// Records dropped by the attribute filters (§4.3 way 1).
    pub filtered_out: u64,
    /// Duplicate byte-range records discarded at ingest (they would
    /// break Rule 1's byte exactness): v1 records dropped by the
    /// capture frontend's `retrans` marker plus v2 records dropped by
    /// `seq=` offset arithmetic.
    pub retrans_dropped: u64,
    /// Subset of [`CorrelatorMetrics::retrans_dropped`] decided by
    /// `TCP_TRACE v2` range arithmetic (fully covered `seq=` ranges)
    /// rather than by trusting the v1 marker.
    pub seq_dedup_ranges: u64,
    /// Records carrying the v2 `seq=` attribute, dropped or not.
    pub v2_records: u64,
    /// Partial-capture gaps observed at ingest: records whose `seq=`
    /// started above the channel's covered high-water mark — evidence
    /// of records the sniffer missed.
    pub seq_gaps: u64,
    /// Sharded mode only: orphan-chain records (noise chatter the batch
    /// engine would absorb into never-emitted orphan chains) dropped
    /// reader-side instead of being shipped to a worker. Zero in the
    /// single-instance modes and under
    /// [`crate::correlator::CorrelatorConfig::orphan_parity`].
    pub orphan_dropped: u64,
    /// Ranker counters (Rules 1/2, swaps, boosts, `is_noise` discards).
    pub ranker: RankerCounters,
    /// Engine counters (merges, matches, evictions).
    pub engine: EngineCounters,
    /// Completed causal paths output.
    pub cags_finished: u64,
    /// Deformed paths: still open at end of input (lost END
    /// activities) plus any evicted mid-stream by the memory budget
    /// (`engine.budget_evicted_cags`), which are counted here but not
    /// returned — retaining them would defeat the budget.
    pub cags_unfinished: u64,
    /// Range-dedup coverage entries paged out by the spill tier.
    pub spilled_dedup_entries: u64,
    /// Spilled coverage entries faulted back on a channel's next record.
    pub spill_dedup_faults: u64,
    /// Pages the spill file's write-behind thread wrote to disk.
    pub spill_pages_written: u64,
    /// Pages read back from the spill file on faults.
    pub spill_pages_read: u64,
    /// Faults served from the write-behind queue before the disk caught
    /// up (no read I/O).
    pub spill_queue_hits: u64,
    /// Peak approximate resident bytes of ranker buffers + engine state
    /// (sampled once per candidate).
    pub peak_bytes: usize,
    /// Approximate resident bytes when correlation ended.
    pub final_bytes: usize,
    /// Wall-clock time spent inside the correlation loop.
    pub wall: Duration,
}

impl CorrelatorMetrics {
    /// Folds one shard's metrics into this aggregate: counts are sums,
    /// memory gauges are sums (shards are resident concurrently), and
    /// wall time is the maximum (shards run in parallel).
    pub fn absorb(&mut self, other: &CorrelatorMetrics) {
        self.records_in += other.records_in;
        self.filtered_out += other.filtered_out;
        self.retrans_dropped += other.retrans_dropped;
        self.seq_dedup_ranges += other.seq_dedup_ranges;
        self.v2_records += other.v2_records;
        self.seq_gaps += other.seq_gaps;
        self.orphan_dropped += other.orphan_dropped;
        self.ranker.absorb(&other.ranker);
        self.engine.absorb(&other.engine);
        self.cags_finished += other.cags_finished;
        self.cags_unfinished += other.cags_unfinished;
        self.spilled_dedup_entries += other.spilled_dedup_entries;
        self.spill_dedup_faults += other.spill_dedup_faults;
        self.spill_pages_written += other.spill_pages_written;
        self.spill_pages_read += other.spill_pages_read;
        self.spill_queue_hits += other.spill_queue_hits;
        self.peak_bytes += other.peak_bytes;
        self.final_bytes += other.final_bytes;
        self.wall = self.wall.max(other.wall);
    }

    /// Correlation throughput in candidates per second (0 when the run
    /// was too fast to measure).
    pub fn candidates_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ranker.candidates as f64 / secs
        }
    }

    /// A compact one-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "in={} filtered={} candidates={} cags={} unfinished={} noise={} swaps={} peak_mem={}B wall={:?}",
            self.records_in,
            self.filtered_out,
            self.ranker.candidates,
            self.cags_finished,
            self.cags_unfinished,
            self.ranker.noise_discards,
            self.ranker.swaps,
            self.peak_bytes,
            self.wall,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_handles_zero_wall() {
        let m = CorrelatorMetrics::default();
        assert_eq!(m.candidates_per_sec(), 0.0);
    }

    #[test]
    fn throughput_computes() {
        let mut m = CorrelatorMetrics::default();
        m.ranker.candidates = 500;
        m.wall = Duration::from_millis(250);
        assert!((m.candidates_per_sec() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn summary_mentions_key_fields() {
        let m = CorrelatorMetrics {
            records_in: 42,
            cags_finished: 7,
            ..Default::default()
        };
        let s = m.summary();
        assert!(s.contains("in=42"));
        assert!(s.contains("cags=7"));
    }
}
