//! The raw `TCP_TRACE` record format (§3.1), versions 1 and 2.
//!
//! The paper's SystemTap module logs one line per kernel `tcp_sendmsg` /
//! `tcp_recvmsg` call:
//!
//! ```text
//! timestamp hostname program_name ProcessID ThreadID SEND/RECEIVE sender_ip:port-receiver_ip:port message_size
//! ```
//!
//! [`RawRecord`] parses and formats exactly this shape (timestamps in
//! integer nanoseconds). PreciseTracer then transforms raw records into
//! typed [`Activity`](crate::activity::Activity) tuples via
//! [`access::Classifier`](crate::access::Classifier).
//!
//! ## Format versions
//!
//! **v1** is the eight-field line above, optionally followed by the
//! `retrans` marker described below. **v2** (`TCP_TRACE v2`) adds one
//! more optional trailing attribute, `seq=<stream-byte-offset>`: the
//! zero-based offset of the record's first payload byte within its
//! directed channel's byte stream, as recovered from TCP sequence
//! numbers by a sniffer-based capture frontend. The full grammar is
//!
//! ```text
//! line    := ts host prog pid tid op chan size attr*
//! attr    := "seq=" u64 | "retrans"        (each at most once)
//! ```
//!
//! v1 lines (no `seq=`) parse unchanged; rendering emits `seq=` before
//! `retrans`, and parsing accepts the attributes in either order.
//!
//! ## Retransmission records and range-aware dedup
//!
//! The paper's probe hooks `tcp_recvmsg`, which never surfaces
//! duplicate bytes — the kernel discards retransmitted ranges before
//! the application reads. A **sniffer-based** probe (tcpdump-style)
//! sees every wire arrival instead, including duplicated byte ranges
//! from TCP retransmissions. In v1 its capture frontend performs the
//! sequence-number analysis itself and marks such records with a
//! trailing `retrans` attribute, which correlation ingest trusts
//! blindly. In v2 the frontend ships the raw `seq=` offsets instead
//! and ingest performs the analysis: a [`RangeDedup`] tracks the byte
//! ranges already seen per `(channel, direction)` and drops any record
//! whose range is entirely covered — counted in
//! [`CorrelatorMetrics::seq_dedup_ranges`](crate::metrics::CorrelatorMetrics)
//! as well as the total
//! [`CorrelatorMetrics::retrans_dropped`](crate::metrics::CorrelatorMetrics).
//! Records without `seq=` keep the v1 marker behavior, restoring the
//! byte-exactness Rule 1 depends on either way;
//! [`dedup_retransmissions`] performs the same deduplication as a
//! standalone pre-pass, on the same range logic.

use std::fmt;
use std::sync::Arc;

use crate::activity::{Channel, ContextId, EndpointV4, LocalTime};
use crate::error::TraceError;
use crate::intern::Interner;
use crate::spill::codec;

/// Direction of a raw kernel TCP activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RawOp {
    /// `tcp_sendmsg` — the logging node is the sender.
    Send,
    /// `tcp_recvmsg` — the logging node is the receiver.
    Receive,
}

impl fmt::Display for RawOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RawOp::Send => "SEND",
            RawOp::Receive => "RECEIVE",
        })
    }
}

impl std::str::FromStr for RawOp {
    type Err = TraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "SEND" => Ok(RawOp::Send),
            "RECEIVE" => Ok(RawOp::Receive),
            other => Err(TraceError::parse(other, "expected SEND or RECEIVE")),
        }
    }
}

/// One raw probe record in the original `TCP_TRACE` format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecord {
    /// Local timestamp (nanoseconds on the logging node's clock).
    pub ts: LocalTime,
    /// Hostname of the logging node.
    pub hostname: Arc<str>,
    /// Program (executable) name.
    pub program: Arc<str>,
    /// Process ID.
    pub pid: u32,
    /// Thread ID.
    pub tid: u32,
    /// SEND or RECEIVE.
    pub op: RawOp,
    /// Sender endpoint of the TCP channel.
    pub src: EndpointV4,
    /// Receiver endpoint of the TCP channel.
    pub dst: EndpointV4,
    /// Bytes transferred by this kernel call.
    pub size: u64,
    /// Opaque ground-truth tag (0 = untagged); not part of the text
    /// format, used only by evaluation harnesses.
    pub tag: u64,
    /// True when this record duplicates an already-captured byte range
    /// (a TCP retransmission seen by a sniffer-based probe; marked by
    /// the capture frontend with a trailing `retrans` attribute).
    pub retrans: bool,
    /// `TCP_TRACE v2`: stream byte offset of the record's first payload
    /// byte on its directed channel (the trailing `seq=` attribute),
    /// recovered from TCP sequence numbers by a sniffer-based capture
    /// frontend. `None` for v1 records.
    pub seq: Option<u64>,
}

impl RawRecord {
    /// The directed channel (sender → receiver).
    #[inline]
    pub fn channel(&self) -> Channel {
        Channel::new(self.src, self.dst)
    }

    /// The execution-entity context of the record.
    #[inline]
    pub fn context(&self) -> ContextId {
        ContextId {
            hostname: Arc::clone(&self.hostname),
            program: Arc::clone(&self.program),
            pid: self.pid,
            tid: self.tid,
        }
    }

    /// Parses one `TCP_TRACE` log line.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] when the line does not have the
    /// eight whitespace-separated fields of the TCP_TRACE format
    /// (optionally followed by the `seq=`/`retrans` v2 attributes) or a
    /// field is malformed.
    pub fn parse_line(line: &str) -> Result<Self, TraceError> {
        let mut interner = Interner::new();
        RawRecordRef::parse_line(line).map(|r| r.to_owned_interned(&mut interner))
    }

    /// A borrowed view of this record; the string fields borrow from
    /// the owned `Arc<str>` allocations.
    #[inline]
    pub fn as_record_ref(&self) -> RawRecordRef<'_> {
        RawRecordRef {
            ts: self.ts,
            hostname: &self.hostname,
            program: &self.program,
            pid: self.pid,
            tid: self.tid,
            op: self.op,
            src: self.src,
            dst: self.dst,
            size: self.size,
            tag: self.tag,
            retrans: self.retrans,
            seq: self.seq,
        }
    }
}

/// A zero-copy view of one `TCP_TRACE` log line: the string fields
/// borrow from the input text, so parsing allocates nothing.
///
/// This is the ingest-side representation: a reader thread can parse,
/// classify and filter records through `RawRecordRef` and only pay for
/// owned strings ([`RawRecord`] / [`crate::activity::Activity`]) on the
/// records that survive filtering — and even those go through an
/// [`Interner`] so each distinct hostname/program is allocated once per
/// session, not once per record.
///
/// # Examples
///
/// ```
/// use tracer_core::raw::RawRecordRef;
/// let r = RawRecordRef::parse_line(
///     "1000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 42",
/// )?;
/// assert_eq!(r.hostname, "web");
/// assert_eq!(r.size, 42);
/// # Ok::<(), tracer_core::TraceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRecordRef<'a> {
    /// Local timestamp (nanoseconds on the logging node's clock).
    pub ts: LocalTime,
    /// Hostname of the logging node (borrowed from the input line).
    pub hostname: &'a str,
    /// Program (executable) name (borrowed from the input line).
    pub program: &'a str,
    /// Process ID.
    pub pid: u32,
    /// Thread ID.
    pub tid: u32,
    /// SEND or RECEIVE.
    pub op: RawOp,
    /// Sender endpoint of the TCP channel.
    pub src: EndpointV4,
    /// Receiver endpoint of the TCP channel.
    pub dst: EndpointV4,
    /// Bytes transferred by this kernel call.
    pub size: u64,
    /// Opaque ground-truth tag (0 = untagged).
    pub tag: u64,
    /// True when this record duplicates an already-captured byte range
    /// (a sniffer-visible TCP retransmission).
    pub retrans: bool,
    /// `TCP_TRACE v2` stream byte offset (`seq=`); `None` for v1 lines.
    pub seq: Option<u64>,
}

impl<'a> RawRecordRef<'a> {
    /// Parses one `TCP_TRACE` log line without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] when the line does not have the
    /// eight whitespace-separated fields of the TCP_TRACE format
    /// (optionally followed by the `seq=`/`retrans` v2 attributes) or a
    /// field is malformed.
    pub fn parse_line(line: &'a str) -> Result<Self, TraceError> {
        let mut it = line.split_ascii_whitespace();
        let mut next = |what: &str| {
            it.next()
                .ok_or_else(|| TraceError::parse(line, format!("missing field: {what}")))
        };
        let ts: u64 = next("timestamp")?
            .parse()
            .map_err(|_| TraceError::parse(line, "bad timestamp"))?;
        let hostname = next("hostname")?;
        let program = next("program")?;
        let pid: u32 = next("pid")?
            .parse()
            .map_err(|_| TraceError::parse(line, "bad pid"))?;
        let tid: u32 = next("tid")?
            .parse()
            .map_err(|_| TraceError::parse(line, "bad tid"))?;
        let op: RawOp = next("op")?.parse()?;
        let chan = next("channel")?;
        let (src, dst) = chan
            .split_once('-')
            .ok_or_else(|| TraceError::parse(line, "channel missing '-'"))?;
        let src: EndpointV4 = src.parse()?;
        let dst: EndpointV4 = dst.parse()?;
        let size: u64 = next("size")?
            .parse()
            .map_err(|_| TraceError::parse(line, "bad size"))?;
        // Trailing v1/v2 attributes: `seq=<offset>` and `retrans`, each
        // at most once, in either order.
        let mut retrans = false;
        let mut seq: Option<u64> = None;
        for attr in it {
            match attr {
                "retrans" if !retrans => retrans = true,
                a if a.starts_with("seq=") && seq.is_none() => {
                    let v = a["seq=".len()..]
                        .parse()
                        .map_err(|_| TraceError::parse(line, "bad seq= offset"))?;
                    seq = Some(v);
                }
                _ => return Err(TraceError::parse(line, "trailing fields")),
            }
        }
        Ok(RawRecordRef {
            ts: LocalTime::from_nanos(ts),
            hostname,
            program,
            pid,
            tid,
            op,
            src,
            dst,
            size,
            tag: 0,
            retrans,
            seq,
        })
    }

    /// The directed channel (sender → receiver).
    #[inline]
    pub fn channel(&self) -> Channel {
        Channel::new(self.src, self.dst)
    }

    /// True for kernel-level sends (the logging node is the sender);
    /// BEGIN/END classification never changes this, so attribute
    /// filters can be evaluated on the borrowed record.
    #[inline]
    pub fn is_send(&self) -> bool {
        self.op == RawOp::Send
    }

    /// Converts to an owned [`RawRecord`], interning the hostname and
    /// program so repeated values share one allocation.
    pub fn to_owned_interned(&self, interner: &mut Interner) -> RawRecord {
        RawRecord {
            ts: self.ts,
            hostname: interner.intern(self.hostname),
            program: interner.intern(self.program),
            pid: self.pid,
            tid: self.tid,
            op: self.op,
            src: self.src,
            dst: self.dst,
            size: self.size,
            tag: self.tag,
            retrans: self.retrans,
            seq: self.seq,
        }
    }
}

impl fmt::Display for RawRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_record_ref().fmt(f)
    }
}

impl fmt::Display for RawRecordRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {} {} {}-{} {}",
            self.ts,
            self.hostname,
            self.program,
            self.pid,
            self.tid,
            self.op,
            self.src,
            self.dst,
            self.size
        )?;
        if let Some(seq) = self.seq {
            write!(f, " seq={seq}")?;
        }
        if self.retrans {
            f.write_str(" retrans")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for RawRecord {
    type Err = TraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        RawRecord::parse_line(s)
    }
}

/// Parses a whole TCP_TRACE log: one record per non-empty line; lines
/// starting with `#` are comments.
///
/// # Errors
///
/// Returns the first parse error encountered.
///
/// # Examples
///
/// ```
/// use tracer_core::raw::parse_log;
/// let recs = parse_log("# comment\n100 web httpd 1 1 SEND 10.0.0.1:80-10.0.0.9:5000 42\n")?;
/// assert_eq!(recs.len(), 1);
/// assert_eq!(recs[0].size, 42);
/// # Ok::<(), tracer_core::TraceError>(())
/// ```
pub fn parse_log(text: &str) -> Result<Vec<RawRecord>, TraceError> {
    let mut interner = Interner::new();
    parse_log_iter(text)
        .map(|r| r.map(|rr| rr.to_owned_interned(&mut interner)))
        .collect()
}

/// Zero-copy iteration over a TCP_TRACE log: yields one borrowed
/// [`RawRecordRef`] per non-empty, non-comment line, without allocating
/// per record. This is the ingest path of the sharded pipeline: the
/// reader thread parses, classifies and filters borrowed records and
/// only materializes owned activities for the survivors.
///
/// # Examples
///
/// ```
/// use tracer_core::raw::parse_log_iter;
/// let n = parse_log_iter("# comment\n100 web httpd 1 1 SEND 10.0.0.1:80-10.0.0.9:5000 42\n")
///     .filter_map(Result::ok)
///     .count();
/// assert_eq!(n, 1);
/// ```
pub fn parse_log_iter(
    text: &str,
) -> impl Iterator<Item = Result<RawRecordRef<'_>, TraceError>> + '_ {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(RawRecordRef::parse_line)
}

/// A set of covered byte ranges over one directed byte stream: a
/// contiguous high-water mark plus out-of-order held ranges, exactly
/// the state a kernel TCP receive queue keeps (and the minimum the
/// range dedup needs).
#[derive(Debug, Default)]
struct RangeSet {
    /// Everything below this offset is covered.
    hwm: u64,
    /// Disjoint, non-adjacent covered ranges above the high-water mark:
    /// start → length.
    ooo: std::collections::BTreeMap<u64, u64>,
}

impl RangeSet {
    /// Inserts `[start, start + len)` and returns how many of its bytes
    /// were **not** covered before.
    fn insert(&mut self, start: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let end = start + len;
        if end <= self.hwm {
            return 0;
        }
        let start = start.max(self.hwm);
        if start == self.hwm {
            // Extends the contiguous prefix; bytes overlapping held
            // ranges were already covered. Absorb ranges that became
            // contiguous.
            let held: u64 = self
                .ooo
                .range(..end)
                .filter(|(&o, &l)| o + l > start)
                .map(|(&o, &l)| (o + l).min(end) - o.max(start))
                .sum();
            let fresh = (end - start) - held;
            self.hwm = end;
            self.drain_contiguous();
            return fresh;
        }
        // Above the prefix: clip against held ranges, merge the union
        // back in (adjacent ranges coalesce, keeping the map compact).
        let mut covered = 0u64;
        let mut merged_start = start;
        let mut merged_end = end;
        let keys: Vec<u64> = self
            .ooo
            .range(..=end)
            .filter(|(&o, &l)| o + l >= start)
            .map(|(&o, _)| o)
            .collect();
        for o in keys {
            let l = self.ooo.remove(&o).expect("key just enumerated");
            covered += (o + l).min(end).saturating_sub(o.max(start));
            merged_start = merged_start.min(o);
            merged_end = merged_end.max(o + l);
        }
        self.ooo.insert(merged_start, merged_end - merged_start);
        (end - start) - covered
    }

    /// The highest stream offset covered by any inserted range.
    fn max_end(&self) -> u64 {
        self.ooo
            .last_key_value()
            .map(|(&o, &l)| o + l)
            .unwrap_or(0)
            .max(self.hwm)
    }

    /// Promotes held ranges that became contiguous with (or fell below)
    /// the high-water mark.
    fn drain_contiguous(&mut self) {
        while let Some((&o, &l)) = self.ooo.first_key_value() {
            if o > self.hwm {
                break;
            }
            self.ooo.remove(&o);
            self.hwm = self.hwm.max(o + l);
        }
    }
}

/// One directed channel's coverage plus its last-touch tick (coldness
/// ranking for the correlator's spill tier).
#[derive(Debug, Default)]
struct CoverEntry {
    set: RangeSet,
    /// Logical time of the entry's last touch (one tick per v2 record).
    touch: u64,
}

/// What the range-aware ingest decided for one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestDecision {
    /// Admit the record with this effective payload size (currently
    /// always the record's own size; carried so the ingest stage can
    /// adjust records without another API change).
    Admit(u64),
    /// Drop the record: a duplicate byte range (fully covered `seq=`
    /// range, or the v1 `retrans` marker).
    Drop,
}

/// The range-aware ingest stage of `TCP_TRACE v2` (and the v1 marker
/// fallback): decides, record by record, whether a record duplicates
/// byte ranges already seen on its directed channel.
///
/// For a v2 record (one carrying `seq=`) the decision is pure offset
/// arithmetic — the record is a duplicate exactly when every byte of
/// `[seq, seq + size)` was already covered by an earlier record of the
/// same channel and direction; the `retrans` marker is ignored. A
/// `seq` starting above the channel's covered high-water mark is a
/// **capture gap** (records a partial-capture sniffer missed; counted
/// in [`RangeDedup::seq_gaps`]) — the record itself is admitted
/// unchanged, and downstream consumers that need byte conservation
/// (the sharded session router) resolve gaps by range arithmetic on
/// the `seq` offsets instead of blind byte counting. For a v1 record
/// the capture frontend's `retrans` marker is trusted, as before.
/// Records must be presented in each host's local-time order (the
/// order every correlation path already establishes).
#[derive(Debug, Default)]
pub struct RangeDedup {
    cover: crate::fasthash::FxHashMap<(Channel, RawOp), CoverEntry>,
    /// Logical clock behind `CoverEntry::touch`.
    ticks: u64,
    /// Records seen carrying a `seq=` attribute.
    pub v2_records: u64,
    /// Records dropped by offset arithmetic (subset of all drops).
    pub seq_dedup_ranges: u64,
    /// Capture gaps observed: records whose `seq=` started above the
    /// channel's covered high-water mark — evidence of records a
    /// partial-capture sniffer missed.
    pub seq_gaps: u64,
}

impl RangeDedup {
    /// An empty dedup state.
    pub fn new() -> Self {
        RangeDedup::default()
    }

    /// Decides one borrowed record.
    pub fn decide(&mut self, rec: &RawRecordRef<'_>) -> IngestDecision {
        self.decide_parts(rec.channel(), rec.op, rec.seq, rec.size, rec.retrans)
    }

    /// Decides one owned record.
    pub fn decide_owned(&mut self, rec: &RawRecord) -> IngestDecision {
        self.decide_parts(rec.channel(), rec.op, rec.seq, rec.size, rec.retrans)
    }

    fn decide_parts(
        &mut self,
        channel: Channel,
        op: RawOp,
        seq: Option<u64>,
        size: u64,
        retrans: bool,
    ) -> IngestDecision {
        match seq {
            Some(seq) => {
                self.v2_records += 1;
                self.ticks += 1;
                let entry = self.cover.entry((channel, op)).or_default();
                entry.touch = self.ticks;
                let cover = &mut entry.set;
                if seq > cover.max_end() {
                    // A seq above every byte seen so far means the
                    // sniffer missed the records for the span in
                    // between: TCP delivered those bytes (the stream
                    // is contiguous), their records are simply absent.
                    self.seq_gaps += 1;
                }
                let fresh = cover.insert(seq, size.max(1));
                if fresh == 0 {
                    self.seq_dedup_ranges += 1;
                    return IngestDecision::Drop;
                }
                if retrans {
                    // A frontend-flagged duplicate whose range is not
                    // fully covered: the record(s) carrying the
                    // original bytes were themselves lost to partial
                    // capture. The marker is still authoritative
                    // evidence of duplication — admitting the record
                    // would double bytes the kernel delivered once.
                    return IngestDecision::Drop;
                }
                IngestDecision::Admit(size)
            }
            None => {
                if retrans {
                    IngestDecision::Drop
                } else {
                    IngestDecision::Admit(size)
                }
            }
        }
    }

    /// Forgets both directions' coverage for one channel. The sharded
    /// reader calls this when its idle GC evicts the channel's router
    /// claims, so dedup coverage is shed at the same horizon instead of
    /// growing for the stream's lifetime. If the channel later resumes,
    /// its coverage rebuilds from the new high-water mark (the first
    /// record after resumption may then count a spurious `seq_gaps` —
    /// the same evidence-loss tradeoff the claim eviction makes).
    pub fn evict_channel(&mut self, channel: Channel) {
        self.cover.remove(&(channel, RawOp::Send));
        self.cover.remove(&(channel, RawOp::Receive));
    }

    /// Approximate resident bytes of the coverage state.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.cover.len() * (size_of::<(Channel, RawOp)>() + size_of::<CoverEntry>())
            + self
                .cover
                .values()
                .map(|r| r.set.ooo.len() * size_of::<(u64, u64)>())
                .sum::<usize>()
    }

    /// Number of resident coverage entries (directed channels tracked).
    pub fn cover_len(&self) -> usize {
        self.cover.len()
    }

    /// Serializes and removes the least-recently-touched coverage entry
    /// so the correlator's spill tier can page it out; ties break on the
    /// channel/op key, keeping selection deterministic. Restoring via
    /// [`RangeDedup::restore_entry`] before the channel's next record is
    /// observationally identical to never having spilled.
    pub fn take_coldest_entry(&mut self) -> Option<((Channel, RawOp), Vec<u8>)> {
        fn sort_key(ch: &Channel, op: RawOp) -> (u32, u16, u32, u16, u8) {
            (
                u32::from(ch.src.ip),
                ch.src.port,
                u32::from(ch.dst.ip),
                ch.dst.port,
                matches!(op, RawOp::Receive) as u8,
            )
        }
        let key = *self
            .cover
            .iter()
            .min_by_key(|((ch, op), e)| (e.touch, sort_key(ch, *op)))
            .map(|(k, _)| k)?;
        let e = self.cover.remove(&key).expect("key just enumerated");
        let mut buf = Vec::new();
        codec::put_u64(&mut buf, e.touch);
        codec::put_u64(&mut buf, e.set.hwm);
        codec::put_u32(&mut buf, e.set.ooo.len() as u32);
        for (&o, &l) in &e.set.ooo {
            codec::put_u64(&mut buf, o);
            codec::put_u64(&mut buf, l);
        }
        Some((key, buf))
    }

    /// Restores a coverage entry paged out by
    /// [`RangeDedup::take_coldest_entry`].
    pub fn restore_entry(&mut self, key: (Channel, RawOp), bytes: &[u8]) {
        let mut d = codec::Dec::new(bytes);
        let touch = d.u64();
        let hwm = d.u64();
        let n = d.u32();
        let mut ooo = std::collections::BTreeMap::new();
        for _ in 0..n {
            let o = d.u64();
            let l = d.u64();
            ooo.insert(o, l);
        }
        self.cover.insert(
            key,
            CoverEntry {
                set: RangeSet { hwm, ooo },
                touch,
            },
        );
    }
}

/// Drops the retransmitted (duplicate) byte-range records of a
/// sniffer-based capture, yielding the log a `tcp_recvmsg`-level probe
/// would have produced. v2 records (carrying `seq=`) are deduplicated
/// by offset arithmetic through [`RangeDedup`]; v1 records fall back to
/// the capture frontend's `retrans` marker. Correlation ingest performs
/// the same deduplication internally, so correlating the raw log and
/// correlating this pre-pass's output yield the same CAG set — the
/// invariance pinned by `tests/properties.rs`.
pub fn dedup_retransmissions(records: impl IntoIterator<Item = RawRecord>) -> Vec<RawRecord> {
    let mut dedup = RangeDedup::new();
    records
        .into_iter()
        .filter_map(|mut r| match dedup.decide_owned(&r) {
            IngestDecision::Drop => None,
            IngestDecision::Admit(size) => {
                r.size = size;
                Some(r)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "123456789 node2 java 4242 4250 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 1448";

    #[test]
    fn parse_roundtrip() {
        let r = RawRecord::parse_line(LINE).unwrap();
        assert_eq!(r.ts, LocalTime::from_nanos(123_456_789));
        assert_eq!(&*r.hostname, "node2");
        assert_eq!(&*r.program, "java");
        assert_eq!(r.pid, 4242);
        assert_eq!(r.tid, 4250);
        assert_eq!(r.op, RawOp::Receive);
        assert_eq!(r.src.port, 33000);
        assert_eq!(r.dst.port, 8009);
        assert_eq!(r.size, 1448);
        assert_eq!(r.to_string(), LINE);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "only three fields here",
            "x node2 java 4242 4250 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 1448",
            "1 node2 java nope 4250 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 1448",
            "1 node2 java 1 2 RECV 10.0.0.1:33000-10.0.0.2:8009 1448",
            "1 node2 java 1 2 RECEIVE 10.0.0.1:33000+10.0.0.2:8009 1448",
            "1 node2 java 1 2 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 nan",
            "1 node2 java 1 2 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 1448 extra",
        ] {
            assert!(RawRecord::parse_line(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_retrans_marker_roundtrips() {
        let line = format!("{LINE} retrans");
        let r = RawRecord::parse_line(&line).unwrap();
        assert!(r.retrans);
        assert_eq!(r.to_string(), line);
        let plain = RawRecord::parse_line(LINE).unwrap();
        assert!(!plain.retrans);
        // Anything else trailing is still rejected.
        assert!(RawRecord::parse_line(&format!("{LINE} retransX")).is_err());
        assert!(RawRecord::parse_line(&format!("{LINE} retrans retrans")).is_err());
    }

    #[test]
    fn parse_v2_seq_attribute_roundtrips() {
        let line = format!("{LINE} seq=4096");
        let r = RawRecord::parse_line(&line).unwrap();
        assert_eq!(r.seq, Some(4096));
        assert!(!r.retrans);
        assert_eq!(r.to_string(), line);
        // Both attributes, canonical order seq-then-retrans.
        let both = format!("{LINE} seq=0 retrans");
        let r = RawRecord::parse_line(&both).unwrap();
        assert_eq!(r.seq, Some(0));
        assert!(r.retrans);
        assert_eq!(r.to_string(), both);
        // Reverse order parses to the same record (renders canonical).
        let rev = RawRecord::parse_line(&format!("{LINE} retrans seq=0")).unwrap();
        assert_eq!(rev, r);
        // Malformed/duplicated attributes are rejected.
        for bad in [
            format!("{LINE} seq="),
            format!("{LINE} seq=x"),
            format!("{LINE} seq=1 seq=2"),
            format!("{LINE} seq=1 retrans retrans"),
            format!("{LINE} sequence=1"),
        ] {
            assert!(
                RawRecord::parse_line(&bad).is_err(),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn range_set_tracks_coverage() {
        let mut rs = RangeSet::default();
        assert_eq!(rs.insert(0, 100), 100);
        assert_eq!(rs.insert(0, 100), 0);
        assert_eq!(rs.insert(50, 100), 50);
        // Out-of-order hold, duplicate of held, then gap fill.
        assert_eq!(rs.insert(300, 50), 50);
        assert_eq!(rs.insert(300, 50), 0);
        assert_eq!(rs.insert(150, 150), 150);
        assert_eq!(rs.hwm, 350);
        assert!(rs.ooo.is_empty());
        // Spanning insert over held ranges counts only the fresh part.
        assert_eq!(rs.insert(400, 10), 10);
        assert_eq!(rs.insert(350, 100), 90);
        assert_eq!(rs.hwm, 450);
    }

    #[test]
    fn range_dedup_drops_fully_covered_v2_records() {
        let base = "node2 java 1 2 RECEIVE 10.0.0.1:33000-10.0.0.2:8009";
        let parse = |ts: u64, size: u64, attr: &str| {
            RawRecord::parse_line(&format!("{ts} {base} {size}{attr}")).unwrap()
        };
        let mut d = RangeDedup::new();
        assert_eq!(
            d.decide_owned(&parse(1, 100, " seq=0")),
            IngestDecision::Admit(100)
        );
        // Exact duplicate range: dropped by arithmetic, marker ignored.
        assert_eq!(
            d.decide_owned(&parse(2, 100, " seq=0 retrans")),
            IngestDecision::Drop
        );
        assert_eq!(
            d.decide_owned(&parse(3, 40, " seq=20")),
            IngestDecision::Drop
        );
        // Partially fresh: admitted at its own size.
        assert_eq!(
            d.decide_owned(&parse(4, 100, " seq=50")),
            IngestDecision::Admit(100)
        );
        // v1 fallback: marker is authoritative when seq is absent.
        assert_eq!(
            d.decide_owned(&parse(5, 100, " retrans")),
            IngestDecision::Drop
        );
        assert_eq!(
            d.decide_owned(&parse(6, 100, "")),
            IngestDecision::Admit(100)
        );
        assert_eq!(d.v2_records, 4);
        assert_eq!(d.seq_dedup_ranges, 2);
        assert_eq!(d.seq_gaps, 0);
        // The send direction tracks its own coverage.
        let send =
            RawRecord::parse_line("7 node1 java 1 2 SEND 10.0.0.1:33000-10.0.0.2:8009 100 seq=0")
                .unwrap();
        assert_eq!(d.decide_owned(&send), IngestDecision::Admit(100));
        assert!(d.approx_bytes() > 0);
    }

    #[test]
    fn range_dedup_observes_capture_gaps() {
        let base = "node2 java 1 2 RECEIVE 10.0.0.1:33000-10.0.0.2:8009";
        let parse = |ts: u64, size: u64, attr: &str| {
            RawRecord::parse_line(&format!("{ts} {base} {size}{attr}")).unwrap()
        };
        let mut d = RangeDedup::new();
        assert_eq!(
            d.decide_owned(&parse(1, 100, " seq=0")),
            IngestDecision::Admit(100)
        );
        // A capture gap: the record for [100, 150) was missed by the
        // sniffer. The record is admitted unchanged; the gap is counted
        // (the router resolves it by range arithmetic downstream).
        assert_eq!(
            d.decide_owned(&parse(2, 100, " seq=150")),
            IngestDecision::Admit(100)
        );
        assert_eq!(d.seq_gaps, 1);
        // The held range is dedup-visible despite the gap.
        assert_eq!(
            d.decide_owned(&parse(3, 50, " seq=150 retrans")),
            IngestDecision::Drop
        );
        assert_eq!(
            d.decide_owned(&parse(4, 50, " seq=250")),
            IngestDecision::Admit(50)
        );
        assert_eq!(d.seq_gaps, 1);
    }

    #[test]
    fn dedup_retransmissions_uses_range_logic_for_v2() {
        let base = "node2 java 1 2 RECEIVE 10.0.0.1:33000-10.0.0.2:8009";
        let raw = format!("1 {base} 100 seq=0\n2 {base} 100 seq=0 retrans\n3 {base} 100 seq=100\n");
        let recs = parse_log(&raw).unwrap();
        let deduped = dedup_retransmissions(recs);
        assert_eq!(deduped.len(), 2);
        assert_eq!(deduped[0].seq, Some(0));
        assert_eq!(deduped[1].seq, Some(100));
    }

    #[test]
    fn dedup_retransmissions_strips_marked_records() {
        let raw = format!("{LINE}\n{LINE} retrans\n{LINE}\n");
        let recs = parse_log(&raw).unwrap();
        assert_eq!(recs.len(), 3);
        let deduped = dedup_retransmissions(recs);
        assert_eq!(deduped.len(), 2);
        assert!(deduped.iter().all(|r| !r.retrans));
    }

    #[test]
    fn parse_log_skips_comments_and_blank_lines() {
        let text = format!("# header\n\n{LINE}\n  \n{LINE}\n");
        let recs = parse_log(&text).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn context_and_channel_accessors() {
        let r = RawRecord::parse_line(LINE).unwrap();
        let ctx = r.context();
        assert_eq!(&*ctx.hostname, "node2");
        assert_eq!(ctx.tid, 4250);
        assert_eq!(r.channel().dst.port, 8009);
    }

    #[test]
    fn from_str_trait_works() {
        let r: RawRecord = LINE.parse().unwrap();
        assert_eq!(r.size, 1448);
    }

    #[test]
    fn ref_parse_matches_owned_parse() {
        let r = RawRecordRef::parse_line(LINE).unwrap();
        assert_eq!(r.hostname, "node2");
        assert_eq!(r.program, "java");
        assert!(!r.is_send());
        assert_eq!(r.channel().dst.port, 8009);
        let mut interner = Interner::new();
        assert_eq!(
            r.to_owned_interned(&mut interner),
            RawRecord::parse_line(LINE).unwrap()
        );
    }

    #[test]
    fn ref_parse_rejects_what_owned_rejects() {
        for bad in ["", "1 n p 1 2 RECV a-b 3", "1 n p 1 2 RECEIVE x 3"] {
            assert_eq!(
                RawRecordRef::parse_line(bad).is_err(),
                RawRecord::parse_line(bad).is_err(),
            );
        }
    }

    #[test]
    fn parse_log_interns_repeated_names() {
        let text = format!("{LINE}\n{LINE}\n");
        let recs = parse_log(&text).unwrap();
        assert!(Arc::ptr_eq(&recs[0].hostname, &recs[1].hostname));
        assert!(Arc::ptr_eq(&recs[0].program, &recs[1].program));
    }

    #[test]
    fn parse_log_iter_skips_comments_and_borrows() {
        let text = format!("# header\n\n{LINE}\n  \n{LINE}\n");
        let refs: Vec<RawRecordRef<'_>> = parse_log_iter(&text).collect::<Result<_, _>>().unwrap();
        assert_eq!(refs.len(), 2);
        // Borrowed fields point into the original text buffer.
        let start = text.as_ptr() as usize;
        let end = start + text.len();
        let p = refs[0].hostname.as_ptr() as usize;
        assert!(p >= start && p < end);
    }
}
