//! The raw `TCP_TRACE` record format (§3.1).
//!
//! The paper's SystemTap module logs one line per kernel `tcp_sendmsg` /
//! `tcp_recvmsg` call:
//!
//! ```text
//! timestamp hostname program_name ProcessID ThreadID SEND/RECEIVE sender_ip:port-receiver_ip:port message_size
//! ```
//!
//! [`RawRecord`] parses and formats exactly this shape (timestamps in
//! integer nanoseconds). PreciseTracer then transforms raw records into
//! typed [`Activity`](crate::activity::Activity) tuples via
//! [`access::Classifier`](crate::access::Classifier).
//!
//! ## Retransmission records
//!
//! The paper's probe hooks `tcp_recvmsg`, which never surfaces
//! duplicate bytes — the kernel discards retransmitted ranges before
//! the application reads. A **sniffer-based** probe (tcpdump-style)
//! sees every wire arrival instead, including duplicated byte ranges
//! from TCP retransmissions; its capture frontend performs the same
//! sequence-number analysis tcpdump does and marks such records with a
//! trailing `retrans` attribute. Correlation ingest discards marked
//! records up front (counted in
//! [`CorrelatorMetrics::retrans_dropped`](crate::metrics::CorrelatorMetrics)),
//! restoring the byte-exactness Rule 1 depends on;
//! [`dedup_retransmissions`] performs the same deduplication as a
//! standalone pre-pass.

use std::fmt;
use std::sync::Arc;

use crate::activity::{Channel, ContextId, EndpointV4, LocalTime};
use crate::error::TraceError;
use crate::intern::Interner;

/// Direction of a raw kernel TCP activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RawOp {
    /// `tcp_sendmsg` — the logging node is the sender.
    Send,
    /// `tcp_recvmsg` — the logging node is the receiver.
    Receive,
}

impl fmt::Display for RawOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RawOp::Send => "SEND",
            RawOp::Receive => "RECEIVE",
        })
    }
}

impl std::str::FromStr for RawOp {
    type Err = TraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "SEND" => Ok(RawOp::Send),
            "RECEIVE" => Ok(RawOp::Receive),
            other => Err(TraceError::parse(other, "expected SEND or RECEIVE")),
        }
    }
}

/// One raw probe record in the original `TCP_TRACE` format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecord {
    /// Local timestamp (nanoseconds on the logging node's clock).
    pub ts: LocalTime,
    /// Hostname of the logging node.
    pub hostname: Arc<str>,
    /// Program (executable) name.
    pub program: Arc<str>,
    /// Process ID.
    pub pid: u32,
    /// Thread ID.
    pub tid: u32,
    /// SEND or RECEIVE.
    pub op: RawOp,
    /// Sender endpoint of the TCP channel.
    pub src: EndpointV4,
    /// Receiver endpoint of the TCP channel.
    pub dst: EndpointV4,
    /// Bytes transferred by this kernel call.
    pub size: u64,
    /// Opaque ground-truth tag (0 = untagged); not part of the text
    /// format, used only by evaluation harnesses.
    pub tag: u64,
    /// True when this record duplicates an already-captured byte range
    /// (a TCP retransmission seen by a sniffer-based probe; marked by
    /// the capture frontend with a trailing `retrans` attribute).
    pub retrans: bool,
}

impl RawRecord {
    /// The directed channel (sender → receiver).
    #[inline]
    pub fn channel(&self) -> Channel {
        Channel::new(self.src, self.dst)
    }

    /// The execution-entity context of the record.
    #[inline]
    pub fn context(&self) -> ContextId {
        ContextId {
            hostname: Arc::clone(&self.hostname),
            program: Arc::clone(&self.program),
            pid: self.pid,
            tid: self.tid,
        }
    }

    /// Parses one `TCP_TRACE` log line.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] when the line does not have exactly
    /// the eight whitespace-separated fields of the TCP_TRACE format or a
    /// field is malformed.
    pub fn parse_line(line: &str) -> Result<Self, TraceError> {
        let mut interner = Interner::new();
        RawRecordRef::parse_line(line).map(|r| r.to_owned_interned(&mut interner))
    }
}

/// A zero-copy view of one `TCP_TRACE` log line: the string fields
/// borrow from the input text, so parsing allocates nothing.
///
/// This is the ingest-side representation: a reader thread can parse,
/// classify and filter records through `RawRecordRef` and only pay for
/// owned strings ([`RawRecord`] / [`crate::activity::Activity`]) on the
/// records that survive filtering — and even those go through an
/// [`Interner`] so each distinct hostname/program is allocated once per
/// session, not once per record.
///
/// # Examples
///
/// ```
/// use tracer_core::raw::RawRecordRef;
/// let r = RawRecordRef::parse_line(
///     "1000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 42",
/// )?;
/// assert_eq!(r.hostname, "web");
/// assert_eq!(r.size, 42);
/// # Ok::<(), tracer_core::TraceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRecordRef<'a> {
    /// Local timestamp (nanoseconds on the logging node's clock).
    pub ts: LocalTime,
    /// Hostname of the logging node (borrowed from the input line).
    pub hostname: &'a str,
    /// Program (executable) name (borrowed from the input line).
    pub program: &'a str,
    /// Process ID.
    pub pid: u32,
    /// Thread ID.
    pub tid: u32,
    /// SEND or RECEIVE.
    pub op: RawOp,
    /// Sender endpoint of the TCP channel.
    pub src: EndpointV4,
    /// Receiver endpoint of the TCP channel.
    pub dst: EndpointV4,
    /// Bytes transferred by this kernel call.
    pub size: u64,
    /// Opaque ground-truth tag (0 = untagged).
    pub tag: u64,
    /// True when this record duplicates an already-captured byte range
    /// (a sniffer-visible TCP retransmission).
    pub retrans: bool,
}

impl<'a> RawRecordRef<'a> {
    /// Parses one `TCP_TRACE` log line without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] when the line does not have exactly
    /// the eight whitespace-separated fields of the TCP_TRACE format or a
    /// field is malformed.
    pub fn parse_line(line: &'a str) -> Result<Self, TraceError> {
        let mut it = line.split_ascii_whitespace();
        let mut next = |what: &str| {
            it.next()
                .ok_or_else(|| TraceError::parse(line, format!("missing field: {what}")))
        };
        let ts: u64 = next("timestamp")?
            .parse()
            .map_err(|_| TraceError::parse(line, "bad timestamp"))?;
        let hostname = next("hostname")?;
        let program = next("program")?;
        let pid: u32 = next("pid")?
            .parse()
            .map_err(|_| TraceError::parse(line, "bad pid"))?;
        let tid: u32 = next("tid")?
            .parse()
            .map_err(|_| TraceError::parse(line, "bad tid"))?;
        let op: RawOp = next("op")?.parse()?;
        let chan = next("channel")?;
        let (src, dst) = chan
            .split_once('-')
            .ok_or_else(|| TraceError::parse(line, "channel missing '-'"))?;
        let src: EndpointV4 = src.parse()?;
        let dst: EndpointV4 = dst.parse()?;
        let size: u64 = next("size")?
            .parse()
            .map_err(|_| TraceError::parse(line, "bad size"))?;
        let retrans = match it.next() {
            None => false,
            Some("retrans") => true,
            Some(_) => return Err(TraceError::parse(line, "trailing fields")),
        };
        if it.next().is_some() {
            return Err(TraceError::parse(line, "trailing fields"));
        }
        Ok(RawRecordRef {
            ts: LocalTime::from_nanos(ts),
            hostname,
            program,
            pid,
            tid,
            op,
            src,
            dst,
            size,
            tag: 0,
            retrans,
        })
    }

    /// The directed channel (sender → receiver).
    #[inline]
    pub fn channel(&self) -> Channel {
        Channel::new(self.src, self.dst)
    }

    /// True for kernel-level sends (the logging node is the sender);
    /// BEGIN/END classification never changes this, so attribute
    /// filters can be evaluated on the borrowed record.
    #[inline]
    pub fn is_send(&self) -> bool {
        self.op == RawOp::Send
    }

    /// Converts to an owned [`RawRecord`], interning the hostname and
    /// program so repeated values share one allocation.
    pub fn to_owned_interned(&self, interner: &mut Interner) -> RawRecord {
        RawRecord {
            ts: self.ts,
            hostname: interner.intern(self.hostname),
            program: interner.intern(self.program),
            pid: self.pid,
            tid: self.tid,
            op: self.op,
            src: self.src,
            dst: self.dst,
            size: self.size,
            tag: self.tag,
            retrans: self.retrans,
        }
    }
}

impl fmt::Display for RawRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {} {} {}-{} {}",
            self.ts,
            self.hostname,
            self.program,
            self.pid,
            self.tid,
            self.op,
            self.src,
            self.dst,
            self.size
        )?;
        if self.retrans {
            f.write_str(" retrans")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for RawRecord {
    type Err = TraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        RawRecord::parse_line(s)
    }
}

/// Parses a whole TCP_TRACE log: one record per non-empty line; lines
/// starting with `#` are comments.
///
/// # Errors
///
/// Returns the first parse error encountered.
///
/// # Examples
///
/// ```
/// use tracer_core::raw::parse_log;
/// let recs = parse_log("# comment\n100 web httpd 1 1 SEND 10.0.0.1:80-10.0.0.9:5000 42\n")?;
/// assert_eq!(recs.len(), 1);
/// assert_eq!(recs[0].size, 42);
/// # Ok::<(), tracer_core::TraceError>(())
/// ```
pub fn parse_log(text: &str) -> Result<Vec<RawRecord>, TraceError> {
    let mut interner = Interner::new();
    parse_log_iter(text)
        .map(|r| r.map(|rr| rr.to_owned_interned(&mut interner)))
        .collect()
}

/// Zero-copy iteration over a TCP_TRACE log: yields one borrowed
/// [`RawRecordRef`] per non-empty, non-comment line, without allocating
/// per record. This is the ingest path of the sharded pipeline: the
/// reader thread parses, classifies and filters borrowed records and
/// only materializes owned activities for the survivors.
///
/// # Examples
///
/// ```
/// use tracer_core::raw::parse_log_iter;
/// let n = parse_log_iter("# comment\n100 web httpd 1 1 SEND 10.0.0.1:80-10.0.0.9:5000 42\n")
///     .filter_map(Result::ok)
///     .count();
/// assert_eq!(n, 1);
/// ```
pub fn parse_log_iter(
    text: &str,
) -> impl Iterator<Item = Result<RawRecordRef<'_>, TraceError>> + '_ {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(RawRecordRef::parse_line)
}

/// Drops the retransmitted byte-range records a sniffer-based probe
/// marks with the `retrans` attribute, yielding the log a
/// `tcp_recvmsg`-level probe would have produced. Correlation ingest
/// performs the same deduplication internally, so correlating the raw
/// log and correlating this pre-pass's output yield the same CAG set —
/// the invariance pinned by `tests/properties.rs`.
pub fn dedup_retransmissions(records: impl IntoIterator<Item = RawRecord>) -> Vec<RawRecord> {
    records.into_iter().filter(|r| !r.retrans).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "123456789 node2 java 4242 4250 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 1448";

    #[test]
    fn parse_roundtrip() {
        let r = RawRecord::parse_line(LINE).unwrap();
        assert_eq!(r.ts, LocalTime::from_nanos(123_456_789));
        assert_eq!(&*r.hostname, "node2");
        assert_eq!(&*r.program, "java");
        assert_eq!(r.pid, 4242);
        assert_eq!(r.tid, 4250);
        assert_eq!(r.op, RawOp::Receive);
        assert_eq!(r.src.port, 33000);
        assert_eq!(r.dst.port, 8009);
        assert_eq!(r.size, 1448);
        assert_eq!(r.to_string(), LINE);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "only three fields here",
            "x node2 java 4242 4250 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 1448",
            "1 node2 java nope 4250 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 1448",
            "1 node2 java 1 2 RECV 10.0.0.1:33000-10.0.0.2:8009 1448",
            "1 node2 java 1 2 RECEIVE 10.0.0.1:33000+10.0.0.2:8009 1448",
            "1 node2 java 1 2 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 nan",
            "1 node2 java 1 2 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 1448 extra",
        ] {
            assert!(RawRecord::parse_line(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_retrans_marker_roundtrips() {
        let line = format!("{LINE} retrans");
        let r = RawRecord::parse_line(&line).unwrap();
        assert!(r.retrans);
        assert_eq!(r.to_string(), line);
        let plain = RawRecord::parse_line(LINE).unwrap();
        assert!(!plain.retrans);
        // Anything else trailing is still rejected.
        assert!(RawRecord::parse_line(&format!("{LINE} retransX")).is_err());
        assert!(RawRecord::parse_line(&format!("{LINE} retrans retrans")).is_err());
    }

    #[test]
    fn dedup_retransmissions_strips_marked_records() {
        let raw = format!("{LINE}\n{LINE} retrans\n{LINE}\n");
        let recs = parse_log(&raw).unwrap();
        assert_eq!(recs.len(), 3);
        let deduped = dedup_retransmissions(recs);
        assert_eq!(deduped.len(), 2);
        assert!(deduped.iter().all(|r| !r.retrans));
    }

    #[test]
    fn parse_log_skips_comments_and_blank_lines() {
        let text = format!("# header\n\n{LINE}\n  \n{LINE}\n");
        let recs = parse_log(&text).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn context_and_channel_accessors() {
        let r = RawRecord::parse_line(LINE).unwrap();
        let ctx = r.context();
        assert_eq!(&*ctx.hostname, "node2");
        assert_eq!(ctx.tid, 4250);
        assert_eq!(r.channel().dst.port, 8009);
    }

    #[test]
    fn from_str_trait_works() {
        let r: RawRecord = LINE.parse().unwrap();
        assert_eq!(r.size, 1448);
    }

    #[test]
    fn ref_parse_matches_owned_parse() {
        let r = RawRecordRef::parse_line(LINE).unwrap();
        assert_eq!(r.hostname, "node2");
        assert_eq!(r.program, "java");
        assert!(!r.is_send());
        assert_eq!(r.channel().dst.port, 8009);
        let mut interner = Interner::new();
        assert_eq!(
            r.to_owned_interned(&mut interner),
            RawRecord::parse_line(LINE).unwrap()
        );
    }

    #[test]
    fn ref_parse_rejects_what_owned_rejects() {
        for bad in ["", "1 n p 1 2 RECV a-b 3", "1 n p 1 2 RECEIVE x 3"] {
            assert_eq!(
                RawRecordRef::parse_line(bad).is_err(),
                RawRecord::parse_line(bad).is_err(),
            );
        }
    }

    #[test]
    fn parse_log_interns_repeated_names() {
        let text = format!("{LINE}\n{LINE}\n");
        let recs = parse_log(&text).unwrap();
        assert!(Arc::ptr_eq(&recs[0].hostname, &recs[1].hostname));
        assert!(Arc::ptr_eq(&recs[0].program, &recs[1].program));
    }

    #[test]
    fn parse_log_iter_skips_comments_and_borrows() {
        let text = format!("# header\n\n{LINE}\n  \n{LINE}\n");
        let refs: Vec<RawRecordRef<'_>> = parse_log_iter(&text).collect::<Result<_, _>>().unwrap();
        assert_eq!(refs.len(), 2);
        // Borrowed fields point into the original text buffer.
        let start = text.as_ptr() as usize;
        let end = start + text.len();
        let p = refs[0].hostname.as_ptr() as usize;
        assert!(p >= start && p < end);
    }
}
