//! The raw `TCP_TRACE` record format (§3.1).
//!
//! The paper's SystemTap module logs one line per kernel `tcp_sendmsg` /
//! `tcp_recvmsg` call:
//!
//! ```text
//! timestamp hostname program_name ProcessID ThreadID SEND/RECEIVE sender_ip:port-receiver_ip:port message_size
//! ```
//!
//! [`RawRecord`] parses and formats exactly this shape (timestamps in
//! integer nanoseconds). PreciseTracer then transforms raw records into
//! typed [`Activity`](crate::activity::Activity) tuples via
//! [`access::Classifier`](crate::access::Classifier).

use std::fmt;
use std::sync::Arc;

use crate::activity::{Channel, ContextId, EndpointV4, LocalTime};
use crate::error::TraceError;

/// Direction of a raw kernel TCP activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RawOp {
    /// `tcp_sendmsg` — the logging node is the sender.
    Send,
    /// `tcp_recvmsg` — the logging node is the receiver.
    Receive,
}

impl fmt::Display for RawOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RawOp::Send => "SEND",
            RawOp::Receive => "RECEIVE",
        })
    }
}

impl std::str::FromStr for RawOp {
    type Err = TraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "SEND" => Ok(RawOp::Send),
            "RECEIVE" => Ok(RawOp::Receive),
            other => Err(TraceError::parse(other, "expected SEND or RECEIVE")),
        }
    }
}

/// One raw probe record in the original `TCP_TRACE` format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecord {
    /// Local timestamp (nanoseconds on the logging node's clock).
    pub ts: LocalTime,
    /// Hostname of the logging node.
    pub hostname: Arc<str>,
    /// Program (executable) name.
    pub program: Arc<str>,
    /// Process ID.
    pub pid: u32,
    /// Thread ID.
    pub tid: u32,
    /// SEND or RECEIVE.
    pub op: RawOp,
    /// Sender endpoint of the TCP channel.
    pub src: EndpointV4,
    /// Receiver endpoint of the TCP channel.
    pub dst: EndpointV4,
    /// Bytes transferred by this kernel call.
    pub size: u64,
    /// Opaque ground-truth tag (0 = untagged); not part of the text
    /// format, used only by evaluation harnesses.
    pub tag: u64,
}

impl RawRecord {
    /// The directed channel (sender → receiver).
    #[inline]
    pub fn channel(&self) -> Channel {
        Channel::new(self.src, self.dst)
    }

    /// The execution-entity context of the record.
    #[inline]
    pub fn context(&self) -> ContextId {
        ContextId {
            hostname: Arc::clone(&self.hostname),
            program: Arc::clone(&self.program),
            pid: self.pid,
            tid: self.tid,
        }
    }

    /// Parses one `TCP_TRACE` log line.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] when the line does not have exactly
    /// the eight whitespace-separated fields of the TCP_TRACE format or a
    /// field is malformed.
    pub fn parse_line(line: &str) -> Result<Self, TraceError> {
        let mut it = line.split_ascii_whitespace();
        let mut next = |what: &str| {
            it.next()
                .ok_or_else(|| TraceError::parse(line, format!("missing field: {what}")))
        };
        let ts: u64 = next("timestamp")?
            .parse()
            .map_err(|_| TraceError::parse(line, "bad timestamp"))?;
        let hostname = next("hostname")?.to_owned();
        let program = next("program")?.to_owned();
        let pid: u32 = next("pid")?
            .parse()
            .map_err(|_| TraceError::parse(line, "bad pid"))?;
        let tid: u32 = next("tid")?
            .parse()
            .map_err(|_| TraceError::parse(line, "bad tid"))?;
        let op: RawOp = next("op")?.parse()?;
        let chan = next("channel")?;
        let (src, dst) = chan
            .split_once('-')
            .ok_or_else(|| TraceError::parse(line, "channel missing '-'"))?;
        let src: EndpointV4 = src.parse()?;
        let dst: EndpointV4 = dst.parse()?;
        let size: u64 = next("size")?
            .parse()
            .map_err(|_| TraceError::parse(line, "bad size"))?;
        if it.next().is_some() {
            return Err(TraceError::parse(line, "trailing fields"));
        }
        Ok(RawRecord {
            ts: LocalTime::from_nanos(ts),
            hostname: hostname.into(),
            program: program.into(),
            pid,
            tid,
            op,
            src,
            dst,
            size,
            tag: 0,
        })
    }
}

impl fmt::Display for RawRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {} {} {}-{} {}",
            self.ts,
            self.hostname,
            self.program,
            self.pid,
            self.tid,
            self.op,
            self.src,
            self.dst,
            self.size
        )
    }
}

impl std::str::FromStr for RawRecord {
    type Err = TraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        RawRecord::parse_line(s)
    }
}

/// Parses a whole TCP_TRACE log: one record per non-empty line; lines
/// starting with `#` are comments.
///
/// # Errors
///
/// Returns the first parse error encountered.
///
/// # Examples
///
/// ```
/// use tracer_core::raw::parse_log;
/// let recs = parse_log("# comment\n100 web httpd 1 1 SEND 10.0.0.1:80-10.0.0.9:5000 42\n")?;
/// assert_eq!(recs.len(), 1);
/// assert_eq!(recs[0].size, 42);
/// # Ok::<(), tracer_core::TraceError>(())
/// ```
pub fn parse_log(text: &str) -> Result<Vec<RawRecord>, TraceError> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(RawRecord::parse_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "123456789 node2 java 4242 4250 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 1448";

    #[test]
    fn parse_roundtrip() {
        let r = RawRecord::parse_line(LINE).unwrap();
        assert_eq!(r.ts, LocalTime::from_nanos(123_456_789));
        assert_eq!(&*r.hostname, "node2");
        assert_eq!(&*r.program, "java");
        assert_eq!(r.pid, 4242);
        assert_eq!(r.tid, 4250);
        assert_eq!(r.op, RawOp::Receive);
        assert_eq!(r.src.port, 33000);
        assert_eq!(r.dst.port, 8009);
        assert_eq!(r.size, 1448);
        assert_eq!(r.to_string(), LINE);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "only three fields here",
            "x node2 java 4242 4250 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 1448",
            "1 node2 java nope 4250 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 1448",
            "1 node2 java 1 2 RECV 10.0.0.1:33000-10.0.0.2:8009 1448",
            "1 node2 java 1 2 RECEIVE 10.0.0.1:33000+10.0.0.2:8009 1448",
            "1 node2 java 1 2 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 nan",
            "1 node2 java 1 2 RECEIVE 10.0.0.1:33000-10.0.0.2:8009 1448 extra",
        ] {
            assert!(RawRecord::parse_line(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_log_skips_comments_and_blank_lines() {
        let text = format!("# header\n\n{LINE}\n  \n{LINE}\n");
        let recs = parse_log(&text).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn context_and_channel_accessors() {
        let r = RawRecord::parse_line(LINE).unwrap();
        let ctx = r.context();
        assert_eq!(&*ctx.hostname, "node2");
        assert_eq!(ctx.tid, 4250);
        assert_eq!(r.channel().dst.port, 8009);
    }

    #[test]
    fn from_str_trait_works() {
        let r: RawRecord = LINE.parse().unwrap();
        assert_eq!(r.size, 1448);
    }
}
