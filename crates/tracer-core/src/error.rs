//! Error types for the tracer.

use std::fmt;

/// Errors produced by parsing, configuration and correlation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A TCP_TRACE log line could not be parsed.
    Parse {
        /// The offending input fragment (truncated).
        input: String,
        /// What went wrong.
        reason: String,
    },
    /// The correlator configuration is invalid.
    Config(String),
    /// Streaming correlation was used after `finish()`.
    Finished,
    /// A distributed router peer failed: the process exited, the
    /// connection broke, or it sent a malformed or out-of-protocol
    /// frame. Carries everything the coordinator learned (exit status,
    /// stderr tail, wire diagnosis) as one message, so a cluster
    /// failure surfaces as a single clear error instead of a hang.
    Router {
        /// Zero-based index of the failed router peer.
        router: usize,
        /// What the coordinator observed.
        reason: String,
    },
}

impl TraceError {
    /// Constructs a parse error, truncating long inputs.
    pub fn parse(input: &str, reason: impl Into<String>) -> Self {
        let mut input = input.to_owned();
        if input.len() > 120 {
            input.truncate(120);
            input.push_str("...");
        }
        TraceError::Parse {
            input,
            reason: reason.into(),
        }
    }

    /// Constructs a configuration error.
    pub fn config(reason: impl Into<String>) -> Self {
        TraceError::Config(reason.into())
    }

    /// Constructs a router-peer failure error.
    pub fn router(router: usize, reason: impl Into<String>) -> Self {
        TraceError::Router {
            router,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { input, reason } => {
                write!(f, "cannot parse trace record {input:?}: {reason}")
            }
            TraceError::Config(reason) => write!(f, "invalid configuration: {reason}"),
            TraceError::Finished => write!(f, "streaming correlator already finished"),
            TraceError::Router { router, reason } => {
                write!(f, "router {router} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = TraceError::parse("xyz", "missing field");
        let s = e.to_string();
        assert!(s.contains("xyz"));
        assert!(s.contains("missing field"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn parse_error_truncates_long_input() {
        let long = "a".repeat(500);
        if let TraceError::Parse { input, .. } = TraceError::parse(&long, "r") {
            assert!(input.len() <= 123);
            assert!(input.ends_with("..."));
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
