//! The correlation engine (§4.2, Fig. 3).
//!
//! The engine consumes *candidate* activities chosen by the
//! [`Ranker`](crate::ranker::Ranker) and assembles them into CAGs using
//! two index maps:
//!
//! * **mmap** — message identifier (directed channel) → unmatched SEND
//!   vertices with their remaining unreceived byte counts. TCP delivers
//!   bytes FIFO per direction, so a per-channel FIFO of pending sends is
//!   the faithful generalization of the paper's single-entry description.
//! * **cmap** — context identifier → the latest activity observed in that
//!   execution entity.
//!
//! SEND/RECEIVE matching is n-to-n (Fig. 4): consecutive same-channel
//! SEND segments merge into one vertex accumulating bytes, and RECEIVE
//! segments decrement the pending byte count, materializing the RECEIVE
//! vertex when it reaches zero.
//!
//! The thread-reuse hazard (§4.2 lines 29-32) is handled by adding the
//! context edge into a RECEIVE only when message parent and context
//! parent belong to the same CAG; [`EngineOptions::thread_reuse_check`]
//! can disable the check to reproduce the failure mode as an ablation.

use std::collections::{BTreeMap, VecDeque};
use std::mem::size_of;
use std::sync::Arc;

use crate::activity::{Activity, ActivityType, Channel, ContextId};
use crate::cag::{Cag, Vertex};
use crate::fasthash::FxHashMap;
use crate::ranker::MatchOracle;
use crate::spill::{self, codec, PageExtent, SpillFile};

/// Tunables and ablation switches for the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineOptions {
    /// Merge consecutive same-channel SEND (and BEGIN/END) segments into
    /// one vertex by message size (§4.2, Fig. 4). Disabling this is the
    /// EXT-2 "no segment merging" ablation.
    pub merge_segments: bool,
    /// Add the context edge into a RECEIVE only when both parents are in
    /// the same CAG (§4.2 lines 29-32). Disabling reproduces the
    /// thread-pool mis-correlation the paper warns about.
    pub thread_reuse_check: bool,
    /// Merge trailing END segments into the already-output CAG.
    pub amend_finished: bool,
    /// Maximum unmatched pending sends retained in `mmap` before the
    /// oldest are evicted (bounds memory under send-side noise).
    pub pending_cap: usize,
    /// Maximum orphan (non-CAG) vertices retained for context chains.
    pub orphan_cap: usize,
    /// Maximum unfinished CAGs retained before the oldest are abandoned.
    pub unfinished_cap: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            merge_segments: true,
            thread_reuse_check: true,
            amend_finished: true,
            pending_cap: 1 << 20,
            orphan_cap: 1 << 20,
            unfinished_cap: 1 << 20,
        }
    }
}

/// Counters describing everything the engine did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Candidate activities delivered to the engine.
    pub delivered: u64,
    /// CAGs opened by BEGIN activities.
    pub cags_opened: u64,
    /// CAGs closed by END activities.
    pub cags_finished: u64,
    /// SEND segments merged into an existing vertex.
    pub send_merges: u64,
    /// BEGIN segments merged into an existing root.
    pub begin_merges: u64,
    /// END segments merged into an already-finished CAG.
    pub end_amends: u64,
    /// RECEIVE segments that only decremented a pending send.
    pub partial_receives: u64,
    /// RECEIVE activities that found no pending send (should be zero
    /// when the ranker's noise handling is on).
    pub unmatched_receives: u64,
    /// RECEIVEs that consumed bytes across two pending messages
    /// (receiver coalesced across message boundaries — an assumption
    /// violation that deforms the CAG).
    pub cross_message_receives: u64,
    /// END activities with no usable context parent.
    pub unmatched_ends: u64,
    /// Context edges suppressed by the thread-reuse same-CAG check.
    pub reuse_suppressed_edges: u64,
    /// Vertices that landed in the orphan pool (noise chains).
    pub orphan_vertices: u64,
    /// Pending sends evicted by `pending_cap`.
    pub evicted_pendings: u64,
    /// Orphans evicted by `orphan_cap`.
    pub evicted_orphans: u64,
    /// Unfinished CAGs abandoned by `unfinished_cap`.
    pub abandoned_cags: u64,
    /// Stale unfinished CAGs evicted by the streaming correlator's
    /// explicit memory budget (`with_memory_budget`).
    pub budget_evicted_cags: u64,
    /// Vertices dropped with those budget-evicted CAGs.
    pub budget_evicted_vertices: u64,
    /// Dead `cmap` entries dropped by the context GC (budget pressure
    /// or the periodic no-budget sweep).
    pub pruned_contexts: u64,
    /// Finished CAGs force-sealed by the `max_seal_lag` bound before
    /// their context moved on (trailing END chunks can no longer amend
    /// them — the price of the sealing-latency SLO).
    pub forced_seals: u64,
    /// Pending sends retired by v2 stream-offset arithmetic: a later
    /// RECEIVE's `seq=` proved their own receive records were lost to
    /// partial capture (offsets on a channel are monotone), so they can
    /// never match — without this they would byte-shift the FIFO.
    pub gap_retired_pendings: u64,
    /// Unfinished CAGs paged out to the spill file under memory-budget
    /// pressure (the spill tier's replacement for `budget_evicted_cags`
    /// — residency changes, recall does not).
    pub spilled_cags: u64,
    /// Orphan vertices paged out to the spill file.
    pub spilled_orphans: u64,
    /// Spilled objects faulted back on touch (each fault is one CAG or
    /// one orphan chunk read back from the spill tier).
    pub spill_faults: u64,
    /// Serialized bytes written to the spill tier.
    pub spilled_bytes: u64,
}

impl EngineCounters {
    /// Folds another counter set into this one (all fields are sums).
    /// Used to aggregate per-shard engines into one report.
    pub fn absorb(&mut self, other: &EngineCounters) {
        let EngineCounters {
            delivered,
            cags_opened,
            cags_finished,
            send_merges,
            begin_merges,
            end_amends,
            partial_receives,
            unmatched_receives,
            cross_message_receives,
            unmatched_ends,
            reuse_suppressed_edges,
            orphan_vertices,
            evicted_pendings,
            evicted_orphans,
            abandoned_cags,
            budget_evicted_cags,
            budget_evicted_vertices,
            pruned_contexts,
            forced_seals,
            gap_retired_pendings,
            spilled_cags,
            spilled_orphans,
            spill_faults,
            spilled_bytes,
        } = other;
        self.delivered += delivered;
        self.cags_opened += cags_opened;
        self.cags_finished += cags_finished;
        self.send_merges += send_merges;
        self.begin_merges += begin_merges;
        self.end_amends += end_amends;
        self.partial_receives += partial_receives;
        self.unmatched_receives += unmatched_receives;
        self.cross_message_receives += cross_message_receives;
        self.unmatched_ends += unmatched_ends;
        self.reuse_suppressed_edges += reuse_suppressed_edges;
        self.orphan_vertices += orphan_vertices;
        self.evicted_pendings += evicted_pendings;
        self.evicted_orphans += evicted_orphans;
        self.abandoned_cags += abandoned_cags;
        self.budget_evicted_cags += budget_evicted_cags;
        self.budget_evicted_vertices += budget_evicted_vertices;
        self.pruned_contexts += pruned_contexts;
        self.forced_seals += forced_seals;
        self.gap_retired_pendings += gap_retired_pendings;
        self.spilled_cags += spilled_cags;
        self.spilled_orphans += spilled_orphans;
        self.spill_faults += spill_faults;
        self.spilled_bytes += spilled_bytes;
    }
}

/// Where the latest activity of a context lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VRef {
    /// Vertex `v` of CAG `cag` (which may since have finished).
    Cag { cag: u64, v: usize },
    /// Orphan vertex (not part of any CAG).
    Orphan { id: u64 },
}

/// An unmatched (or partially matched) SEND in the mmap.
#[derive(Debug, Clone)]
struct Pending {
    vref: VRef,
    remaining: u64,
    /// Ground-truth tags of receive segments consumed so far.
    recv_tags: Vec<u64>,
    /// Stream-offset range `[start, end)` of the yet-unreceived bytes
    /// when the send records carried `TCP_TRACE v2` `seq=` offsets
    /// (`None` on v1 records or mixed chains). Lets RECEIVE matching
    /// retire pendings whose receive records were lost to partial
    /// capture instead of byte-shifting the FIFO — the same arithmetic
    /// the sharded reader applies to its claim queues, so both modes
    /// deform identically around capture gaps.
    range: Option<(u64, u64)>,
}

/// Minimal vertex data kept for orphan chains (noise traffic from traced
/// contexts, e.g. a MySQL client session sharing the database).
#[derive(Debug, Clone)]
struct Orphan {
    ty: ActivityType,
    channel: Channel,
    size: u64,
}

/// A snapshot of parent-vertex facts needed for merge decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolved {
    /// In an unfinished CAG.
    Open {
        cag: u64,
        v: usize,
        ty: ActivityType,
        channel: Channel,
    },
    /// In a finished CAG still buffered for amendment.
    Closed {
        cag: u64,
        v: usize,
        ty: ActivityType,
        channel: Channel,
    },
    /// An orphan vertex.
    Orphan {
        id: u64,
        ty: ActivityType,
        channel: Channel,
    },
    /// The reference points at evicted/drained state.
    Stale,
}

/// Oldest orphans spilled per chunk: one spill object amortizes page
/// slack across many tiny orphan records.
const ORPHAN_CHUNK: usize = 128;

/// Spill-tier bookkeeping: which objects are on disk, and the LRU-K
/// access history driving victim selection.
#[derive(Debug)]
struct SpillState {
    file: Arc<SpillFile>,
    /// Spilled unfinished CAGs by id.
    cags: FxHashMap<u64, PageExtent>,
    /// Spilled orphan chunks; a slot is freed when its chunk faults back.
    orphan_chunks: Vec<Option<PageExtent>>,
    /// Orphan id → chunk slot.
    orphan_index: FxHashMap<u64, u32>,
    /// LRU-K (K = 2) history per *resident* unfinished CAG: the two most
    /// recent touch ticks `(previous, last)` on the logical clock
    /// (`counters.delivered`). Victim = smallest `(previous, last, id)`,
    /// i.e. the CAG with the largest backward-K distance; the id
    /// tie-break keeps selection deterministic.
    lru: FxHashMap<u64, (u64, u64)>,
    /// CAGs with `last ≥ pin_epoch` were touched since the correlator's
    /// last sampling boundary and are pinned (spilling the working set
    /// would thrash); advanced by [`Engine::spill_checkpoint`].
    pin_epoch: u64,
}

/// The CAG construction engine.
#[derive(Debug)]
pub struct Engine {
    opts: EngineOptions,
    unfinished: BTreeMap<u64, Cag>,
    finished: Vec<Cag>,
    /// `counters.delivered` at the moment each `finished` entry closed,
    /// index-aligned with `finished`; drives the `max_seal_lag` bound.
    finished_at: Vec<u64>,
    finished_index: FxHashMap<u64, usize>,
    mmap: FxHashMap<Channel, VecDeque<Pending>>,
    mmap_order: VecDeque<Channel>,
    pending_count: usize,
    cmap: FxHashMap<ContextId, VRef>,
    orphans: BTreeMap<u64, Orphan>,
    next_cag_id: u64,
    next_orphan_id: u64,
    counters: EngineCounters,
    /// Incremental byte accounting for Fig. 11.
    vertex_count: usize,
    tag_count: usize,
    /// Spill tier (enabled by the correlator when a memory budget is
    /// paired with a spill directory).
    spill: Option<Box<SpillState>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineOptions::default())
    }
}

impl Engine {
    /// Creates an engine with the given options.
    pub fn new(opts: EngineOptions) -> Self {
        Engine {
            opts,
            unfinished: BTreeMap::new(),
            finished: Vec::new(),
            finished_at: Vec::new(),
            finished_index: FxHashMap::default(),
            mmap: FxHashMap::default(),
            mmap_order: VecDeque::new(),
            pending_count: 0,
            cmap: FxHashMap::default(),
            orphans: BTreeMap::new(),
            next_cag_id: 0,
            next_orphan_id: 0,
            counters: EngineCounters::default(),
            vertex_count: 0,
            tag_count: 0,
            spill: None,
        }
    }

    /// The engine's activity counters.
    pub fn counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// Number of CAGs still under construction.
    pub fn unfinished_len(&self) -> usize {
        self.unfinished.len()
    }

    /// Number of finished CAGs awaiting [`Engine::take_finished`].
    pub fn finished_len(&self) -> usize {
        self.finished.len()
    }

    /// Removes and returns all finished CAGs, oldest first.
    pub fn take_finished(&mut self) -> Vec<Cag> {
        self.finished_index.clear();
        self.finished_at.clear();
        std::mem::take(&mut self.finished)
    }

    /// Removes and returns only the finished CAGs that can no longer be
    /// amended by trailing END segments: a CAG is *sealed* once its END
    /// vertex is no longer the latest activity of its context (the
    /// execution entity moved on to other work). Used by the streaming
    /// correlator so that incremental polling yields the same CAGs as an
    /// offline run.
    ///
    /// `max_lag` bounds the sealing latency: a finished CAG whose
    /// context has *not* moved on is force-sealed anyway once more than
    /// `max_lag` candidates were delivered since it finished (counted
    /// in [`EngineCounters::forced_seals`]); any trailing END chunk
    /// arriving later can no longer amend it. `None` waits indefinitely
    /// (the default, and the only mode whose output is independent of
    /// emission timing).
    pub fn take_sealed(&mut self, max_lag: Option<u64>) -> Vec<Cag> {
        let finished = std::mem::take(&mut self.finished);
        let finished_at = std::mem::take(&mut self.finished_at);
        self.finished_index.clear();
        let mut out = Vec::new();
        for (cag, at) in finished.into_iter().zip(finished_at) {
            let end_idx = cag.vertices.len() - 1;
            let end = &cag.vertices[end_idx];
            let still_latest = end.ty == ActivityType::End
                && self.cmap.get(&end.ctx)
                    == Some(&VRef::Cag {
                        cag: cag.id,
                        v: end_idx,
                    });
            if still_latest {
                if max_lag.is_some_and(|lag| self.counters.delivered.saturating_sub(at) > lag) {
                    self.counters.forced_seals += 1;
                    out.push(cag);
                } else {
                    self.finished_index.insert(cag.id, self.finished.len());
                    self.finished.push(cag);
                    self.finished_at.push(at);
                }
            } else {
                out.push(cag);
            }
        }
        out
    }

    /// Evicts the *stalest* unfinished CAG (the one opened longest ago)
    /// under memory-budget pressure. The eviction is deterministic
    /// (CAG ids are assigned in BEGIN delivery order) and counted in
    /// [`EngineCounters::budget_evicted_cags`]; the streaming
    /// correlator folds the count into `cags_unfinished`, but the path
    /// itself is dropped — retaining it would defeat the budget.
    /// Returns `None` when no CAG is under construction.
    pub fn evict_stalest_unfinished(&mut self) -> Option<Cag> {
        let (_, cag) = self.unfinished.pop_first()?;
        self.vertex_count -= cag.vertices.len();
        self.tag_count -= cag.vertices.iter().map(|v| v.tags.len()).sum::<usize>();
        self.counters.budget_evicted_cags += 1;
        self.counters.budget_evicted_vertices += cag.vertices.len() as u64;
        Some(cag)
    }

    /// Sheds one unit of evictable state under memory-budget pressure,
    /// in deterministic priority order: the stalest unfinished CAG,
    /// then the oldest orphan chain, then the oldest pending send.
    /// Returns `false` when nothing evictable remains (the floor —
    /// `cmap` and the window buffers — is not sheddable).
    ///
    /// Order rationale: unfinished CAGs go first because the budget
    /// contract targets *stale* half-built paths (lost-activity
    /// leftovers grow without bound under endless input); orphans and
    /// pendings follow so a starved budget still converges instead of
    /// the orphan pool absorbing the freed space. A `mmap_order` entry
    /// whose pending was already consumed sheds nothing but still
    /// returns `true`; the caller's loop terminates because the order
    /// queue itself shrinks.
    pub fn shed_one(&mut self) -> bool {
        if self.evict_stalest_unfinished().is_some() {
            return true;
        }
        if let Some((_, _)) = self.orphans.pop_first() {
            self.counters.evicted_orphans += 1;
            return true;
        }
        if let Some(ch) = self.mmap_order.pop_front() {
            if let Some(q) = self.mmap.get_mut(&ch) {
                if q.pop_front().is_some() {
                    self.pending_count -= 1;
                    self.counters.evicted_pendings += 1;
                }
                if q.is_empty() {
                    self.mmap.remove(&ch);
                }
            }
            return true;
        }
        false
    }

    /// Enables the spill tier backed by `file`. Subsequent
    /// [`Engine::spill_one`] calls page cold state out instead of the
    /// caller shedding it; everything faults back on touch, so output
    /// stays byte-identical to an unbounded run.
    pub fn enable_spill(&mut self, file: Arc<SpillFile>) {
        self.spill = Some(Box::new(SpillState {
            file,
            cags: FxHashMap::default(),
            orphan_chunks: Vec::new(),
            orphan_index: FxHashMap::default(),
            lru: FxHashMap::default(),
            pin_epoch: 0,
        }));
    }

    /// Whether the spill tier is enabled.
    pub fn spill_enabled(&self) -> bool {
        self.spill.is_some()
    }

    /// Number of unfinished CAGs currently paged out.
    pub fn spilled_len(&self) -> usize {
        self.spill.as_ref().map_or(0, |s| s.cags.len())
    }

    /// Marks a sampling boundary: CAGs touched at or after this point
    /// are pinned (never spill victims) until the next checkpoint. The
    /// streaming correlator calls this from its budget loop so the
    /// working set of the current batch stays resident.
    pub fn spill_checkpoint(&mut self) {
        if let Some(sp) = self.spill.as_deref_mut() {
            sp.pin_epoch = self.counters.delivered;
        }
    }

    /// Pages one unit of cold state out to the spill tier: the LRU-K
    /// victim among unpinned resident unfinished CAGs, else (working
    /// set fully pinned) the overall LRU-K victim, else a chunk of the
    /// oldest orphans. Returns `false` when nothing remains to spill —
    /// the resident floor (`mmap`/`cmap` and the window buffers) stays.
    pub fn spill_one(&mut self) -> bool {
        let Some(sp) = self.spill.as_deref_mut() else {
            return false;
        };
        let mut best: Option<(u64, u64, u64)> = None;
        let mut best_pinned: Option<(u64, u64, u64)> = None;
        for &id in self.unfinished.keys() {
            let (prev, last) = sp.lru.get(&id).copied().unwrap_or((0, 0));
            let key = (prev, last, id);
            if last < sp.pin_epoch {
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            } else if best_pinned.is_none_or(|b| key < b) {
                best_pinned = Some(key);
            }
        }
        if let Some((_, _, id)) = best.or(best_pinned) {
            let cag = self.unfinished.remove(&id).expect("victim is resident");
            self.vertex_count -= cag.vertices.len();
            self.tag_count -= cag.vertices.iter().map(|v| v.tags.len()).sum::<usize>();
            let mut buf = Vec::new();
            spill::encode_cag(&cag, &mut buf);
            self.counters.spilled_bytes += buf.len() as u64;
            let ext = sp.file.put(buf);
            sp.cags.insert(id, ext);
            sp.lru.remove(&id);
            self.counters.spilled_cags += 1;
            return true;
        }
        // No resident CAG left: page out the oldest orphans, a chunk at
        // a time (each orphan is tiny; one object per chunk amortizes
        // page slack).
        let mut buf = Vec::new();
        let mut ids = Vec::new();
        codec::put_u32(&mut buf, 0);
        while ids.len() < ORPHAN_CHUNK {
            let Some((id, o)) = self.orphans.pop_first() else {
                break;
            };
            codec::put_u64(&mut buf, id);
            codec::put_u8(&mut buf, spill::activity_type_code(o.ty));
            codec::put_channel(&mut buf, o.channel);
            codec::put_u64(&mut buf, o.size);
            ids.push(id);
        }
        if ids.is_empty() {
            return false;
        }
        buf[..4].copy_from_slice(&(ids.len() as u32).to_le_bytes());
        self.counters.spilled_orphans += ids.len() as u64;
        self.counters.spilled_bytes += buf.len() as u64;
        let ext = sp.file.put(buf);
        let slot = sp
            .orphan_chunks
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                sp.orphan_chunks.push(None);
                sp.orphan_chunks.len() - 1
            });
        sp.orphan_chunks[slot] = Some(ext);
        for id in ids {
            sp.orphan_index.insert(id, slot as u32);
        }
        true
    }

    /// Faults the object behind `vref` back in when it was spilled, and
    /// records the touch in the LRU-K history. Every resolve of a
    /// context/message parent goes through here, so spilling is purely a
    /// residency change — no decision ever sees a spilled object as
    /// absent.
    fn fault_vref(&mut self, vref: VRef) {
        if self.spill.is_none() {
            return;
        }
        match vref {
            VRef::Cag { cag, .. } => self.fault_cag(cag),
            VRef::Orphan { id } => self.fault_orphan_chunk(id),
        }
    }

    fn fault_cag(&mut self, id: u64) {
        let Some(sp) = self.spill.as_deref_mut() else {
            return;
        };
        if let Some(ext) = sp.cags.remove(&id) {
            let bytes = sp.file.get(ext);
            let cag = spill::decode_cag(&bytes);
            self.vertex_count += cag.vertices.len();
            self.tag_count += cag.vertices.iter().map(|v| v.tags.len()).sum::<usize>();
            self.unfinished.insert(id, cag);
            self.counters.spill_faults += 1;
        }
        self.touch_cag(id);
    }

    fn fault_orphan_chunk(&mut self, id: u64) {
        let Some(sp) = self.spill.as_deref_mut() else {
            return;
        };
        let Some(slot) = sp.orphan_index.get(&id).copied() else {
            return;
        };
        let ext = sp.orphan_chunks[slot as usize]
            .take()
            .expect("indexed chunk is live");
        let bytes = sp.file.get(ext);
        let mut d = codec::Dec::new(&bytes);
        let n = d.u32();
        for _ in 0..n {
            let oid = d.u64();
            let ty = spill::activity_type_from_code(d.u8());
            let channel = codec::get_channel(&mut d);
            let size = d.u64();
            sp.orphan_index.remove(&oid);
            self.orphans.insert(oid, Orphan { ty, channel, size });
        }
        self.counters.spill_faults += 1;
    }

    /// Faults every spilled CAG back (end of stream: unfinished CAGs
    /// are about to be surfaced as deformed paths).
    fn fault_all_spilled_cags(&mut self) {
        let Some(sp) = self.spill.as_deref_mut() else {
            return;
        };
        let spilled: Vec<(u64, PageExtent)> = sp.cags.drain().collect();
        for (id, ext) in spilled {
            let bytes = sp.file.get(ext);
            let cag = spill::decode_cag(&bytes);
            self.vertex_count += cag.vertices.len();
            self.tag_count += cag.vertices.iter().map(|v| v.tags.len()).sum::<usize>();
            self.unfinished.insert(id, cag);
            self.counters.spill_faults += 1;
        }
    }

    /// Records a touch of CAG `id` at the current logical time,
    /// shifting its LRU-K history.
    fn touch_cag(&mut self, id: u64) {
        if let Some(sp) = self.spill.as_deref_mut() {
            let now = self.counters.delivered;
            let e = sp.lru.entry(id).or_insert((0, 0));
            if e.1 != now {
                e.0 = e.1;
                e.1 = now;
            }
        }
    }

    /// Whether `vref` points at spilled (alive, just not resident)
    /// state; used by the context GC to avoid pruning live bindings.
    fn is_spilled(&self, vref: VRef) -> bool {
        let Some(sp) = self.spill.as_deref() else {
            return false;
        };
        match vref {
            VRef::Cag { cag, .. } => sp.cags.contains_key(&cag),
            VRef::Orphan { id } => sp.orphan_index.contains_key(&id),
        }
    }

    /// Number of context-map entries currently held.
    pub fn context_count(&self) -> usize {
        self.cmap.len()
    }

    /// Drops the context binding for one entity, as if the entity had
    /// moved on to work this engine never sees. The sharded reader
    /// calls this when an entity's next record routes to a *different*
    /// shard (or into a reader-side-dropped orphan chain): the binding
    /// held here no longer reflects the entity's latest activity, and
    /// resolving it would merge later records into a chain the batch
    /// engine already left. Also what seals a finished CAG held only
    /// by its END still being the context's latest vertex.
    pub fn forget_ctx(&mut self, ctx: &ContextId) {
        self.cmap.remove(ctx);
    }

    /// Drops `cmap` entries that no longer resolve to live state
    /// (their CAG/orphan was drained or evicted). Behavior-neutral:
    /// every consumer treats a [`Resolved::Stale`] entry exactly like
    /// an absent one — this only reclaims the memory. Returns the
    /// number pruned; counted in [`EngineCounters::pruned_contexts`].
    pub fn prune_stale_contexts(&mut self) -> usize {
        let dead: Vec<ContextId> = self
            .cmap
            .iter()
            .filter(|&(_, &vref)| {
                // A spilled object resolves Stale only because it is not
                // resident; it is live state and its binding must stay.
                matches!(self.resolve(vref), Resolved::Stale) && !self.is_spilled(vref)
            })
            .map(|(ctx, _)| ctx.clone())
            .collect();
        for ctx in &dead {
            self.cmap.remove(ctx);
        }
        self.counters.pruned_contexts += dead.len() as u64;
        dead.len()
    }

    /// Abandons and returns all unfinished CAGs (used at end of stream to
    /// surface deformed paths caused by lost activities). Spilled CAGs
    /// fault back in first — the spill tier never costs recall.
    pub fn take_unfinished(&mut self) -> Vec<Cag> {
        self.fault_all_spilled_cags();
        let cags: Vec<Cag> = std::mem::take(&mut self.unfinished).into_values().collect();
        self.vertex_count -= cags.iter().map(|c| c.vertices.len()).sum::<usize>();
        self.tag_count -= cags
            .iter()
            .flat_map(|c| c.vertices.iter())
            .map(|v| v.tags.len())
            .sum::<usize>();
        cags
    }

    /// Approximate resident bytes of all engine state (index maps,
    /// unfinished CAGs, buffered finished CAGs, orphans). Used for the
    /// Fig. 11 memory experiment.
    pub fn approx_bytes(&self) -> usize {
        self.approx_breakdown().iter().sum()
    }

    /// Approximate resident bytes split by component, in the order
    /// `(unfinished vertices+tags, pendings, cmap, orphans, finished
    /// buffer)` — diagnostics for memory-budget tuning. The pending
    /// figure includes the eviction-order queue (kept within 2× the
    /// live pending count by lazy compaction).
    pub fn approx_breakdown(&self) -> [usize; 5] {
        let vert = self.vertex_count * size_of::<Vertex>() + self.tag_count * 8;
        let pend = self.pending_count * (size_of::<Pending>() + size_of::<Channel>())
            + self.mmap_order.len() * size_of::<Channel>();
        let cmap = self.cmap.len() * (size_of::<ContextId>() + size_of::<VRef>() + 32);
        let orph = self.orphans.len() * (size_of::<Orphan>() + 16);
        let fin: usize = self
            .finished
            .iter()
            .map(|c| c.vertices.len() * size_of::<Vertex>())
            .sum();
        [vert, pend, cmap, orph, fin]
    }

    fn resolve(&self, vref: VRef) -> Resolved {
        match vref {
            VRef::Cag { cag, v } => {
                if let Some(c) = self.unfinished.get(&cag) {
                    let vx = &c.vertices[v];
                    Resolved::Open {
                        cag,
                        v,
                        ty: vx.ty,
                        channel: vx.channel,
                    }
                } else if let Some(&idx) = self.finished_index.get(&cag) {
                    let vx = &self.finished[idx].vertices[v];
                    Resolved::Closed {
                        cag,
                        v,
                        ty: vx.ty,
                        channel: vx.channel,
                    }
                } else {
                    Resolved::Stale
                }
            }
            VRef::Orphan { id } => match self.orphans.get(&id) {
                Some(o) => Resolved::Orphan {
                    id,
                    ty: o.ty,
                    channel: o.channel,
                },
                None => Resolved::Stale,
            },
        }
    }

    /// Resolves a context's latest activity, faulting it back from the
    /// spill tier when needed (and recording the LRU touch).
    fn resolve_ctx(&mut self, ctx: &ContextId) -> Option<Resolved> {
        let vref = *self.cmap.get(ctx)?;
        self.fault_vref(vref);
        Some(self.resolve(vref))
    }

    fn vertex_from(a: &Activity, ctx_parent: Option<usize>, msg_parent: Option<usize>) -> Vertex {
        Vertex {
            ty: a.ty,
            ts: a.ts,
            ts_last: a.ts,
            ctx: a.ctx.clone(),
            channel: a.channel,
            size: a.size,
            tags: if a.tag != 0 { vec![a.tag] } else { Vec::new() },
            ctx_parent,
            msg_parent,
        }
    }

    fn push_vertex(&mut self, cag: u64, vertex: Vertex) -> usize {
        self.vertex_count += 1;
        self.tag_count += vertex.tags.len();
        self.touch_cag(cag);
        let c = self.unfinished.get_mut(&cag).expect("push into open CAG");
        c.vertices.push(vertex);
        c.vertices.len() - 1
    }

    fn new_orphan(&mut self, a: &Activity) -> u64 {
        let id = self.next_orphan_id;
        self.next_orphan_id += 1;
        self.orphans.insert(
            id,
            Orphan {
                ty: a.ty,
                channel: a.channel,
                size: a.size,
            },
        );
        self.counters.orphan_vertices += 1;
        while self.orphans.len() > self.opts.orphan_cap {
            self.orphans.pop_first();
            self.counters.evicted_orphans += 1;
        }
        id
    }

    /// Rebuilds `mmap_order` to hold exactly one entry per live pending.
    ///
    /// Entries are appended per SEND but the normal RECEIVE consume
    /// path drains only `mmap`, so on long streams the order queue
    /// accumulates stale entries without bound. The live pendings of a
    /// channel are its *newest* occurrences (pops consume oldest
    /// first), so a back-to-front sweep keeping the last `q.len()`
    /// occurrences per channel — order otherwise preserved — restores
    /// the oldest-first eviction order exactly. Amortized O(1): runs
    /// only when stale entries outnumber live ones.
    fn compact_mmap_order(&mut self) {
        let mut keep_left: FxHashMap<Channel, usize> = FxHashMap::default();
        for (ch, q) in &self.mmap {
            keep_left.insert(*ch, q.len());
        }
        let mut kept: VecDeque<Channel> = VecDeque::with_capacity(self.pending_count);
        while let Some(ch) = self.mmap_order.pop_back() {
            if let Some(n) = keep_left.get_mut(&ch) {
                if *n > 0 {
                    *n -= 1;
                    kept.push_front(ch);
                }
            }
        }
        self.mmap_order = kept;
    }

    fn push_pending(&mut self, channel: Channel, pending: Pending) {
        self.mmap.entry(channel).or_default().push_back(pending);
        self.mmap_order.push_back(channel);
        self.pending_count += 1;
        if self.mmap_order.len() > 2 * self.pending_count + 1_024 {
            self.compact_mmap_order();
        }
        while self.pending_count > self.opts.pending_cap {
            // Evict the globally oldest pending send.
            if let Some(ch) = self.mmap_order.pop_front() {
                if let Some(q) = self.mmap.get_mut(&ch) {
                    if q.pop_front().is_some() {
                        self.pending_count -= 1;
                        self.counters.evicted_pendings += 1;
                    }
                    if q.is_empty() {
                        self.mmap.remove(&ch);
                    }
                }
            } else {
                break;
            }
        }
    }

    /// Processes one candidate activity — the body of the `correlate`
    /// procedure in Fig. 3.
    pub fn deliver(&mut self, a: Activity) {
        self.counters.delivered += 1;
        match a.ty {
            ActivityType::Begin => self.on_begin(a),
            ActivityType::End => self.on_end(a),
            ActivityType::Send => self.on_send(a),
            ActivityType::Receive => self.on_receive(a),
        }
    }

    fn on_begin(&mut self, a: Activity) {
        // Chunked client request: merge into the open root (line 15-16
        // applied to BEGIN, see access module docs).
        if self.opts.merge_segments {
            if let Some(Resolved::Open {
                cag,
                v,
                ty,
                channel,
            }) = self.resolve_ctx(&a.ctx)
            {
                if ty == ActivityType::Begin && channel == a.channel {
                    let vx = &mut self.unfinished.get_mut(&cag).expect("open").vertices[v];
                    vx.size += a.size;
                    vx.ts_last = a.ts;
                    if a.tag != 0 {
                        vx.tags.push(a.tag);
                        self.tag_count += 1;
                    }
                    self.counters.begin_merges += 1;
                    return;
                }
            }
        }
        let id = self.next_cag_id;
        self.next_cag_id += 1;
        let root = Self::vertex_from(&a, None, None);
        self.vertex_count += 1;
        self.tag_count += root.tags.len();
        self.unfinished.insert(
            id,
            Cag {
                id,
                vertices: vec![root],
                finished: false,
            },
        );
        self.counters.cags_opened += 1;
        self.touch_cag(id);
        self.cmap.insert(a.ctx, VRef::Cag { cag: id, v: 0 });
        // The cap counts spilled CAGs too — the spill tier bounds
        // memory, not the total amount of live state.
        while self.unfinished.len() + self.spilled_len() > self.opts.unfinished_cap {
            if let Some(&stalest_spilled) = self.spill.as_deref().and_then(|s| s.cags.keys().min())
            {
                // CAG ids are assigned in BEGIN order, so the globally
                // stalest CAG may be on disk; fault it back so the
                // abandonment below picks it, keeping the policy
                // identical to the spill-free engine.
                if self
                    .unfinished
                    .first_key_value()
                    .is_none_or(|(&r, _)| stalest_spilled < r)
                {
                    self.fault_cag(stalest_spilled);
                }
            }
            if let Some((id, c)) = self.unfinished.pop_first() {
                self.vertex_count -= c.vertices.len();
                self.tag_count -= c.vertices.iter().map(|v| v.tags.len()).sum::<usize>();
                self.counters.abandoned_cags += 1;
                if let Some(sp) = self.spill.as_deref_mut() {
                    sp.lru.remove(&id);
                }
            } else {
                break;
            }
        }
    }

    fn on_end(&mut self, a: Activity) {
        match self.resolve_ctx(&a.ctx) {
            Some(Resolved::Open { cag, v, .. }) => {
                let vertex = Self::vertex_from(&a, Some(v), None);
                let idx = self.push_vertex(cag, vertex);
                self.cmap.insert(a.ctx, VRef::Cag { cag, v: idx });
                // Output the CAG (line 10).
                let mut done = self.unfinished.remove(&cag).expect("open");
                if let Some(sp) = self.spill.as_deref_mut() {
                    sp.lru.remove(&cag);
                }
                done.finished = true;
                self.finished_index.insert(cag, self.finished.len());
                // The vertices move from "unfinished" accounting into the
                // finished buffer, which approx_bytes counts separately.
                self.vertex_count -= done.vertices.len();
                self.tag_count -= done.vertices.iter().map(|v| v.tags.len()).sum::<usize>();
                self.finished.push(done);
                self.finished_at.push(self.counters.delivered);
                self.counters.cags_finished += 1;
            }
            Some(Resolved::Closed {
                cag,
                v,
                ty,
                channel,
            }) if self.opts.amend_finished
                && self.opts.merge_segments
                && ty == ActivityType::End
                && channel == a.channel =>
            {
                // Trailing chunk of a chunked response.
                let idx = self.finished_index[&cag];
                let vx = &mut self.finished[idx].vertices[v];
                vx.size += a.size;
                vx.ts_last = a.ts;
                if a.tag != 0 {
                    vx.tags.push(a.tag);
                }
                self.counters.end_amends += 1;
            }
            _ => {
                // END with no BEGIN in its context (lost BEGIN or noise
                // send to a frontend port): keep the chain as an orphan.
                self.counters.unmatched_ends += 1;
                let id = self.new_orphan(&a);
                self.cmap.insert(a.ctx, VRef::Orphan { id });
            }
        }
    }

    fn on_send(&mut self, a: Activity) {
        let parent = self.resolve_ctx(&a.ctx);
        // Lines 15-16: consecutive same-channel sends merge by size.
        if self.opts.merge_segments {
            match parent {
                Some(Resolved::Open {
                    cag,
                    v,
                    ty,
                    channel,
                }) if ty.is_send_like() && channel == a.channel => {
                    let vx = &mut self.unfinished.get_mut(&cag).expect("open").vertices[v];
                    vx.size += a.size;
                    vx.ts_last = a.ts;
                    if a.tag != 0 {
                        vx.tags.push(a.tag);
                        self.tag_count += 1;
                    }
                    self.extend_pending(
                        a.channel,
                        VRef::Cag { cag, v },
                        a.size,
                        Self::seq_range(&a),
                    );
                    self.counters.send_merges += 1;
                    return;
                }
                Some(Resolved::Orphan { id, ty, channel })
                    if ty.is_send_like() && channel == a.channel =>
                {
                    if let Some(o) = self.orphans.get_mut(&id) {
                        o.size += a.size;
                    }
                    self.extend_pending(
                        a.channel,
                        VRef::Orphan { id },
                        a.size,
                        Self::seq_range(&a),
                    );
                    self.counters.send_merges += 1;
                    return;
                }
                _ => {}
            }
        }
        // Lines 17-20: new SEND vertex with a context edge when the
        // context parent is in an open CAG; otherwise an orphan chain.
        let vref = match parent {
            Some(Resolved::Open { cag, v, .. }) => {
                let vertex = Self::vertex_from(&a, Some(v), None);
                let idx = self.push_vertex(cag, vertex);
                VRef::Cag { cag, v: idx }
            }
            _ => VRef::Orphan {
                id: self.new_orphan(&a),
            },
        };
        self.push_pending(
            a.channel,
            Pending {
                vref,
                remaining: a.size,
                recv_tags: Vec::new(),
                range: Self::seq_range(&a),
            },
        );
        self.cmap.insert(a.ctx, vref);
    }

    /// Stream-offset range claimed by one send record (v2 only).
    fn seq_range(a: &Activity) -> Option<(u64, u64)> {
        a.seq.map(|s| (s, s + a.size.max(1)))
    }

    /// Adds `size` bytes to the pending entry of a merged send vertex, or
    /// opens a new pending when the previous bytes were fully received
    /// already (send/receive pipelining).
    fn extend_pending(&mut self, channel: Channel, vref: VRef, size: u64, rng: Option<(u64, u64)>) {
        if let Some(q) = self.mmap.get_mut(&channel) {
            if let Some(back) = q.back_mut() {
                if back.vref == vref {
                    back.remaining += size;
                    // Extend the claimed offsets; a v1 segment in a v2
                    // chain poisons the range (offset-exact matching
                    // would misattribute the untracked bytes).
                    back.range = match (back.range, rng) {
                        (Some((s, _)), Some((_, e2))) => Some((s, e2)),
                        _ => None,
                    };
                    return;
                }
            }
        }
        self.push_pending(
            channel,
            Pending {
                vref,
                remaining: size,
                recv_tags: Vec::new(),
                range: rng,
            },
        );
    }

    fn on_receive(&mut self, a: Activity) {
        let Some(q) = self.mmap.get_mut(&a.channel) else {
            self.counters.unmatched_receives += 1;
            return;
        };
        // With `TCP_TRACE v2` offsets on both sides, match by stream
        // ranges instead of byte counting — the same arithmetic the
        // sharded reader applies to its claim queues, so capture gaps
        // deform both modes identically instead of byte-shifting the
        // FIFO: pendings entirely below this receive lost their own
        // receive records (offsets are monotone — they can never match),
        // and a receive entirely below the front pending lost its send
        // records (it can never match either).
        if let Some(r0) = a.seq {
            let r1 = r0 + a.size.max(1);
            while matches!(
                q.front(),
                Some(p) if p.range.is_some_and(|(_, en)| en <= r0)
            ) {
                q.pop_front();
                self.pending_count -= 1;
                self.counters.gap_retired_pendings += 1;
            }
            if q.is_empty() {
                self.mmap.remove(&a.channel);
                self.counters.unmatched_receives += 1;
                return;
            }
            let front = q.front_mut().expect("nonempty");
            if let Some((fs, fe)) = front.range {
                if fs >= r1 {
                    self.counters.unmatched_receives += 1;
                    return;
                }
                // Overlap. Uncovered head bytes of [r0, fs) have no
                // pending (their send records were lost) and never
                // will — forgiven, like the reader forgives them.
                if fe > r1 {
                    // Partial segment of a larger message: consume
                    // [max(r0, fs), r1) offset-exactly, no vertex yet.
                    front.remaining = front.remaining.saturating_sub(r1 - r0.max(fs));
                    front.range = Some((r1, fe));
                    if a.tag != 0 {
                        front.recv_tags.push(a.tag);
                    }
                    self.counters.partial_receives += 1;
                    return;
                }
                // The front message completes; consume further pendings
                // overlapping [r0, r1) (receiver coalesced across
                // message boundaries, counted like the byte path).
                let done = q.pop_front().expect("front exists");
                self.pending_count -= 1;
                while let Some(nxt) = q.front_mut() {
                    let Some((s, en)) = nxt.range else { break };
                    if s >= r1 {
                        break;
                    }
                    self.counters.cross_message_receives += 1;
                    if en <= r1 {
                        q.pop_front();
                        self.pending_count -= 1;
                    } else {
                        nxt.remaining = nxt.remaining.saturating_sub(r1 - s);
                        nxt.range = Some((r1, en));
                        break;
                    }
                }
                if q.is_empty() {
                    self.mmap.remove(&a.channel);
                }
                self.materialize_receive(a, done);
                return;
            }
            // No usable range on the front (v1 sender or poisoned
            // chain): fall through to byte counting.
        }
        let Some(front) = q.front_mut() else {
            self.counters.unmatched_receives += 1;
            return;
        };
        // Line 25: parent_msg.size -= current.size.
        if a.size < front.remaining {
            front.remaining -= a.size;
            if a.tag != 0 {
                front.recv_tags.push(a.tag);
            }
            self.counters.partial_receives += 1;
            return;
        }
        // The receive completes (and possibly overruns) the front message.
        let mut need = a.size - front.remaining;
        let done = q.pop_front().expect("front exists");
        self.pending_count -= 1;
        while need > 0 {
            // Receiver coalesced bytes across message boundaries; consume
            // further pendings (assumption violation, counted).
            self.counters.cross_message_receives += 1;
            match q.front_mut() {
                Some(nxt) if need < nxt.remaining => {
                    nxt.remaining -= need;
                    need = 0;
                }
                Some(_) => {
                    let p = q.pop_front().expect("front exists");
                    self.pending_count -= 1;
                    need -= p.remaining;
                }
                None => {
                    self.counters.unmatched_receives += 1;
                    break;
                }
            }
        }
        if q.is_empty() {
            self.mmap.remove(&a.channel);
        }
        self.materialize_receive(a, done);
    }

    /// Lines 26-33: materialize the RECEIVE vertex. The vertex's tags
    /// are the receive segments consumed along the way plus this one
    /// (added by `vertex_from`).
    fn materialize_receive(&mut self, a: Activity, mut done: Pending) {
        let tags = std::mem::take(&mut done.recv_tags);
        self.fault_vref(done.vref);
        match self.resolve(done.vref) {
            Resolved::Open {
                cag: msg_cag,
                v: msg_v,
                ..
            } => {
                let ctx_parent = self.receive_ctx_parent(&a, msg_cag);
                match ctx_parent {
                    CtxParent::SameCag(p) | CtxParent::None(p) => {
                        let mut vertex = Self::vertex_from(&a, p, Some(msg_v));
                        let own = std::mem::take(&mut vertex.tags);
                        vertex.tags = tags;
                        vertex.tags.extend(own);
                        let idx = self.push_vertex(msg_cag, vertex);
                        self.cmap.insert(
                            a.ctx,
                            VRef::Cag {
                                cag: msg_cag,
                                v: idx,
                            },
                        );
                    }
                    CtxParent::ForeignCag { cag, v } => {
                        // Ablation only (thread_reuse_check = false):
                        // reproduce the mis-correlation by following the
                        // stale context chain instead of the message.
                        let mut vertex = Self::vertex_from(&a, Some(v), None);
                        let own = std::mem::take(&mut vertex.tags);
                        vertex.tags = tags;
                        vertex.tags.extend(own);
                        let idx = self.push_vertex(cag, vertex);
                        self.cmap.insert(a.ctx, VRef::Cag { cag, v: idx });
                    }
                }
            }
            Resolved::Orphan { id, .. } => {
                // Noise chain: the receive continues the orphan chain.
                let _ = id;
                let oid = self.new_orphan(&a);
                self.cmap.insert(a.ctx, VRef::Orphan { id: oid });
            }
            Resolved::Closed { .. } | Resolved::Stale => {
                self.counters.unmatched_receives += 1;
            }
        }
    }

    fn receive_ctx_parent(&mut self, a: &Activity, msg_cag: u64) -> CtxParent {
        match self.resolve_ctx(&a.ctx) {
            Some(Resolved::Open { cag, v, .. }) => {
                if cag == msg_cag {
                    CtxParent::SameCag(Some(v))
                } else if self.opts.thread_reuse_check {
                    // Lines 29-32: parents in different CAGs → no context
                    // edge (thread reuse in a pool).
                    self.counters.reuse_suppressed_edges += 1;
                    CtxParent::None(None)
                } else {
                    CtxParent::ForeignCag { cag, v }
                }
            }
            Some(Resolved::Closed { .. }) | Some(Resolved::Orphan { .. }) => {
                // The previous activity of this execution entity belongs
                // to an already-completed request (pool thread reused) or
                // to a noise chain: same-CAG check fails either way.
                self.counters.reuse_suppressed_edges += 1;
                CtxParent::None(None)
            }
            _ => CtxParent::None(None),
        }
    }
}

enum CtxParent {
    SameCag(Option<usize>),
    None(Option<usize>),
    ForeignCag { cag: u64, v: usize },
}

impl MatchOracle for Engine {
    fn rule1_matches(&self, a: &Activity) -> bool {
        let Some(q) = self.mmap.get(&a.channel) else {
            return false;
        };
        if let Some(r0) = a.seq {
            // Mirror `on_receive`'s v2 arithmetic: pendings wholly below
            // the receive lost their own receives and will be retired on
            // delivery. Treating them as a Rule-1 match would boost this
            // receive ahead of its true sender's SEND record and bind it
            // to a claim the offsets already disprove.
            let r1 = r0 + a.size.max(1);
            for p in q.iter() {
                match p.range {
                    Some((_, en)) if en <= r0 => continue,
                    Some((fs, _)) => return fs < r1,
                    None => return p.remaining >= a.size,
                }
            }
            return false;
        }
        q.front().is_some_and(|p| p.remaining >= a.size)
    }

    fn has_any_pending(&self, a: &Activity) -> bool {
        let Some(q) = self.mmap.get(&a.channel) else {
            return false;
        };
        if let Some(r0) = a.seq {
            q.iter().any(|p| p.range.is_none_or(|(_, en)| en > r0))
        } else {
            !q.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{EndpointV4, LocalTime};

    fn ep(s: &str) -> EndpointV4 {
        s.parse().unwrap()
    }

    #[allow(clippy::too_many_arguments)]
    fn act(
        ty: ActivityType,
        ts: u64,
        host: &str,
        prog: &str,
        tid: u32,
        src: &str,
        dst: &str,
        size: u64,
        tag: u64,
    ) -> Activity {
        Activity {
            ty,
            ts: LocalTime::from_nanos(ts),
            ctx: ContextId::new(host, prog, 1, tid),
            channel: Channel::new(ep(src), ep(dst)),
            size,
            tag,
            seq: None,
        }
    }

    const CLIENT: &str = "192.168.0.9:5000";
    const WEB_FRONT: &str = "10.0.0.1:80";
    const WEB_OUT: &str = "10.0.0.1:4001";
    const APP_IN: &str = "10.0.0.2:9000";

    fn two_tier_request(e: &mut Engine) {
        e.deliver(act(
            ActivityType::Begin,
            1_000,
            "web",
            "httpd",
            7,
            CLIENT,
            WEB_FRONT,
            120,
            1,
        ));
        e.deliver(act(
            ActivityType::Send,
            2_000,
            "web",
            "httpd",
            7,
            WEB_OUT,
            APP_IN,
            64,
            2,
        ));
        e.deliver(act(
            ActivityType::Receive,
            2_500,
            "app",
            "java",
            21,
            WEB_OUT,
            APP_IN,
            64,
            3,
        ));
        e.deliver(act(
            ActivityType::Send,
            4_000,
            "app",
            "java",
            21,
            APP_IN,
            WEB_OUT,
            256,
            4,
        ));
        e.deliver(act(
            ActivityType::Receive,
            4_400,
            "web",
            "httpd",
            7,
            APP_IN,
            WEB_OUT,
            256,
            5,
        ));
        e.deliver(act(
            ActivityType::End,
            5_000,
            "web",
            "httpd",
            7,
            WEB_FRONT,
            CLIENT,
            512,
            6,
        ));
    }

    #[test]
    fn builds_a_complete_two_tier_cag() {
        let mut e = Engine::default();
        two_tier_request(&mut e);
        assert_eq!(e.finished_len(), 1);
        assert_eq!(e.unfinished_len(), 0);
        let cags = e.take_finished();
        let cag = &cags[0];
        cag.validate().expect("valid");
        assert_eq!(cag.vertices.len(), 6);
        assert_eq!(cag.sorted_tags(), vec![1, 2, 3, 4, 5, 6]);
        // The httpd response RECEIVE has two parents.
        let recv = &cag.vertices[4];
        assert_eq!(recv.parent_count(), 2);
    }

    #[test]
    fn take_finished_drains() {
        let mut e = Engine::default();
        two_tier_request(&mut e);
        assert_eq!(e.take_finished().len(), 1);
        assert_eq!(e.take_finished().len(), 0);
    }

    #[test]
    fn merges_chunked_sends_by_size() {
        // Sender writes 900 + 544; receiver reads 512 + 512 + 420 (Fig. 4).
        let mut e = Engine::default();
        e.deliver(act(
            ActivityType::Begin,
            1_000,
            "web",
            "httpd",
            7,
            CLIENT,
            WEB_FRONT,
            120,
            1,
        ));
        e.deliver(act(
            ActivityType::Send,
            2_000,
            "web",
            "httpd",
            7,
            WEB_OUT,
            APP_IN,
            900,
            2,
        ));
        e.deliver(act(
            ActivityType::Send,
            2_100,
            "web",
            "httpd",
            7,
            WEB_OUT,
            APP_IN,
            544,
            3,
        ));
        e.deliver(act(
            ActivityType::Receive,
            2_500,
            "app",
            "java",
            21,
            WEB_OUT,
            APP_IN,
            512,
            4,
        ));
        e.deliver(act(
            ActivityType::Receive,
            2_600,
            "app",
            "java",
            21,
            WEB_OUT,
            APP_IN,
            512,
            5,
        ));
        e.deliver(act(
            ActivityType::Receive,
            2_700,
            "app",
            "java",
            21,
            WEB_OUT,
            APP_IN,
            420,
            6,
        ));
        e.deliver(act(
            ActivityType::Send,
            4_000,
            "app",
            "java",
            21,
            APP_IN,
            WEB_OUT,
            256,
            7,
        ));
        e.deliver(act(
            ActivityType::Receive,
            4_400,
            "web",
            "httpd",
            7,
            APP_IN,
            WEB_OUT,
            256,
            8,
        ));
        e.deliver(act(
            ActivityType::End,
            5_000,
            "web",
            "httpd",
            7,
            WEB_FRONT,
            CLIENT,
            512,
            9,
        ));
        let cags = e.take_finished();
        assert_eq!(cags.len(), 1);
        let cag = &cags[0];
        cag.validate().expect("valid");
        // 900+544 merged into one SEND vertex; 512+512+420 into one RECEIVE.
        assert_eq!(cag.vertices.len(), 6);
        let send = &cag.vertices[1];
        assert_eq!(send.size, 1444);
        assert_eq!(send.tags, vec![2, 3]);
        let recv = &cag.vertices[2];
        assert_eq!(recv.size, 420); // size of the completing segment
        assert_eq!(recv.tags, vec![4, 5, 6]);
        assert_eq!(recv.ts, LocalTime::from_nanos(2_700)); // completion time
        assert_eq!(e.counters().send_merges, 1);
        assert_eq!(e.counters().partial_receives, 2);
    }

    #[test]
    fn thread_reuse_check_suppresses_cross_cag_context_edge() {
        let mut e = Engine::default();
        // Request 1 completes through app thread 21.
        two_tier_request(&mut e);
        // Request 2 from a different web worker reuses app thread 21.
        e.deliver(act(
            ActivityType::Begin,
            11_000,
            "web",
            "httpd",
            8,
            "192.168.0.9:5001",
            WEB_FRONT,
            120,
            11,
        ));
        e.deliver(act(
            ActivityType::Send,
            12_000,
            "web",
            "httpd",
            8,
            "10.0.0.1:4002",
            APP_IN,
            64,
            12,
        ));
        e.deliver(act(
            ActivityType::Receive,
            12_500,
            "app",
            "java",
            21,
            "10.0.0.1:4002",
            APP_IN,
            64,
            13,
        ));
        e.deliver(act(
            ActivityType::Send,
            14_000,
            "app",
            "java",
            21,
            APP_IN,
            "10.0.0.1:4002",
            256,
            14,
        ));
        e.deliver(act(
            ActivityType::Receive,
            14_400,
            "web",
            "httpd",
            8,
            APP_IN,
            "10.0.0.1:4002",
            256,
            15,
        ));
        e.deliver(act(
            ActivityType::End,
            15_000,
            "web",
            "httpd",
            8,
            WEB_FRONT,
            "192.168.0.9:5001",
            512,
            16,
        ));
        let cags = e.take_finished();
        assert_eq!(cags.len(), 2);
        for c in &cags {
            c.validate().expect("valid");
        }
        // The app RECEIVE of request 2 must not have a context edge from
        // request 1's chain.
        let r2 = &cags[1];
        let recv = &r2.vertices[2];
        assert_eq!(recv.ty, ActivityType::Receive);
        assert_eq!(recv.msg_parent, Some(1));
        assert_eq!(recv.ctx_parent, None);
        assert_eq!(e.counters().reuse_suppressed_edges, 1);
        assert_eq!(r2.sorted_tags(), vec![11, 12, 13, 14, 15, 16]);
    }

    #[test]
    fn disabling_thread_reuse_check_corrupts_paths() {
        let mut e = Engine::new(EngineOptions {
            thread_reuse_check: false,
            ..EngineOptions::default()
        });
        two_tier_request(&mut e);
        e.deliver(act(
            ActivityType::Begin,
            11_000,
            "web",
            "httpd",
            8,
            "192.168.0.9:5001",
            WEB_FRONT,
            120,
            11,
        ));
        e.deliver(act(
            ActivityType::Send,
            12_000,
            "web",
            "httpd",
            8,
            "10.0.0.1:4002",
            APP_IN,
            64,
            12,
        ));
        // app thread 21 reused: its cmap still points into CAG 1 (finished).
        e.deliver(act(
            ActivityType::Receive,
            12_500,
            "app",
            "java",
            21,
            "10.0.0.1:4002",
            APP_IN,
            64,
            13,
        ));
        // With the check disabled the receive follows the stale context
        // chain; since CAG 1 is already finished the resolve is Closed and
        // the check cannot even misfire here — exercise the in-flight case:
        // request 3 starts before request 2 finishes.
        let finished = e.take_finished().len();
        assert_eq!(finished, 1);
    }

    #[test]
    fn chunked_begin_merges_into_root() {
        let mut e = Engine::default();
        e.deliver(act(
            ActivityType::Begin,
            1_000,
            "web",
            "httpd",
            7,
            CLIENT,
            WEB_FRONT,
            100,
            1,
        ));
        e.deliver(act(
            ActivityType::Begin,
            1_050,
            "web",
            "httpd",
            7,
            CLIENT,
            WEB_FRONT,
            60,
            2,
        ));
        e.deliver(act(
            ActivityType::End,
            5_000,
            "web",
            "httpd",
            7,
            WEB_FRONT,
            CLIENT,
            512,
            3,
        ));
        let cags = e.take_finished();
        assert_eq!(cags.len(), 1, "chunked request must open exactly one CAG");
        assert_eq!(cags[0].vertices[0].size, 160);
        assert_eq!(e.counters().begin_merges, 1);
    }

    #[test]
    fn keep_alive_connection_opens_new_cag_after_end() {
        let mut e = Engine::default();
        e.deliver(act(
            ActivityType::Begin,
            1_000,
            "web",
            "httpd",
            7,
            CLIENT,
            WEB_FRONT,
            100,
            1,
        ));
        e.deliver(act(
            ActivityType::End,
            2_000,
            "web",
            "httpd",
            7,
            WEB_FRONT,
            CLIENT,
            512,
            2,
        ));
        // Second request on the same connection and context.
        e.deliver(act(
            ActivityType::Begin,
            3_000,
            "web",
            "httpd",
            7,
            CLIENT,
            WEB_FRONT,
            100,
            3,
        ));
        e.deliver(act(
            ActivityType::End,
            4_000,
            "web",
            "httpd",
            7,
            WEB_FRONT,
            CLIENT,
            512,
            4,
        ));
        assert_eq!(e.take_finished().len(), 2);
        assert_eq!(e.counters().begin_merges, 0);
    }

    #[test]
    fn trailing_end_chunks_amend_finished_cag() {
        let mut e = Engine::default();
        e.deliver(act(
            ActivityType::Begin,
            1_000,
            "web",
            "httpd",
            7,
            CLIENT,
            WEB_FRONT,
            100,
            1,
        ));
        e.deliver(act(
            ActivityType::End,
            2_000,
            "web",
            "httpd",
            7,
            WEB_FRONT,
            CLIENT,
            512,
            2,
        ));
        e.deliver(act(
            ActivityType::End,
            2_100,
            "web",
            "httpd",
            7,
            WEB_FRONT,
            CLIENT,
            488,
            3,
        ));
        let cags = e.take_finished();
        assert_eq!(cags.len(), 1);
        let end = cags[0].end().unwrap();
        assert_eq!(end.size, 1000);
        assert_eq!(end.ts, LocalTime::from_nanos(2_000)); // first chunk is the STOP
        assert_eq!(end.ts_last, LocalTime::from_nanos(2_100));
        assert_eq!(e.counters().end_amends, 1);
    }

    #[test]
    fn unmatched_receive_is_counted_not_crashed() {
        let mut e = Engine::default();
        e.deliver(act(
            ActivityType::Receive,
            1_000,
            "db",
            "mysqld",
            9,
            "9.9.9.9:1000",
            "10.0.0.3:3306",
            64,
            0,
        ));
        assert_eq!(e.counters().unmatched_receives, 1);
        assert_eq!(e.unfinished_len(), 0);
    }

    #[test]
    fn noise_send_chain_stays_orphan() {
        let mut e = Engine::default();
        // A mysqld connection thread serving a noise client: sends with no
        // BEGIN context.
        e.deliver(act(
            ActivityType::Send,
            1_000,
            "db",
            "mysqld",
            99,
            "10.0.0.3:3306",
            "9.9.9.9:1000",
            64,
            0,
        ));
        e.deliver(act(
            ActivityType::Send,
            1_100,
            "db",
            "mysqld",
            99,
            "10.0.0.3:3306",
            "9.9.9.9:1000",
            64,
            0,
        ));
        assert_eq!(e.counters().orphan_vertices, 1); // second send merged
        assert_eq!(e.counters().send_merges, 1);
        assert_eq!(e.unfinished_len(), 0);
        assert_eq!(e.finished_len(), 0);
    }

    #[test]
    fn pipelined_sends_after_full_receive_reopen_pending() {
        let mut e = Engine::default();
        e.deliver(act(
            ActivityType::Begin,
            1_000,
            "web",
            "httpd",
            7,
            CLIENT,
            WEB_FRONT,
            100,
            1,
        ));
        e.deliver(act(
            ActivityType::Send,
            2_000,
            "web",
            "httpd",
            7,
            WEB_OUT,
            APP_IN,
            64,
            2,
        ));
        e.deliver(act(
            ActivityType::Receive,
            2_500,
            "app",
            "java",
            21,
            WEB_OUT,
            APP_IN,
            64,
            3,
        ));
        // httpd sends a second chunk on the same channel *after* the first
        // was fully received; it merges into the same vertex but needs a
        // fresh pending entry.
        e.deliver(act(
            ActivityType::Send,
            2_600,
            "web",
            "httpd",
            7,
            WEB_OUT,
            APP_IN,
            32,
            4,
        ));
        e.deliver(act(
            ActivityType::Receive,
            2_700,
            "app",
            "java",
            21,
            WEB_OUT,
            APP_IN,
            32,
            5,
        ));
        // The second receive matched the reopened pending but its message
        // parent resolves into the same open CAG (the merged send vertex).
        e.deliver(act(
            ActivityType::Send,
            3_000,
            "app",
            "java",
            21,
            APP_IN,
            WEB_OUT,
            16,
            6,
        ));
        e.deliver(act(
            ActivityType::Receive,
            3_200,
            "web",
            "httpd",
            7,
            APP_IN,
            WEB_OUT,
            16,
            7,
        ));
        e.deliver(act(
            ActivityType::End,
            4_000,
            "web",
            "httpd",
            7,
            WEB_FRONT,
            CLIENT,
            10,
            8,
        ));
        let cags = e.take_finished();
        assert_eq!(cags.len(), 1);
        cags[0].validate().expect("valid");
        assert_eq!(cags[0].sorted_tags(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn cross_message_coalescing_is_detected() {
        // Two distinct pending messages on one channel (an intervening
        // send on another channel breaks vertex merging); the receiver
        // then coalesces bytes of both into one recv() — an assumption
        // violation the engine must detect rather than mis-correlate.
        let mut e = Engine::default();
        e.deliver(act(
            ActivityType::Begin,
            1_000,
            "web",
            "httpd",
            7,
            CLIENT,
            WEB_FRONT,
            100,
            1,
        ));
        e.deliver(act(
            ActivityType::Send,
            2_000,
            "web",
            "httpd",
            7,
            WEB_OUT,
            APP_IN,
            32,
            2,
        ));
        e.deliver(act(
            ActivityType::Send,
            2_100,
            "web",
            "httpd",
            7,
            "10.0.0.1:4009",
            "10.0.0.9:700",
            10,
            3,
        ));
        e.deliver(act(
            ActivityType::Send,
            2_200,
            "web",
            "httpd",
            7,
            WEB_OUT,
            APP_IN,
            48,
            4,
        ));
        // 40 bytes spans the 32-byte message plus 8 bytes of the next.
        e.deliver(act(
            ActivityType::Receive,
            2_700,
            "app",
            "java",
            21,
            WEB_OUT,
            APP_IN,
            40,
            5,
        ));
        assert_eq!(e.counters().cross_message_receives, 1);
    }

    #[test]
    fn pending_cap_evicts_oldest() {
        let mut e = Engine::new(EngineOptions {
            pending_cap: 2,
            ..EngineOptions::default()
        });
        for i in 0..4u64 {
            e.deliver(act(
                ActivityType::Send,
                1_000 + i,
                "db",
                "mysqld",
                90 + i as u32,
                "10.0.0.3:3306",
                "9.9.9.9:1000",
                64,
                0,
            ));
        }
        assert_eq!(e.counters().evicted_pendings, 2);
    }

    #[test]
    fn match_oracle_reflects_mmap() {
        let mut e = Engine::default();
        let recv = act(
            ActivityType::Receive,
            3_000,
            "app",
            "java",
            21,
            WEB_OUT,
            APP_IN,
            64,
            0,
        );
        assert!(!e.rule1_matches(&recv));
        assert!(!e.has_any_pending(&recv));
        e.deliver(act(
            ActivityType::Begin,
            1_000,
            "web",
            "httpd",
            7,
            CLIENT,
            WEB_FRONT,
            100,
            1,
        ));
        e.deliver(act(
            ActivityType::Send,
            2_000,
            "web",
            "httpd",
            7,
            WEB_OUT,
            APP_IN,
            64,
            2,
        ));
        assert!(e.rule1_matches(&recv));
        assert!(e.has_any_pending(&recv));
        // A receive larger than the pending bytes does not qualify under
        // Rule 1 (its remaining SEND segments must pop first), but the
        // channel still has a pending send.
        let big = act(
            ActivityType::Receive,
            3_000,
            "app",
            "java",
            21,
            WEB_OUT,
            APP_IN,
            900,
            0,
        );
        assert!(!e.rule1_matches(&big));
        assert!(e.has_any_pending(&big));
    }

    #[test]
    fn take_sealed_holds_amendable_cag_until_ctx_moves() {
        let mut e = Engine::default();
        two_tier_request(&mut e);
        // The END is still the latest activity of httpd/7: unsealed.
        assert!(e.take_sealed(None).is_empty());
        assert_eq!(e.finished_len(), 1);
        // The context moves on (new request): now sealed.
        e.deliver(act(
            ActivityType::Begin,
            9_000,
            "web",
            "httpd",
            7,
            CLIENT,
            WEB_FRONT,
            1,
            0,
        ));
        assert_eq!(e.take_sealed(None).len(), 1);
        assert_eq!(e.counters().forced_seals, 0);
    }

    #[test]
    fn max_seal_lag_forces_emission_under_keep_alive_lull() {
        let mut e = Engine::default();
        two_tier_request(&mut e);
        // Unrelated traffic ages the finished CAG past the lag bound.
        for i in 0..8u64 {
            e.deliver(act(
                ActivityType::Send,
                20_000 + i,
                "db",
                "mysqld",
                90 + i as u32,
                "10.0.0.3:3306",
                "9.9.9.9:1000",
                64,
                0,
            ));
        }
        // Without a bound the CAG would still wait for its context.
        assert!(e.take_sealed(None).is_empty());
        let sealed = e.take_sealed(Some(4));
        assert_eq!(sealed.len(), 1);
        assert_eq!(e.counters().forced_seals, 1);
        // A trailing END chunk can no longer amend it: counted, orphaned.
        e.deliver(act(
            ActivityType::End,
            30_000,
            "web",
            "httpd",
            7,
            WEB_FRONT,
            CLIENT,
            8,
            0,
        ));
        assert_eq!(e.counters().end_amends, 0);
        assert_eq!(e.counters().unmatched_ends, 1);
    }

    #[test]
    fn counters_absorb_sums_fields() {
        let mut a = EngineCounters {
            delivered: 3,
            cags_opened: 1,
            forced_seals: 1,
            ..EngineCounters::default()
        };
        let b = EngineCounters {
            delivered: 4,
            cags_opened: 2,
            orphan_vertices: 5,
            ..EngineCounters::default()
        };
        a.absorb(&b);
        assert_eq!(a.delivered, 7);
        assert_eq!(a.cags_opened, 3);
        assert_eq!(a.orphan_vertices, 5);
        assert_eq!(a.forced_seals, 1);
    }

    #[test]
    fn approx_bytes_grows_with_state() {
        let mut e = Engine::default();
        let empty = e.approx_bytes();
        two_tier_request(&mut e);
        assert!(e.approx_bytes() > empty);
    }

    #[test]
    fn unfinished_cap_abandons_oldest() {
        let mut e = Engine::new(EngineOptions {
            unfinished_cap: 2,
            ..EngineOptions::default()
        });
        for i in 0..4u64 {
            e.deliver(act(
                ActivityType::Begin,
                1_000 + i,
                "web",
                "httpd",
                7 + i as u32,
                "192.168.0.9:5000",
                WEB_FRONT,
                100,
                0,
            ));
        }
        assert_eq!(e.unfinished_len(), 2);
        assert_eq!(e.counters().abandoned_cags, 2);
    }
}
