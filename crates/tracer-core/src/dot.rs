//! Graphviz DOT export of CAGs and average causal paths, for visual
//! debugging (the paper's Fig. 1 rendering).

use std::fmt::Write as _;

use crate::cag::{Cag, EdgeKind};
use crate::pattern::AveragePath;

/// Renders a CAG as a Graphviz digraph. Context relations are solid
/// (red in the paper), message relations dashed (blue).
///
/// # Examples
///
/// ```
/// # use tracer_core::dot::cag_to_dot;
/// # use tracer_core::cag::Cag;
/// let cag = Cag { id: 0, vertices: vec![], finished: false };
/// let dot = cag_to_dot(&cag);
/// assert!(dot.starts_with("digraph"));
/// ```
pub fn cag_to_dot(cag: &Cag) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph cag_{} {{", cag.id);
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  node [shape=box, fontsize=10];");
    for (i, v) in cag.vertices.iter().enumerate() {
        let _ = writeln!(
            s,
            "  v{} [label=\"{}\\n{}:{}\\nt={} size={}\"];",
            i, v.ty, v.ctx.hostname, v.ctx.program, v.ts, v.size
        );
    }
    for e in cag.edges() {
        let style = match e.kind {
            EdgeKind::Context => "solid\", color=\"red",
            EdgeKind::Message => "dashed\", color=\"blue",
        };
        let _ = writeln!(
            s,
            "  v{} -> v{} [style=\"{}\", label=\"{}\"];",
            e.from, e.to, style, e.latency
        );
    }
    s.push_str("}\n");
    s
}

/// Renders an average causal path: the exemplar structure annotated with
/// the pattern's mean edge latencies.
pub fn average_path_to_dot(path: &AveragePath) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph pattern_{:x} {{", path.key.0);
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(
        s,
        "  label=\"{} requests, mean total {}\";",
        path.count, path.mean_total
    );
    let _ = writeln!(s, "  node [shape=box, fontsize=10];");
    for (i, v) in path.exemplar.vertices.iter().enumerate() {
        let _ = writeln!(
            s,
            "  v{} [label=\"{}\\n{}:{}\"];",
            i, v.ty, v.ctx.hostname, v.ctx.program
        );
    }
    for e in path.exemplar.edges() {
        let style = match e.kind {
            EdgeKind::Context => "solid\", color=\"red",
            EdgeKind::Message => "dashed\", color=\"blue",
        };
        let comp = &e.component;
        let pct = path.percentages.get(comp).copied().unwrap_or(0.0);
        let _ = writeln!(
            s,
            "  v{} -> v{} [style=\"{}\", label=\"{} {:.1}%\"];",
            e.from, e.to, style, comp, pct
        );
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cag::test_support::two_tier_cag;
    use crate::pattern::PatternAggregator;

    #[test]
    fn cag_dot_contains_vertices_and_edges() {
        let dot = cag_to_dot(&two_tier_cag());
        assert!(dot.contains("digraph cag_1"));
        assert!(dot.contains("BEGIN"));
        assert!(dot.contains("dashed"));
        assert!(dot.contains("v0 -> v1"));
        assert_eq!(dot.matches("->").count(), 6);
    }

    #[test]
    fn average_path_dot_renders_percentages() {
        let mut agg = PatternAggregator::new();
        let cag = two_tier_cag();
        agg.add(&cag);
        let paths = agg.average_paths();
        let dot = average_path_to_dot(&paths[0]);
        assert!(dot.contains('%'));
        assert!(dot.contains("httpd2java"));
    }
}
