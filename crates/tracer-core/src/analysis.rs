//! End-to-end performance debugging (§5.4).
//!
//! The paper's workflow: compute the average causal path of the most
//! frequent pattern, visualize the **latency percentages of components**
//! (Fig. 15/17), and localize problems from how those percentages change
//! between a normal run and an abnormal one:
//!
//! * an internal component (`P2P`) rising sharply → tier `P` is slow
//!   (e.g. the injected EJB delay or the locked database table);
//! * an interaction (`P2Q`) rising while `Q2Q` does not → queueing in
//!   front of tier `Q` (e.g. the undersized JBoss `MaxThreads` pool) or
//!   a degraded network adjacent to the tiers involved.
//!
//! [`DiffReport`] computes the change table and [`Diagnosis`] encodes
//! those rules.

use std::collections::BTreeMap;
use std::fmt;

use crate::activity::Nanos;
use crate::cag::{Cag, Component};
use crate::pattern::{PatternAggregator, PatternKey, PatternStats};

/// Latency breakdown of one causal path pattern (one bar group of
/// Fig. 15).
#[derive(Debug, Clone)]
pub struct BreakdownReport {
    /// The pattern this breakdown describes.
    pub pattern: PatternKey,
    /// Canonical signature (for display / debugging).
    pub signature: String,
    /// Number of requests aggregated.
    pub count: u64,
    /// Mean total servicing latency.
    pub mean_total: Nanos,
    /// Mean absolute latency per component.
    pub components: BTreeMap<Component, Nanos>,
    /// Latency percentage per component.
    pub percentages: BTreeMap<Component, f64>,
}

impl BreakdownReport {
    /// Breakdown of a pattern's statistics.
    pub fn from_stats(stats: &PatternStats) -> Self {
        BreakdownReport {
            pattern: stats.key,
            signature: stats.signature.clone(),
            count: stats.count,
            mean_total: stats.mean_total(),
            components: stats.mean_components(),
            percentages: stats.latency_percentages(),
        }
    }

    /// Breakdown of the most frequent pattern among `cags` (the paper
    /// analyzes ViewItem, the most frequent RUBiS request).
    pub fn dominant(cags: &[Cag]) -> Option<Self> {
        let mut agg = PatternAggregator::new();
        agg.add_all(cags);
        agg.dominant().map(Self::from_stats)
    }

    /// The percentage for a component, 0.0 when absent.
    pub fn pct(&self, component: &Component) -> f64 {
        self.percentages.get(component).copied().unwrap_or(0.0)
    }

    /// Formats a paper-style table of latency percentages.
    pub fn format_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "pattern {} ({} requests, mean total {})\n",
            self.pattern, self.count, self.mean_total
        ));
        s.push_str(&format!(
            "{:<24} {:>12} {:>8}\n",
            "component", "mean", "pct"
        ));
        for (c, lat) in &self.components {
            s.push_str(&format!(
                "{:<24} {:>12} {:>7.1}%\n",
                c.to_string(),
                lat.to_string(),
                self.pct(c)
            ));
        }
        s
    }
}

/// One row of a latency-percentage comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// The component.
    pub component: Component,
    /// Percentage in the baseline run.
    pub before_pct: f64,
    /// Percentage in the run under analysis.
    pub after_pct: f64,
    /// `after - before` in percentage points.
    pub delta: f64,
}

/// Comparison of two breakdowns (normal vs. abnormal run), sorted by
/// descending percentage-point increase.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Rows sorted by descending delta.
    pub rows: Vec<DiffRow>,
    /// Mean totals of both runs (for context: did latency grow at all?).
    pub before_total: Nanos,
    /// Mean total of the run under analysis.
    pub after_total: Nanos,
}

impl DiffReport {
    /// Compares two breakdowns of the *same* pattern.
    pub fn between(baseline: &BreakdownReport, current: &BreakdownReport) -> Self {
        let mut keys: Vec<Component> = baseline
            .percentages
            .keys()
            .chain(current.percentages.keys())
            .cloned()
            .collect();
        keys.sort();
        keys.dedup();
        let mut rows: Vec<DiffRow> = keys
            .into_iter()
            .map(|c| {
                let b = baseline.pct(&c);
                let a = current.pct(&c);
                DiffRow {
                    component: c,
                    before_pct: b,
                    after_pct: a,
                    delta: a - b,
                }
            })
            .collect();
        rows.sort_by(|x, y| {
            y.delta
                .partial_cmp(&x.delta)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        DiffReport {
            rows,
            before_total: baseline.mean_total,
            after_total: current.mean_total,
        }
    }

    /// The row for a component, if present.
    pub fn row(&self, component: &Component) -> Option<&DiffRow> {
        self.rows.iter().find(|r| r.component == *component)
    }

    /// Formats a paper-style change table.
    pub fn format_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "mean total: {} -> {}\n{:<24} {:>8} {:>8} {:>8}\n",
            self.before_total, self.after_total, "component", "before", "after", "delta"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<24} {:>7.1}% {:>7.1}% {:>+7.1}\n",
                r.component.to_string(),
                r.before_pct,
                r.after_pct,
                r.delta
            ));
        }
        s
    }
}

/// What kind of culprit the localization points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuspectKind {
    /// Time grew inside one tier's processing (`P2P`).
    TierInternal(String),
    /// Time grew queueing/transiting between two tiers; usually an
    /// undersized pool or connector in front of `to`.
    Interaction {
        /// Upstream program.
        from: String,
        /// Downstream program (where requests queue).
        to: String,
    },
    /// Several interactions adjacent to one tier grew while its internal
    /// time did not: its network is suspect (abnormal case 3).
    TierNetwork(String),
}

impl fmt::Display for SuspectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuspectKind::TierInternal(p) => write!(f, "tier `{p}` internal processing"),
            SuspectKind::Interaction { from, to } => {
                write!(f, "interaction `{from}` -> `{to}`")
            }
            SuspectKind::TierNetwork(p) => write!(f, "network of tier `{p}`"),
        }
    }
}

/// A localized performance problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// The component whose growth triggered the diagnosis.
    pub trigger: Component,
    /// Percentage-point growth of the trigger.
    pub delta: f64,
    /// What the evidence points at.
    pub suspect: SuspectKind,
    /// Human-readable reasoning, mirroring §5.4's arguments.
    pub explanation: String,
}

impl Diagnosis {
    /// Applies the §5.4 localization rules to a diff report.
    ///
    /// `min_delta` is the minimum percentage-point increase considered a
    /// signal (the paper reacts to changes of tens of points; a few
    /// points of drift is normal).
    pub fn localize(diff: &DiffReport, min_delta: f64) -> Option<Diagnosis> {
        let top = diff.rows.first()?;
        if top.delta < min_delta {
            return None;
        }
        let c = &top.component;
        if c.is_internal() {
            let p = c.from.to_string();
            return Some(Diagnosis {
                trigger: c.clone(),
                delta: top.delta,
                suspect: SuspectKind::TierInternal(p.clone()),
                explanation: format!(
                    "latency percentage of {} increased by {:.1} points; time is \
                     spent inside `{p}` itself, so `{p}` is in question",
                    c, top.delta
                ),
            });
        }
        // Interaction P2Q grew. Check Q's internal time.
        let q = c.to.to_string();
        let p = c.from.to_string();
        let q_internal = Component::new(q.clone(), q.clone());
        let q_internal_delta = diff.row(&q_internal).map_or(0.0, |r| r.delta);
        if q_internal_delta >= min_delta {
            return Some(Diagnosis {
                trigger: c.clone(),
                delta: top.delta,
                suspect: SuspectKind::TierInternal(q.clone()),
                explanation: format!(
                    "both the interaction {} (+{:.1}) and the internal time {} \
                     (+{:.1}) grew: `{q}` is slow and backs up its input",
                    c, top.delta, q_internal, q_internal_delta
                ),
            });
        }
        // Count how many interactions adjacent to each of P and Q grew.
        let grown_adjacent = |tier: &str| {
            diff.rows
                .iter()
                .filter(|r| {
                    !r.component.is_internal()
                        && r.delta > min_delta / 4.0
                        && (&*r.component.from == tier || &*r.component.to == tier)
                })
                .count()
        };
        let p_adj = grown_adjacent(&p);
        let q_adj = grown_adjacent(&q);
        // §5.4.2 abnormal case 3: three of the four interactions around
        // the second tier grew while java2java fell to ~0 → its network.
        for (tier, adj) in [(&q, q_adj), (&p, p_adj)] {
            let internal = Component::new(tier.clone(), tier.clone());
            let internal_delta = diff.row(&internal).map_or(0.0, |r| r.delta);
            if adj >= 2 && internal_delta <= 0.0 {
                return Some(Diagnosis {
                    trigger: c.clone(),
                    delta: top.delta,
                    suspect: SuspectKind::TierNetwork(tier.clone()),
                    explanation: format!(
                        "{adj} interactions adjacent to `{tier}` grew while {internal} \
                         did not ({internal_delta:+.1}): the network of `{tier}` is in \
                         question"
                    ),
                });
            }
        }
        Some(Diagnosis {
            trigger: c.clone(),
            delta: top.delta,
            suspect: SuspectKind::Interaction {
                from: p.clone(),
                to: q.clone(),
            },
            explanation: format!(
                "the interaction {} grew by {:.1} points while `{q}` internal time \
                 did not: requests queue between `{p}` and `{q}` — check the \
                 connector/thread pool of `{q}`",
                c, top.delta
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, &str, f64)], total_ms: u64) -> BreakdownReport {
        let total = Nanos::from_millis(total_ms);
        let mut components = BTreeMap::new();
        let mut percentages = BTreeMap::new();
        for &(f, t, pct) in pairs {
            let c = Component::new(f, t);
            components.insert(
                c.clone(),
                Nanos((total.as_nanos() as f64 * pct / 100.0) as u64),
            );
            percentages.insert(c, pct);
        }
        BreakdownReport {
            pattern: PatternKey(1),
            signature: "(test)".into(),
            count: 100,
            mean_total: total,
            components,
            percentages,
        }
    }

    fn normal() -> BreakdownReport {
        report(
            &[
                ("httpd", "httpd", 8.0),
                ("httpd", "java", 1.0),
                ("java", "httpd", 4.0),
                ("java", "java", 9.0),
                ("java", "mysqld", 26.0),
                ("mysqld", "java", 37.0),
                ("mysqld", "mysqld", 12.0),
            ],
            50,
        )
    }

    #[test]
    fn diff_sorted_by_delta() {
        let ejb_delay = report(
            &[
                ("httpd", "httpd", 5.0),
                ("httpd", "java", 1.0),
                ("java", "httpd", 3.0),
                ("java", "java", 45.0),
                ("java", "mysqld", 16.0),
                ("mysqld", "java", 22.0),
                ("mysqld", "mysqld", 7.0),
            ],
            120,
        );
        let diff = DiffReport::between(&normal(), &ejb_delay);
        assert_eq!(diff.rows[0].component, Component::new("java", "java"));
        assert!((diff.rows[0].delta - 36.0).abs() < 1e-9);
    }

    #[test]
    fn localizes_internal_tier_delay() {
        // Abnormal case 1: EJB delay → java2java 9% → 45%.
        let abnormal = report(&[("java", "java", 45.0), ("mysqld", "mysqld", 8.0)], 120);
        let diff = DiffReport::between(&normal(), &abnormal);
        let d = Diagnosis::localize(&diff, 10.0).expect("diagnosis");
        assert_eq!(d.suspect, SuspectKind::TierInternal("java".into()));
    }

    #[test]
    fn localizes_database_lock() {
        // Abnormal case 2: mysqld2mysqld 12→22, java2mysqld 26→36.
        let abnormal = report(
            &[
                ("httpd", "httpd", 5.0),
                ("java", "java", 6.0),
                ("java", "mysqld", 36.0),
                ("mysqld", "java", 28.0),
                ("mysqld", "mysqld", 22.0),
            ],
            110,
        );
        let diff = DiffReport::between(&normal(), &abnormal);
        let d = Diagnosis::localize(&diff, 9.0).expect("diagnosis");
        // java2mysqld (+10) triggers, but mysqld internal also grew →
        // tier mysqld.
        assert_eq!(d.suspect, SuspectKind::TierInternal("mysqld".into()));
    }

    #[test]
    fn localizes_network_degradation() {
        // Abnormal case 3: interactions adjacent to java grow, java2java
        // falls to ~0.
        let abnormal = report(
            &[
                ("httpd", "httpd", 3.0),
                ("httpd", "java", 2.0),
                ("java", "httpd", 8.0),
                ("java", "java", 0.5),
                ("java", "mysqld", 47.0),
                ("mysqld", "java", 37.0),
                ("mysqld", "mysqld", 5.0),
            ],
            130,
        );
        let diff = DiffReport::between(&normal(), &abnormal);
        let d = Diagnosis::localize(&diff, 10.0).expect("diagnosis");
        assert_eq!(d.suspect, SuspectKind::TierNetwork("java".into()));
    }

    #[test]
    fn localizes_thread_pool_queueing() {
        // Fig. 15: httpd2java 46% → 80%, java internal flat.
        let abnormal = report(
            &[
                ("httpd", "httpd", 6.0),
                ("httpd", "java", 80.0),
                ("java", "httpd", 2.0),
                ("java", "java", 4.0),
                ("java", "mysqld", 3.0),
                ("mysqld", "java", 4.0),
                ("mysqld", "mysqld", 1.0),
            ],
            200,
        );
        let diff = DiffReport::between(&normal(), &abnormal);
        let d = Diagnosis::localize(&diff, 10.0).expect("diagnosis");
        match d.suspect {
            SuspectKind::Interaction { ref from, ref to } => {
                assert_eq!(from, "httpd");
                assert_eq!(to, "java");
            }
            other => panic!("expected interaction, got {other:?}"),
        }
        assert!(d.explanation.contains("thread pool"));
    }

    #[test]
    fn no_diagnosis_below_threshold() {
        let slightly_off = report(
            &[
                ("httpd", "httpd", 9.0),
                ("java", "java", 10.0),
                ("java", "mysqld", 25.0),
                ("mysqld", "java", 37.0),
                ("mysqld", "mysqld", 12.0),
            ],
            52,
        );
        let diff = DiffReport::between(&normal(), &slightly_off);
        assert!(Diagnosis::localize(&diff, 10.0).is_none());
    }

    #[test]
    fn tables_render() {
        let n = normal();
        let t = n.format_table();
        assert!(t.contains("mysqld2mysqld"));
        assert!(t.contains('%'));
        let diff = DiffReport::between(&n, &n);
        let dt = diff.format_table();
        assert!(dt.contains("delta"));
    }

    #[test]
    fn diff_handles_disjoint_components() {
        let a = report(&[("httpd", "httpd", 50.0)], 10);
        let b = report(&[("java", "java", 50.0)], 10);
        let diff = DiffReport::between(&a, &b);
        assert_eq!(diff.rows.len(), 2);
        assert_eq!(
            diff.row(&Component::new("httpd", "httpd")).unwrap().delta,
            -50.0
        );
        assert_eq!(
            diff.row(&Component::new("java", "java")).unwrap().delta,
            50.0
        );
    }
}
