//! Sharded parallel correlation (the follow-up paper's "online at
//! scale" requirement).
//!
//! Candidate selection is inherently sequential *within* one
//! access-point session, but sessions are independent: every activity
//! of a request — its BEGIN at the access point, the internal
//! SEND/RECEIVE cascade, the final END — belongs to exactly one client
//! session. [`ShardedCorrelator`] exploits that:
//!
//! ```text
//!            reader thread                     worker threads
//!  text ─→ parse (zero-copy) ─→ classify ─→ ┌─ shard 0: StreamingCorrelator ─┐
//!            + filter + route                ├─ shard 1: StreamingCorrelator ─┤─→ merge
//!            (session affinity)              ├─ ...                           │  (canonical
//!                                            └─ shard N-1 ──────────────────-┘   re-sequence)
//! ```
//!
//! * The **reader** parses borrowed [`RawRecordRef`]s (no per-record
//!   string allocations; hostnames/programs are interned), classifies
//!   and filters them, and routes each surviving activity to a shard by
//!   **client session**: the `src ip:port` of the BEGIN at the access
//!   point, consistent-hashed over the shard count. Internal activities
//!   follow their session through channel/context affinity tracking
//!   (the reader is sequential, so the routing is deterministic).
//! * Each **worker** owns a [`StreamingCorrelator`] fed through a
//!   bounded SPSC channel (back-pressure bounds memory) and correlates
//!   its shard's sessions while the reader keeps parsing.
//! * The **merge** stage re-sequences the union of all sealed CAGs into
//!   a canonical deterministic order — sorted by CAG root (the BEGIN's
//!   timestamp, context and channel), ids renumbered sequentially — so
//!   the output is byte-identical **regardless of shard count or thread
//!   interleaving**: `--shards 1` and `--shards 64` produce the same
//!   bytes. (One exception: a [`CorrelatorConfig::max_seal_lag`] bound
//!   is evaluated against each shard's private candidate counter, so
//!   *whether* a lulled path gets force-sealed before a trailing END
//!   chunk arrives can depend on the partition — the SLO knob trades
//!   cross-shard-count invariance for emission latency. Output for a
//!   **fixed** shard count stays fully deterministic.)
//!
//! ## Relation to the single-shard paths
//!
//! Per-CAG *content* (vertices, edges, sizes, tags, latencies — and
//! therefore every pattern/analysis result) is identical to the
//! single-threaded [`Correlator`](crate::correlator::Correlator): a
//! session's records meet exactly the same ranker/engine state whether
//! or not unrelated sessions share the instance. Two well-understood
//! presentation differences remain, both pinned by tests:
//!
//! * **Stream order**: the batch path emits CAGs in *seal* order, which
//!   depends on where 64-candidate sampling boundaries fall in the
//!   global candidate sequence — a quantity that only exists when all
//!   sessions share one correlator. The sharded path instead emits in
//!   the canonical root order above. On single-frontend-host logs the
//!   renumbered ids coincide with the batch ids (both are BEGIN order),
//!   so sorting the batch output by id yields the sharded bytes.
//! * **Cross-session counters**: diagnostics counting interactions
//!   *between* sessions (`reuse_suppressed_edges` when a pool thread's
//!   previous session lives in another shard) can differ from the
//!   single-shard run; additive per-session counters (records, CAGs,
//!   merges, noise discards) sum exactly.

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::access::Classifier;
use crate::activity::{Activity, ActivityType, ContextId, EndpointV4};
use crate::cag::Cag;
use crate::correlator::StreamingCorrelator;
use crate::correlator::{CorrelationOutput, CorrelatorConfig};
use crate::error::TraceError;
use crate::fasthash::{FxBuildHasher, FxHashMap};
use crate::filter::FilterSet;
use crate::intern::Interner;
use crate::metrics::CorrelatorMetrics;
use crate::raw::{parse_log_iter, RangeDedup, RawRecord, RawRecordRef};

/// Activities per channel message (amortizes channel synchronization).
const BATCH_RECORDS: usize = 4_096;

/// Bounded channel capacity, in batches, per shard (back-pressure: the
/// reader blocks instead of buffering unboundedly ahead of a slow
/// worker).
const CHANNEL_BATCHES: usize = 8;

/// Upper bound for `shards = 0` (auto): beyond this the reader is the
/// bottleneck and more workers only cost memory.
const AUTO_SHARD_CAP: usize = 16;

/// Hard cap on explicit shard counts: each shard is an OS thread plus
/// a full correlator, and the single reader cannot feed more than this
/// anyway. Requests beyond it are a configuration error, not a spawn
/// storm.
pub const MAX_SHARDS: usize = 256;

/// How many reader-side noise victims are kept for diagnostics.
const NOISE_SAMPLE_CAP: usize = 32;

/// Google's jump consistent hash: maps `key` to a bucket in `[0, n)`
/// such that growing `n` only moves ~`1/n` of the keys — resharding a
/// live deployment migrates the minimum number of sessions.
fn jump_hash(mut key: u64, n: u32) -> u32 {
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(n) {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = (((b.wrapping_add(1)) as f64) * ((1u64 << 31) as f64)
            / (((key >> 33).wrapping_add(1)) as f64)) as i64;
    }
    b as u32
}

/// An undirected connection key: both directions of a TCP connection
/// map to the same entry, so chatter with no session affinity routes
/// both its directions to one shard.
type ConnKey = (EndpointV4, EndpointV4);

fn conn_key(src: EndpointV4, dst: EndpointV4) -> ConnKey {
    if (src.ip, src.port) <= (dst.ip, dst.port) {
        (src, dst)
    } else {
        (dst, src)
    }
}

/// One pending send's byte claim on a directed channel.
#[derive(Debug, Clone, Copy)]
struct ClaimEntry {
    /// Shard of the session that produced the send.
    shard: u32,
    /// True when the send producing this claim was an orphan-chain
    /// record dropped reader-side (never shipped to its shard). The
    /// claim still occupies its FIFO slot so byte accounting stays
    /// identical; a receive consuming only dropped claims is dropped
    /// too.
    dropped: bool,
    /// Unreceived bytes remaining of this claim.
    bytes: u64,
    /// `TCP_TRACE v2`: the claim's remaining stream byte range
    /// `[start, end)`. When both sides of a channel carry `seq=`
    /// offsets, receives match claims by range overlap instead of
    /// blind FIFO byte counting — robust to records lost by a
    /// partial-capture sniffer, which would otherwise permanently
    /// shift the FIFO.
    range: Option<(u64, u64)>,
}

/// Per-directed-channel claim state — the router's miniature `mmap`,
/// fused with the staged-send census so the hot path touches one map.
#[derive(Debug, Default)]
struct Claims {
    /// FIFO of per-send claims; TCP delivers bytes in order per
    /// direction, so a RECEIVE belongs to the shard of the front claim
    /// (the same soundness argument as the engine's size-based
    /// SEND/RECEIVE matching).
    queue: VecDeque<ClaimEntry>,
    /// SEND activities staged but not yet routed: the future claims a
    /// deferring RECEIVE may wait for.
    staged: u32,
    /// Shard of the most recent send on this channel, kept after the
    /// queue drains so byte-count drift (coalesced or forced receives)
    /// still routes follow-up records to the shard holding the
    /// channel's engine state. `None` until a send is first routed.
    last: Option<u32>,
    /// Highest stream offset any **staged or routed** send has ever
    /// reached. Send offsets on a channel are monotone, so every
    /// future send starts at or above this — which lets a receive
    /// prove that a coverage deficit below it is **permanent** (the
    /// send records were lost to partial capture) and resolve
    /// immediately instead of deferring into a lane-graph deadlock.
    max_seq_end: u64,
    /// Router record count when the channel was last touched (staged
    /// send, routed send, or decided receive) — the idle-GC clock.
    last_touch: u64,
}

/// Which lanes stage a given endpoint role (sender / receiver) of a
/// directed channel. Almost every channel has exactly one entity per
/// role (`order: None`, the fast path); connection pooling breaks that
/// — many httpd processes send on one pooled channel, and consecutive
/// requests are read by different connector threads. Claims must then
/// be produced and consumed in the endpoint host's local-time order
/// (TCP's byte order), not in lane-drain order, or one session's bytes
/// would be claimed for another's shard.
#[derive(Debug)]
struct RoleOrder {
    /// The single lane seen staging this role so far (exclusive mode).
    lane: usize,
    /// Shared mode: multiset of staged `(local time, lane)` activities
    /// of this role; only the minimum may produce/consume claims.
    order: Option<BTreeMap<(crate::activity::LocalTime, usize), u32>>,
}

/// One message of a shard's ordered input stream. Routing is not just
/// partitioning: the batch engine's context map follows each execution
/// entity *across* sessions, so when an entity's records migrate to a
/// different shard the old shard must drop its now-stale binding —
/// otherwise a later record landing there by hash could resolve (and
/// merge into) a context chain the batch engine already moved past.
#[derive(Debug, Clone)]
pub(crate) enum ShardMsg {
    /// A routed activity.
    Act(Activity),
    /// Drop the engine's `cmap` binding for this entity: its next
    /// record went to a different shard (or into a reader-side-dropped
    /// orphan chain), exactly when the batch engine would re-bind.
    ForgetCtx(ContextId),
}

/// Routing decision for one RECEIVE.
enum RecvDecision {
    /// Route to this shard. `binds` mirrors whether the engine will
    /// re-bind the receiving entity's context to a new vertex: a
    /// receive that only trims the front claim (a partial segment of a
    /// larger message) merges tags into the existing vertex and leaves
    /// the context map untouched.
    Shard { shard: u32, binds: bool },
    /// Every claim this receive consumed was a dropped orphan-chain
    /// send: the batch engine would merge this receive into the same
    /// never-emitted orphan chain, so it is dropped reader-side too.
    /// The shard is kept for the lane's affinity bookkeeping.
    Orphan(u32),
    /// Wait for the claiming send to be routed.
    Defer,
    /// No traced send on this channel exists anywhere: `is_noise`.
    Noise,
}

/// One execution entity's staged (not yet routed) activities, in the
/// thread's own serial order.
#[derive(Debug)]
struct CtxLane {
    buf: VecDeque<Activity>,
    /// Shard of the session this entity is currently working for.
    affinity: Option<u32>,
    /// Shard whose engine holds this entity's live `cmap` binding (its
    /// last *dispatched, binding* record). `None` when no engine holds
    /// one — fresh lane, or the entity's chain went into a reader-side
    /// dropped orphan chain. Differs from `affinity` exactly when the
    /// last record did not re-bind the context (partial receive, or a
    /// dropped record). Migrating the binding to another shard emits
    /// [`ShardMsg::ForgetCtx`] to the old one.
    bound: Option<u32>,
    /// This entity currently extends an orphan chain (its last routed
    /// record was dropped reader-side) — the reader's mirror of the
    /// engine's `cmap = Orphan` state. Cleared by any dispatched
    /// record (a BEGIN/END, or a receive consuming real claims).
    noise: bool,
    /// Key this lane is registered under in the runnable set (the head
    /// timestamp at enqueue time), `None` when not enqueued. Staging
    /// can insert a record *before* the current head, so the key must
    /// be re-derived whenever the head changes.
    qkey: Option<crate::activity::LocalTime>,
    /// Channel this lane is currently registered as a waiter on, so
    /// repeated wake→re-defer cycles do not grow the waiter lists.
    waiting_on: Option<crate::activity::Channel>,
}

/// Deterministic session router: a lightweight message-matching
/// pre-pass that assigns every activity to the shard owning its client
/// session, using only reader-side sequential state. It subsumes
/// candidate selection for the sharded pipeline — workers deliver its
/// output straight to their engines:
///
/// * A BEGIN/END names its session directly: the client endpoint at
///   the access point, consistent-hashed to a shard.
/// * A SEND inherits its thread's current session (claimed by the
///   BEGIN, or by the RECEIVE that handed the request to the thread)
///   and *claims* its channel's bytes for that shard.
/// * A RECEIVE resolves only when previously routed claims fully cover
///   it (Rule 1's byte-exactness), consuming them FIFO; otherwise it
///   **defers** — a per-channel census of staged sends distinguishes
///   "claim still coming" from genuine noise, which is discarded
///   reader-side exactly like the ranker's `is_noise`.
///
/// Staged activities queue per **execution entity** (context), not per
/// host: a thread's activities are causally serial, and threads depend
/// on each other only through send→receive edges, which real traffic
/// cannot make cyclic. Deferral therefore follows the causal DAG and —
/// unlike host-level FIFO — cannot deadlock or head-of-line block
/// independent threads; a deferred lane resumes when the claim it
/// waits for is routed. Assignments are a pure function of the
/// per-entity sequences and per-channel FIFOs, independent of
/// push/pump interleaving.
#[derive(Debug)]
struct SessionRouter {
    shards: u32,
    hasher: FxBuildHasher,
    lanes: Vec<CtxLane>,
    by_ctx: FxHashMap<crate::activity::ContextId, usize>,
    /// Lanes with potentially routable heads, a min-heap on `(head
    /// timestamp, lane)`. The pump always steps the lane whose head is
    /// globally earliest and routes **one** activity per step — the
    /// same global time order the batch ranker delivers in — so a
    /// thread's late same-thread SEND can never reach a worker engine
    /// before another lane's earlier RECEIVE/END seals the session
    /// (the bulk-mix seal-order divergence). Lane index breaks ties
    /// deterministically (lane creation order). Entries are
    /// invalidated lazily: a popped entry is live only if it matches
    /// the lane's current `qkey` — cheaper than keyed removal on the
    /// per-record hot path.
    runnable: std::collections::BinaryHeap<std::cmp::Reverse<(crate::activity::LocalTime, usize)>>,
    /// Channel → lanes whose head RECEIVE waits for a claim on it.
    waiters: FxHashMap<crate::activity::Channel, Vec<usize>>,
    /// Directed channel → claim FIFO + staged-send census.
    claims: FxHashMap<crate::activity::Channel, Claims>,
    /// `(channel, is_send)` → which lanes stage that endpoint role
    /// (shared-channel time ordering; see [`RoleOrder`]).
    roles: FxHashMap<(crate::activity::Channel, bool), RoleOrder>,
    /// True once any channel role went shared: until then `in_turn` /
    /// `untrack` skip their map lookups entirely (the common,
    /// unpooled case pays one stage-time lookup per send/receive).
    any_shared: bool,
    /// Staged activity count across lanes.
    staged: usize,
    /// Channel-idle GC horizon in staged records (`None` = never).
    idle_horizon: Option<u64>,
    /// Bounded-age settle rule: force-settle a lane's undecidable head
    /// receive once this many records buffer behind it (`None` = only
    /// at end of input).
    settle_depth: Option<u64>,
    /// Heads settled early by the bounded-age rule (diagnostics).
    aged_settles: u64,
    /// Total records ever staged — the idle-GC clock.
    records_staged: u64,
    /// Record count at the last idle sweep.
    last_sweep: u64,
    /// Idle channels evicted by the GC (diagnostics).
    idle_evicted: u64,
    /// Receives force-routed by the drift fallback (diagnostics; zero
    /// on causally consistent input).
    forced_routes: u64,
    /// Receives discarded reader-side because their channel never
    /// carries a traced send — precisely the ranker's `is_noise`
    /// condition (no match in any `mmap`, no match in any buffer), so
    /// they are dropped before ever being ranked.
    noise_discards: u64,
    /// First few noise victims, for diagnostics.
    noise_samples: Vec<Activity>,
    /// Ship orphan-chain records to workers anyway (escape hatch; the
    /// workers' engines absorb them into never-emitted orphan chains,
    /// exactly as the batch engine does).
    orphan_parity: bool,
    /// Orphan-chain records dropped reader-side (never dispatched).
    orphan_dropped: u64,
    /// Channels evicted by the idle GC since the owner last drained
    /// this list; the owner evicts the same channels from its
    /// [`crate::raw::RangeDedup`] so dedup coverage is shed at the
    /// same horizon as router claims.
    evicted: Vec<crate::activity::Channel>,
}

impl SessionRouter {
    fn new(
        shards: u32,
        idle_horizon: Option<u64>,
        settle_depth: Option<u64>,
        orphan_parity: bool,
    ) -> Self {
        SessionRouter {
            shards,
            hasher: FxBuildHasher::default(),
            lanes: Vec::new(),
            by_ctx: FxHashMap::default(),
            runnable: std::collections::BinaryHeap::new(),
            waiters: FxHashMap::default(),
            claims: FxHashMap::default(),
            roles: FxHashMap::default(),
            any_shared: false,
            staged: 0,
            idle_horizon,
            settle_depth,
            aged_settles: 0,
            records_staged: 0,
            last_sweep: 0,
            idle_evicted: 0,
            forced_routes: 0,
            noise_discards: 0,
            noise_samples: Vec::new(),
            orphan_parity,
            orphan_dropped: 0,
            evicted: Vec::new(),
        }
    }

    /// Takes the channels evicted by the idle GC since the last call,
    /// so the owner can shed matching [`crate::raw::RangeDedup`] state.
    fn take_evicted(&mut self) -> Vec<crate::activity::Channel> {
        std::mem::take(&mut self.evicted)
    }

    fn hash_to_shard<T: std::hash::Hash>(&self, key: &T) -> u32 {
        use std::hash::BuildHasher;
        jump_hash(self.hasher.hash_one(key), self.shards)
    }

    /// Approximate resident bytes of the router's staging state: the
    /// deferred/noise lanes (activities waiting for their claims or for
    /// end-of-input noise settlement), the per-channel claim FIFOs and
    /// waiter lists, and the noise samples. This is the state the
    /// ROADMAP's "sharded streaming endurance" item bounds; an endless
    /// noisy stream grows exactly these numbers.
    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let lanes: usize = self
            .lanes
            .iter()
            .map(|l| size_of::<CtxLane>() + l.buf.len() * size_of::<Activity>())
            .sum();
        let claims: usize = self
            .claims
            .values()
            .map(|c| {
                size_of::<crate::activity::Channel>()
                    + size_of::<Claims>()
                    + c.queue.len() * size_of::<ClaimEntry>()
            })
            .sum();
        let waiters: usize = self
            .waiters
            .values()
            .map(|w| size_of::<crate::activity::Channel>() + w.len() * size_of::<usize>())
            .sum();
        let roles: usize = self
            .roles
            .values()
            .map(|t| {
                size_of::<(crate::activity::Channel, bool)>()
                    + size_of::<RoleOrder>()
                    + t.order.as_ref().map_or(0, |m| {
                        m.len() * size_of::<((crate::activity::LocalTime, usize), u32)>()
                    })
            })
            .sum();
        lanes
            + claims
            + waiters
            + roles
            + self.by_ctx.len() * size_of::<(crate::activity::ContextId, usize)>()
            + self.noise_samples.len() * size_of::<Activity>()
    }

    /// Stages one classified, filter-admitted activity on its entity's
    /// lane. Small local-time inversions (e.g. concatenated per-CPU
    /// buffers) are tolerated by insertion — O(1) for sorted input —
    /// so callers can stage records in plain arrival order with no
    /// grouping or sorting pass.
    fn stage(&mut self, a: Activity) {
        self.records_staged += 1;
        if a.ty == ActivityType::Send {
            let now = self.records_staged;
            let c = self.claims.entry(a.channel).or_default();
            c.staged += 1;
            if let Some(seq) = a.seq {
                c.max_seq_end = c.max_seq_end.max(seq + a.size.max(1));
            }
            c.last_touch = now;
        }
        if let Some(horizon) = self.idle_horizon {
            if self.records_staged - self.last_sweep >= horizon.max(1) {
                self.sweep_idle_channels(horizon);
            }
        }
        let lane = match self.by_ctx.get(&a.ctx) {
            Some(&i) => i,
            None => {
                let i = self.lanes.len();
                self.lanes.push(CtxLane {
                    buf: VecDeque::new(),
                    affinity: None,
                    bound: None,
                    noise: false,
                    qkey: None,
                    waiting_on: None,
                });
                self.by_ctx.insert(a.ctx.clone(), i);
                i
            }
        };
        if matches!(a.ty, ActivityType::Send | ActivityType::Receive) {
            self.track_stage(lane, &a);
        }
        let buf = &mut self.lanes[lane].buf;
        match buf.back() {
            Some(last) if last.ts > a.ts => {
                let pos = buf
                    .iter()
                    .rposition(|x| x.ts <= a.ts)
                    .map(|p| p + 1)
                    .unwrap_or(0);
                buf.insert(pos, a);
            }
            _ => buf.push_back(a),
        }
        self.staged += 1;
        self.enqueue(lane);
    }

    /// (Re-)registers a lane in the runnable heap under its current
    /// head timestamp; deregisters it when the lane is empty.
    /// Idempotent, and free when the key is unchanged. A superseded
    /// heap entry is not removed here — the pump discards entries whose
    /// key no longer matches the lane's `qkey`.
    fn enqueue(&mut self, lane: usize) {
        let head_ts = self.lanes[lane].buf.front().map(|a| a.ts);
        match (self.lanes[lane].qkey, head_ts) {
            (Some(k), Some(ts)) if k == ts => {}
            (_, new) => {
                if let Some(ts) = new {
                    self.runnable.push(std::cmp::Reverse((ts, lane)));
                }
                self.lanes[lane].qkey = new;
            }
        }
    }

    /// Channel-idle GC (ROADMAP "sharded streaming endurance"): evicts
    /// per-channel `claims` and `roles` entries whose channel has been
    /// idle — nothing queued, nothing staged, nobody waiting — for more
    /// than `horizon` staged records. On an endless stream these maps
    /// otherwise grow one entry per channel for the stream's lifetime.
    /// Eviction only forgets the drained channel's `last`-shard drift
    /// fallback and its shared-role history; both rebuild on the next
    /// activity, so live traffic is never affected.
    fn sweep_idle_channels(&mut self, horizon: u64) {
        self.last_sweep = self.records_staged;
        let now = self.records_staged;
        let evict: Vec<crate::activity::Channel> = self
            .claims
            .iter()
            .filter(|(ch, c)| {
                c.queue.is_empty()
                    && c.staged == 0
                    && now.saturating_sub(c.last_touch) > horizon
                    && !self.waiters.contains_key(*ch)
                    && [true, false].iter().all(|&s| {
                        self.roles
                            .get(&(**ch, s))
                            .is_none_or(|t| t.order.as_ref().is_none_or(|m| m.is_empty()))
                    })
            })
            .map(|(ch, _)| *ch)
            .collect();
        for ch in evict {
            self.claims.remove(&ch);
            self.roles.remove(&(ch, true));
            self.roles.remove(&(ch, false));
            self.idle_evicted += 1;
            self.evicted.push(ch);
        }
    }

    fn wake(&mut self, channel: crate::activity::Channel) {
        if self.waiters.is_empty() {
            return;
        }
        if let Some(ws) = self.waiters.remove(&channel) {
            for lane in ws {
                // The registration is consumed; a re-defer must
                // re-register.
                self.lanes[lane].waiting_on = None;
                self.enqueue(lane);
            }
        }
    }

    /// Records a staged SEND/RECEIVE in its channel role's order
    /// tracker; the first time a second lane appears in one role, the
    /// role upgrades to shared mode and the exclusive lane's staged
    /// activities are indexed.
    fn track_stage(&mut self, lane: usize, a: &Activity) {
        let key = (a.channel, a.ty == ActivityType::Send);
        match self.roles.get_mut(&key) {
            None => {
                self.roles.insert(key, RoleOrder { lane, order: None });
            }
            Some(t) => {
                if t.order.is_none() {
                    if t.lane == lane {
                        return;
                    }
                    let mut m = BTreeMap::new();
                    for act in &self.lanes[t.lane].buf {
                        if act.channel == a.channel && act.ty == a.ty {
                            *m.entry((act.ts, t.lane)).or_insert(0u32) += 1;
                        }
                    }
                    t.order = Some(m);
                    self.any_shared = true;
                }
                *t.order
                    .as_mut()
                    .expect("just upgraded")
                    .entry((a.ts, lane))
                    .or_insert(0) += 1;
            }
        }
    }

    /// True when `a` is allowed to produce/consume claims now: on a
    /// shared channel role, only the staged activity that is earliest
    /// in the endpoint host's local time may act (TCP handed the bytes
    /// over in that order).
    fn in_turn(&self, lane: usize, a: &Activity) -> bool {
        if !self.any_shared {
            return true;
        }
        match self.roles.get(&(a.channel, a.ty == ActivityType::Send)) {
            Some(RoleOrder { order: Some(m), .. }) => {
                m.first_key_value().is_none_or(|(&k, _)| k == (a.ts, lane))
            }
            _ => true,
        }
    }

    /// Removes a consumed (routed, discarded or force-routed)
    /// SEND/RECEIVE from its role's order tracker.
    fn untrack(&mut self, lane: usize, a: &Activity) {
        if !self.any_shared || !matches!(a.ty, ActivityType::Send | ActivityType::Receive) {
            return;
        }
        if let Some(RoleOrder { order: Some(m), .. }) =
            self.roles.get_mut(&(a.channel, a.ty == ActivityType::Send))
        {
            if let Some(c) = m.get_mut(&(a.ts, lane)) {
                *c -= 1;
                if *c == 0 {
                    m.remove(&(a.ts, lane));
                }
            }
        }
    }

    /// Routes a SEND: session from the thread's affinity (noise chains
    /// fall back to their channel's shard or hash), then claims the
    /// channel's bytes for that shard. The second return is true when
    /// the send opens or extends an orphan chain and was marked
    /// dropped: the batch engine would bury it in a never-emitted
    /// orphan chain, so (unless [`SessionRouter::orphan_parity`] asks
    /// for engine-level parity) there is no point shipping it to a
    /// worker. Claim bookkeeping is identical either way — dropped
    /// claims still occupy their FIFO slot so routing decisions do not
    /// shift.
    fn route_send(&mut self, lane: usize, a: &Activity) -> (u32, bool) {
        let s = match self.lanes[lane].affinity {
            Some(s) => s,
            // A send by an unclaimed thread opens a noise chain (or
            // continues one on its connection).
            None => match self.claims.get(&a.channel).and_then(|c| c.last) {
                Some(s) => s,
                None => self.hash_to_shard(&conn_key(a.channel.src, a.channel.dst)),
            },
        };
        let dropped =
            !self.orphan_parity && (self.lanes[lane].noise || self.lanes[lane].affinity.is_none());
        let now = self.records_staged;
        let c = self.claims.entry(a.channel).or_default();
        c.staged -= 1;
        let bytes = a.size.max(1);
        c.queue.push_back(ClaimEntry {
            shard: s,
            dropped,
            bytes,
            range: a.seq.map(|s0| (s0, s0 + bytes)),
        });
        c.last = Some(s);
        c.last_touch = now;
        self.wake(a.channel);
        (s, dropped)
    }

    /// Decides a RECEIVE against its channel's claim FIFO. Until input
    /// ends, it resolves **only** when the claimed bytes cover it —
    /// Rule 1's byte-exactness, mirrored: the remaining segments of
    /// its message may simply not have arrived yet, and consuming a
    /// half-present message would permanently shift the FIFO and hand
    /// a later session's bytes to the wrong shard. With `final_input`,
    /// partial coverage is consumed as-is (genuinely lost segments; the
    /// engine counts the deformation the same way in every mode),
    /// drained channels fall back to their last shard, and claimless
    /// channels are noise.
    ///
    /// When the receive and the front claim both carry `TCP_TRACE v2`
    /// `seq=` offsets, matching is by **stream-range overlap** instead
    /// of byte counting: claims entirely below the receive's range are
    /// retired (their receive records were lost to partial capture),
    /// uncovered head bytes (lost send records) are forgiven, and
    /// trims are offset-exact — capture gaps can never shift the FIFO.
    fn decide_receive(&mut self, a: &Activity, final_input: bool) -> RecvDecision {
        let now = self.records_staged;
        let Some(c) = self.claims.get_mut(&a.channel) else {
            return if final_input {
                RecvDecision::Noise
            } else {
                RecvDecision::Defer
            };
        };
        c.last_touch = now;
        if let Some(r0) = a.seq {
            let r1 = r0 + a.size.max(1);
            // Retire claims whose range lies entirely below the
            // receive's: their matching receive records were lost by
            // the capture; receive offsets on a channel are monotone,
            // so those bytes can never be claimed again.
            while matches!(
                c.queue.front(),
                Some(e) if e.range.is_some_and(|(_, end)| end <= r0)
            ) {
                c.queue.pop_front();
            }
            if let Some(&ClaimEntry {
                shard,
                range: Some((fs, _)),
                ..
            }) = c.queue.front()
            {
                if fs < r1 {
                    // Overlap with the front claim: this receive
                    // belongs to the front claim's session. Bytes of
                    // [r0, fs) have no claim (their send records were
                    // lost) and never will — only the part from `fs`
                    // up must be covered before consuming.
                    let need_from = r0.max(fs);
                    let covered: u64 = c
                        .queue
                        .iter()
                        .map_while(|e| e.range)
                        .map(|(s, en)| en.min(r1).saturating_sub(s.max(need_from)))
                        .sum();
                    if covered < r1 - need_from
                        && r1 > c.max_seq_end
                        && (!final_input || c.staged > 0)
                    {
                        // The tail segments' sends are still in flight
                        // (or staged on another lane): consuming now
                        // would shift later sessions' bytes. When
                        // `r1 <= max_seq_end` the deficit is instead
                        // *permanent* — send offsets are monotone, so
                        // no future claim can land below `r1`; the
                        // missing send records were lost to partial
                        // capture and waiting would only deadlock the
                        // lane graph — consume what exists now.
                        return RecvDecision::Defer;
                    }
                    // Consume [r0, r1) by offset: pop claims ending
                    // within it, trim the one that extends past it.
                    let (mut any, mut real, mut popped) = (false, false, false);
                    while let Some(e) = c.queue.front_mut() {
                        let Some((s, en)) = e.range else { break };
                        if s >= r1 {
                            break;
                        }
                        any = true;
                        real |= !e.dropped;
                        if en <= r1 {
                            c.queue.pop_front();
                            popped = true;
                        } else {
                            e.bytes = e.bytes.saturating_sub(r1 - s);
                            e.range = Some((r1, en));
                            break;
                        }
                    }
                    return if any && !real {
                        RecvDecision::Orphan(shard)
                    } else {
                        RecvDecision::Shard {
                            shard,
                            binds: popped,
                        }
                    };
                }
                // The front claim starts at or beyond the receive's
                // end: every send record of this receive's bytes was
                // lost, and stream offsets are monotone, so no future
                // claim can land below it either. The batch ranker
                // finds no match in any mmap or buffer and discards
                // such a receive as noise; routing it instead would
                // poison the worker engine's thread state and absorb
                // the thread's later records into an orphan chain.
                let _ = shard;
                return RecvDecision::Noise;
            }
            // No usable range on the front claim (empty queue, or a
            // mixed v1 sender): fall through to byte counting.
        }
        let Some(&ClaimEntry {
            shard: front_shard, ..
        }) = c.queue.front()
        else {
            return if final_input && c.staged == 0 {
                // Drained by byte drift; stay with the channel's shard
                // (an entry with nothing staged has routed ≥ 1 send).
                // The engine finds no pending there, so no re-binding.
                RecvDecision::Shard {
                    shard: c.last.unwrap_or(0),
                    binds: false,
                }
            } else {
                RecvDecision::Defer
            };
        };
        if a.size > c.queue.iter().map(|f| f.bytes).sum::<u64>() && (!final_input || c.staged > 0) {
            // Partial coverage: the remaining segments either have not
            // arrived yet or are staged on another lane and will route
            // (waking this one). Consuming now would permanently shift
            // the FIFO. Only when input is over AND no send is staged
            // are the missing segments genuinely lost — then consume
            // what exists, like the engine's forced-delivery path.
            return RecvDecision::Defer;
        }
        let mut need = a.size;
        let (mut any, mut real, mut popped) = (false, false, false);
        while need > 0 {
            match c.queue.front_mut() {
                Some(f) if f.bytes > need => {
                    any = true;
                    real |= !f.dropped;
                    f.bytes -= need;
                    if let Some((s, en)) = f.range {
                        f.range = Some(((s + need).min(en), en));
                    }
                    need = 0;
                }
                Some(f) => {
                    any = true;
                    real |= !f.dropped;
                    need -= f.bytes;
                    c.queue.pop_front();
                    popped = true;
                }
                None => break,
            }
        }
        if any && !real {
            RecvDecision::Orphan(front_shard)
        } else {
            RecvDecision::Shard {
                shard: front_shard,
                binds: popped,
            }
        }
    }

    /// Decides a RECEIVE, applying the bounded-age settle rule on
    /// deferral: once [`SessionRouter::settle_depth`] records have
    /// buffered behind an undecidable head (the lane was popped, so
    /// `buf` holds exactly the records behind it), the head is
    /// re-decided under end-of-input semantics — claimless channels
    /// discard as noise, drift leftovers route to their channel's
    /// shard, partial coverage is consumed as-is. A head whose claim is
    /// *staged on another lane* still defers (that lane is live and
    /// will wake this one), so the rule only fires where waiting could
    /// last forever: the send never existed or was lost by the capture.
    /// Like [`crate::correlator::CorrelatorConfig::max_seal_lag`], the
    /// exact firing point depends on push/pump interleaving; the
    /// conservative default keeps it out of reach of causally
    /// consistent captures, where deferrals resolve within the
    /// reordering skew.
    fn decide_with_settle(&mut self, lane: usize, a: &Activity, final_input: bool) -> RecvDecision {
        let d = self.decide_receive(a, final_input);
        if !matches!(d, RecvDecision::Defer) || final_input {
            return d;
        }
        let deep = self
            .settle_depth
            .is_some_and(|n| self.lanes[lane].buf.len() as u64 >= n);
        if !deep {
            return RecvDecision::Defer;
        }
        match self.decide_receive(a, true) {
            // The claim is staged on a live lane: progress is
            // guaranteed, parking stays bounded.
            RecvDecision::Defer => RecvDecision::Defer,
            settled => {
                self.aged_settles += 1;
                settled
            }
        }
    }

    /// Routes the lane's head activity — **one step** of the global
    /// time-ordered schedule. Returns `true` when the lane parked
    /// (deferred head or shared-channel turn waiting): a parked lane is
    /// re-enqueued by [`SessionRouter::wake`], not by the pump.
    fn step_lane(
        &mut self,
        lane: usize,
        final_input: bool,
        dispatch: &mut dyn FnMut(ShardMsg, u32) -> Result<(), TraceError>,
    ) -> Result<bool, TraceError> {
        let Some(a) = self.lanes[lane].buf.pop_front() else {
            return Ok(false);
        };
        // Shared-channel time ordering: out of several entities
        // staging the same channel role, only the earliest may
        // act; later ones park until the channel's turn passes to
        // them (consumptions wake the channel's waiters).
        if matches!(a.ty, ActivityType::Send | ActivityType::Receive) && !self.in_turn(lane, &a) {
            if self.lanes[lane].waiting_on != Some(a.channel) {
                self.waiters.entry(a.channel).or_default().push(lane);
                self.lanes[lane].waiting_on = Some(a.channel);
            }
            self.lanes[lane].buf.push_front(a);
            return Ok(true);
        }
        let (shard, binds) = match a.ty {
            // The session identity itself: the client endpoint at the
            // access point (BEGIN: src is the client).
            ActivityType::Begin => (self.hash_to_shard(&a.channel.src), true),
            // The engine resolves an END through the thread's context
            // chain (`cmap`), not the endpoint — so it must go wherever
            // this entity's live binding is. That is normally the
            // session's own shard (identical to hashing the client
            // endpoint in `dst`), but under partial capture a receive
            // can byte-match another session's claim and re-bind the
            // thread there, exactly as the batch engine's cmap would.
            ActivityType::End => {
                let l = &self.lanes[lane];
                (
                    l.bound
                        .or(l.affinity)
                        .unwrap_or_else(|| self.hash_to_shard(&a.channel.dst)),
                    true,
                )
            }
            ActivityType::Send => {
                self.untrack(lane, &a);
                let (s, dropped) = self.route_send(lane, &a);
                if dropped {
                    // Orphan-chain send: claim recorded, record
                    // dropped. The lane keeps the chain's shard as
                    // affinity so follow-up records stay coherent,
                    // and is marked noise so they drop too. The batch
                    // engine re-binds the context into the orphan
                    // chain, so any shard still holding a live binding
                    // for this entity must drop it.
                    self.staged -= 1;
                    self.orphan_dropped += 1;
                    self.unbind(lane, &a.ctx, dispatch)?;
                    self.lanes[lane].affinity = Some(s);
                    self.lanes[lane].noise = true;
                    return Ok(false);
                }
                (s, true)
            }
            ActivityType::Receive => match self.decide_with_settle(lane, &a, final_input) {
                RecvDecision::Shard { shard, binds } => {
                    self.untrack(lane, &a);
                    self.wake(a.channel);
                    (shard, binds)
                }
                RecvDecision::Orphan(s) => {
                    // Every consumed claim was a dropped orphan
                    // send: the batch engine would merge this
                    // receive into the same never-emitted chain
                    // (re-binding the context to it).
                    self.untrack(lane, &a);
                    self.wake(a.channel);
                    self.staged -= 1;
                    self.orphan_dropped += 1;
                    self.unbind(lane, &a.ctx, dispatch)?;
                    self.lanes[lane].affinity = Some(s);
                    self.lanes[lane].noise = true;
                    return Ok(false);
                }
                RecvDecision::Defer => {
                    // The claiming send is staged (or may still
                    // arrive): wait for it. Register once per
                    // channel — wake→re-defer cycles must not grow
                    // the waiter list.
                    if self.lanes[lane].waiting_on != Some(a.channel) {
                        self.waiters.entry(a.channel).or_default().push(lane);
                        self.lanes[lane].waiting_on = Some(a.channel);
                    }
                    self.lanes[lane].buf.push_front(a);
                    return Ok(true);
                }
                RecvDecision::Noise => {
                    // Discarded before dispatch; the entity's
                    // session affinity stays untouched, like the
                    // engine's `cmap` would be.
                    self.untrack(lane, &a);
                    self.wake(a.channel);
                    self.staged -= 1;
                    self.noise_discards += 1;
                    if self.noise_samples.len() < NOISE_SAMPLE_CAP {
                        self.noise_samples.push(a);
                    }
                    return Ok(false);
                }
            },
        };
        self.staged -= 1;
        self.lanes[lane].affinity = Some(shard);
        self.lanes[lane].noise = false;
        if binds {
            self.rebind(lane, shard, &a.ctx, dispatch)?;
        }
        dispatch(ShardMsg::Act(a), shard)?;
        Ok(false)
    }

    /// Moves the lane's live context binding to `shard`, telling the
    /// shard that held it before (if any, and different) to forget it —
    /// the mirror of the batch engine overwriting the entity's `cmap`
    /// entry.
    fn rebind(
        &mut self,
        lane: usize,
        shard: u32,
        ctx: &ContextId,
        dispatch: &mut dyn FnMut(ShardMsg, u32) -> Result<(), TraceError>,
    ) -> Result<(), TraceError> {
        if let Some(old) = self.lanes[lane].bound {
            if old != shard {
                dispatch(ShardMsg::ForgetCtx(ctx.clone()), old)?;
            }
        }
        self.lanes[lane].bound = Some(shard);
        Ok(())
    }

    /// Drops the lane's live context binding entirely: the entity's
    /// chain continued into a reader-side-dropped orphan chain, which
    /// the batch engine re-binds `cmap` to — so no shard may keep a
    /// resolvable binding.
    fn unbind(
        &mut self,
        lane: usize,
        ctx: &ContextId,
        dispatch: &mut dyn FnMut(ShardMsg, u32) -> Result<(), TraceError>,
    ) -> Result<(), TraceError> {
        if let Some(old) = self.lanes[lane].bound.take() {
            dispatch(ShardMsg::ForgetCtx(ctx.clone()), old)?;
        }
        Ok(())
    }

    /// Routes every currently routable staged activity, calling
    /// `dispatch` for each `(activity, shard)` in a deterministic
    /// **global time order**: each iteration steps the runnable lane
    /// whose head has the earliest local timestamp (ties by lane
    /// creation order) and routes exactly one activity — the order the
    /// batch ranker delivers in, so a session's records reach their
    /// worker engine in the same relative order batch does and seal
    /// order cannot diverge. With `final_input`, remaining deferred
    /// receives are settled (noise discarded; byte-drift leftovers
    /// routed to their channel's shard), so the staging area fully
    /// drains.
    fn pump(
        &mut self,
        final_input: bool,
        dispatch: &mut dyn FnMut(ShardMsg, u32) -> Result<(), TraceError>,
    ) -> Result<(), TraceError> {
        if final_input {
            // Lanes that deferred mid-stream are waiting on claims that
            // may never come; with input closed they must all re-decide
            // under final semantics (noise discard, drift fallback).
            for lane in 0..self.lanes.len() {
                if !self.lanes[lane].buf.is_empty() {
                    self.enqueue(lane);
                }
            }
        }
        loop {
            while let Some(std::cmp::Reverse((ts, lane))) = self.runnable.pop() {
                // Lazy invalidation: the lane's head moved (or the lane
                // parked) since this entry was pushed.
                if self.lanes[lane].qkey != Some(ts) {
                    continue;
                }
                self.lanes[lane].qkey = None;
                // Step this lane for as long as it holds the global
                // minimum: the common case is a run of consecutive
                // records on one entity, which costs no heap traffic
                // at all. A stale peeked entry can only yield early —
                // it is discarded on its own pop and the lane resumes.
                loop {
                    if self.step_lane(lane, final_input, dispatch)? {
                        break; // parked; wake() re-enqueues
                    }
                    let Some(head) = self.lanes[lane].buf.front().map(|a| a.ts) else {
                        break; // drained
                    };
                    if let Some(&std::cmp::Reverse(next)) = self.runnable.peek() {
                        if next < (head, lane) {
                            self.runnable.push(std::cmp::Reverse((head, lane)));
                            self.lanes[lane].qkey = Some(head);
                            break; // another lane is globally earlier
                        }
                    }
                }
            }
            if !final_input || self.staged == 0 {
                return Ok(());
            }
            // Input is complete yet a lane still waits: byte drift or
            // capture gaps detached a receive from its claim. Force the
            // stuck head with the earliest local timestamp (ties by
            // lane creation order) onto its channel's shard and resume:
            // that is the order the batch ranker delivers in, so gap
            // cascades resolve identically — each forced record routes
            // after the records that precede it in batch and before the
            // ones that follow, landing on the shard whose engine holds
            // the matching channel state.
            let Some(lane) = (0..self.lanes.len())
                .filter(|&l| !self.lanes[l].buf.is_empty())
                .min_by_key(|&l| (self.lanes[l].buf[0].ts, l))
            else {
                return Ok(());
            };
            let a = self.lanes[lane].buf.pop_front().expect("nonempty");
            self.staged -= 1;
            self.forced_routes += 1;
            self.untrack(lane, &a);
            let shard = match a.ty {
                ActivityType::Send => {
                    let (s, dropped) = self.route_send(lane, &a);
                    if dropped {
                        self.orphan_dropped += 1;
                        self.unbind(lane, &a.ctx, dispatch)?;
                        self.lanes[lane].affinity = Some(s);
                        self.lanes[lane].noise = true;
                        self.enqueue(lane);
                        continue;
                    }
                    s
                }
                _ => match self.claims.get(&a.channel).and_then(|c| c.last) {
                    Some(s) => s,
                    None => self.hash_to_shard(&conn_key(a.channel.src, a.channel.dst)),
                },
            };
            self.wake(a.channel);
            self.lanes[lane].affinity = Some(shard);
            self.lanes[lane].noise = false;
            self.rebind(lane, shard, &a.ctx, dispatch)?;
            dispatch(ShardMsg::Act(a), shard)?;
            self.enqueue(lane);
        }
    }
}

/// The shared reader-side front-end of the sharded and distributed
/// pipelines: dedup → classify → filter → route through the one
/// sequential [`SessionRouter`], plus the canonical cluster merge.
/// Everything the correlation algorithm needs exactly **once** per
/// cluster lives here, regardless of whether the shards behind it are
/// worker threads ([`ShardedCorrelator`]) or router processes
/// ([`crate::dist`]): the routing/dispatch sequence — and therefore the
/// merged output — is a pure function of the input, not of the
/// execution topology.
#[derive(Debug)]
pub(crate) struct ReaderCore {
    classifier: Classifier,
    filters: FilterSet,
    interner: Interner,
    /// Reader-side duplicate-range elimination (v2 `seq=` arithmetic,
    /// v1 `retrans` marker fallback) — runs before classification.
    range_dedup: RangeDedup,
    router: SessionRouter,
    records_in: u64,
    filtered_out: u64,
    retrans_dropped: u64,
}

impl ReaderCore {
    /// Builds the front-end routing over `shards` downstream workers.
    /// The config must already be validated.
    pub(crate) fn new(config: &CorrelatorConfig, shards: u32) -> Self {
        ReaderCore {
            classifier: Classifier::new(config.access.clone()),
            filters: config.filters.clone(),
            interner: Interner::new(),
            range_dedup: RangeDedup::new(),
            router: SessionRouter::new(
                shards,
                config.channel_idle_horizon,
                config.lane_settle_depth,
                config.orphan_parity,
            ),
            records_in: 0,
            filtered_out: 0,
            retrans_dropped: 0,
        }
    }

    /// Classifies, filters and stages one record without routing yet.
    pub(crate) fn ingest(&mut self, mut rec: RawRecord) {
        self.records_in += 1;
        match self.range_dedup.decide_owned(&rec) {
            crate::raw::IngestDecision::Drop => {
                self.retrans_dropped += 1;
                return;
            }
            crate::raw::IngestDecision::Admit(size) => rec.size = size,
        }
        let act = self.classifier.classify(&rec);
        if !self.filters.admits(&act) {
            self.filtered_out += 1;
            return;
        }
        self.router.stage(act);
        self.evict_dedup();
    }

    /// Zero-copy counterpart of [`Self::ingest`]: filters the borrowed
    /// record before any allocation, then interns and stages it.
    pub(crate) fn stage_ref(&mut self, r: &RawRecordRef<'_>) {
        self.records_in += 1;
        let mut r = *r;
        match self.range_dedup.decide(&r) {
            crate::raw::IngestDecision::Drop => {
                self.retrans_dropped += 1;
                return;
            }
            crate::raw::IngestDecision::Admit(size) => r.size = size,
        }
        if !self.filters.admits_raw(&r) {
            self.filtered_out += 1;
            return;
        }
        let act = self.classifier.classify_ref(&r, &mut self.interner);
        self.router.stage(act);
        self.evict_dedup();
    }

    /// Sheds [`RangeDedup`] coverage for channels the router's idle GC
    /// just evicted, so dedup state obeys the same horizon as router
    /// claims instead of growing for the stream's lifetime.
    fn evict_dedup(&mut self) {
        if !self.router.evicted.is_empty() {
            for ch in self.router.take_evicted() {
                self.range_dedup.evict_channel(ch);
            }
        }
    }

    /// Routes everything currently routable through `dispatch`.
    /// `final_input` additionally breaks stuck states so the staging
    /// area fully drains.
    pub(crate) fn pump(
        &mut self,
        final_input: bool,
        dispatch: &mut dyn FnMut(ShardMsg, u32) -> Result<(), TraceError>,
    ) -> Result<(), TraceError> {
        self.router.pump(final_input, dispatch)
    }

    /// Approximate resident bytes of the reader-side routing state:
    /// deferred/noise lanes, per-channel claim FIFOs, waiter lists and
    /// dedup coverage.
    pub(crate) fn approx_bytes(&self) -> usize {
        self.router.approx_bytes() + self.range_dedup.approx_bytes()
    }

    /// Canonical deterministic merge: the union of all shards' CAGs,
    /// finished and unfinished alike, sorted by their root BEGIN
    /// (timestamp, context, channel) and renumbered sequentially — the
    /// same id a single-shard run assigns on single-frontend-host logs,
    /// where BEGIN delivery order is BEGIN timestamp order. `outputs`
    /// must arrive in global shard order so capped diagnostics (noise
    /// samples) truncate identically for every topology.
    pub(crate) fn merge(
        &mut self,
        outputs: Vec<CorrelationOutput>,
        started: Instant,
    ) -> CorrelationOutput {
        let mut all: Vec<Cag> = Vec::new();
        let mut metrics = CorrelatorMetrics {
            records_in: self.records_in,
            filtered_out: self.filtered_out,
            retrans_dropped: self.retrans_dropped,
            seq_dedup_ranges: self.range_dedup.seq_dedup_ranges,
            v2_records: self.range_dedup.v2_records,
            seq_gaps: self.range_dedup.seq_gaps,
            ..CorrelatorMetrics::default()
        };
        // Reader-side noise discards join the ranker count so the
        // merged total matches a single-shard run.
        metrics.ranker.noise_discards = self.router.noise_discards;
        metrics.ranker.aged_settles = self.router.aged_settles;
        metrics.orphan_dropped = self.router.orphan_dropped;
        let mut noise_samples = std::mem::take(&mut self.router.noise_samples);
        for mut out in outputs {
            all.append(&mut out.cags);
            all.append(&mut out.unfinished);
            // The reader already counted raw records and filter/retrans
            // drops; worker-side records_in would double-count the
            // survivors.
            out.metrics.records_in = 0;
            out.metrics.filtered_out = 0;
            out.metrics.retrans_dropped = 0;
            metrics.absorb(&out.metrics);
            noise_samples.append(&mut out.noise_samples);
            noise_samples.truncate(NOISE_SAMPLE_CAP);
        }
        all.sort_by(|a, b| {
            let key = |c: &Cag| {
                let r = &c.vertices[0];
                (r.ts, r.ctx.clone(), r.channel, r.size, c.vertices.len())
            };
            key(a).cmp(&key(b))
        });
        let mut cags = Vec::with_capacity(all.len());
        let mut unfinished = Vec::new();
        for (i, mut cag) in all.into_iter().enumerate() {
            cag.id = i as u64;
            if cag.finished {
                cags.push(cag);
            } else {
                unfinished.push(cag);
            }
        }
        metrics.wall = started.elapsed();
        CorrelationOutput {
            cags,
            unfinished,
            metrics,
            noise_samples,
        }
    }
}

/// Derives the per-worker correlator config for a cluster of `n`
/// workers: workers receive pre-classified, pre-filtered activities
/// (filters cleared), and a configured memory budget splits evenly so
/// the configured total still bounds resident correlation state.
pub(crate) fn worker_config(config: &CorrelatorConfig, n: usize) -> CorrelatorConfig {
    let mut wc = config.clone();
    wc.filters = FilterSet::new();
    if let Some(b) = wc.memory_budget {
        wc.memory_budget = Some((b / n).max(1));
    }
    wc
}

/// One shard worker's drain loop: correlate batches as they arrive,
/// stream sealed CAGs out, finish when the feeding side hangs up.
/// Shared by the in-process sharded pipeline and the distributed
/// router peers.
pub(crate) fn run_worker(
    mut sc: StreamingCorrelator,
    rx: Receiver<Vec<ShardMsg>>,
) -> Result<CorrelationOutput, TraceError> {
    let mut cags = Vec::new();
    for batch in rx {
        for msg in batch {
            match msg {
                ShardMsg::Act(a) => sc.push_activity(a)?,
                ShardMsg::ForgetCtx(ctx) => sc.forget_ctx(&ctx),
            }
        }
        cags.extend(sc.poll()?);
    }
    let mut out = sc.finish()?;
    cags.append(&mut out.cags);
    out.cags = cags;
    Ok(out)
}

/// The sharded parallel correlation pipeline — the engine behind
/// [`crate::pipeline::Mode::Sharded`]; callers reach it through
/// [`crate::pipeline::Pipeline`]. See the module docs for the
/// architecture and the output-order contract.
#[derive(Debug)]
pub(crate) struct ShardedCorrelator {
    core: ReaderCore,
    /// Per-shard batch under construction.
    pending: Vec<Vec<ShardMsg>>,
    txs: Vec<SyncSender<Vec<ShardMsg>>>,
    workers: Vec<JoinHandle<Result<CorrelationOutput, TraceError>>>,
    started: Instant,
    finished: bool,
}

impl ShardedCorrelator {
    /// Spawns `shards` correlation workers (`0` = auto from
    /// [`std::thread::available_parallelism`], capped at 16).
    ///
    /// A configured [`CorrelatorConfig::memory_budget`] is split evenly
    /// across the shards, so the configured total still bounds the
    /// pipeline's resident correlation state.
    ///
    /// # Errors
    ///
    /// Returns a configuration error when [`CorrelatorConfig::validate`]
    /// fails.
    pub fn new(config: CorrelatorConfig, shards: usize) -> Result<Self, TraceError> {
        config.validate()?;
        if shards > MAX_SHARDS {
            return Err(TraceError::config(format!(
                "shard count {shards} exceeds the maximum of {MAX_SHARDS}"
            )));
        }
        let n = match shards {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(AUTO_SHARD_CAP),
            n => n,
        };
        let core = ReaderCore::new(&config, n as u32);
        let shard_cfg = worker_config(&config, n);
        let mut txs = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            // Direct delivery: the router already performed candidate
            // selection (causal order, Rule-1 byte coverage, noise
            // removal), so workers run the engine without re-ranking.
            let sc = StreamingCorrelator::direct_for_activities(shard_cfg.clone())?;
            let (tx, rx): (SyncSender<Vec<ShardMsg>>, Receiver<Vec<ShardMsg>>) =
                sync_channel(CHANNEL_BATCHES);
            txs.push(tx);
            workers.push(std::thread::spawn(move || run_worker(sc, rx)));
        }
        Ok(ShardedCorrelator {
            core,
            pending: vec![Vec::with_capacity(BATCH_RECORDS); n],
            txs,
            workers,
            started: Instant::now(),
            finished: false,
        })
    }

    /// Number of shard workers.
    #[cfg(test)]
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// Approximate resident bytes of the reader-side routing state:
    /// deferred/noise lanes, per-channel claim FIFOs, waiter lists and
    /// undelivered shard batches. Worker-side correlation state is
    /// bounded separately (per-shard memory budget); this gauge covers
    /// the part only the router holds — the state that grows on an
    /// endless stream with heavy untraced-peer noise.
    pub fn approx_router_bytes(&self) -> usize {
        self.core.approx_bytes()
            + self
                .pending
                .iter()
                .map(|b| b.len() * std::mem::size_of::<ShardMsg>())
                .sum::<usize>()
    }

    fn guard(&self) -> Result<(), TraceError> {
        if self.finished {
            Err(TraceError::Finished)
        } else {
            Ok(())
        }
    }

    /// Stages one activity and routes everything currently routable to
    /// the workers. `final_input` additionally breaks stuck states so
    /// the staging area fully drains.
    fn pump_router(&mut self, final_input: bool) -> Result<(), TraceError> {
        let ShardedCorrelator {
            core, pending, txs, ..
        } = self;
        let mut dispatch = |m: ShardMsg, shard: u32| -> Result<(), TraceError> {
            let shard = shard as usize;
            pending[shard].push(m);
            if pending[shard].len() >= BATCH_RECORDS {
                let batch =
                    std::mem::replace(&mut pending[shard], Vec::with_capacity(BATCH_RECORDS));
                txs[shard]
                    .send(batch)
                    .map_err(|_| TraceError::config("shard worker terminated unexpectedly"))?;
            }
            Ok(())
        };
        core.pump(final_input, &mut dispatch)
    }

    fn flush_shard(&mut self, shard: usize) -> Result<(), TraceError> {
        if self.pending[shard].is_empty() {
            return Ok(());
        }
        let batch = std::mem::replace(&mut self.pending[shard], Vec::with_capacity(BATCH_RECORDS));
        self.txs[shard]
            .send(batch)
            .map_err(|_| TraceError::config("shard worker terminated unexpectedly"))
    }

    /// Classifies, filters and stages one record without routing yet.
    fn ingest(&mut self, rec: RawRecord) {
        self.core.ingest(rec);
    }

    /// Routes one owned raw record into the pipeline, streaming
    /// everything currently routable to the workers.
    ///
    /// Records of one host must arrive in local-timestamp order (small
    /// inversions are re-sorted, like the ranker's staging queues);
    /// cross-host interleaving is free. For wholly unordered input use
    /// [`Self::correlate`], which stages the complete set first.
    ///
    /// Mid-stream, a RECEIVE whose channel has no known send yet
    /// defers inside the router — including untraced-peer noise,
    /// because a not-yet-arrived send is indistinguishable from one
    /// that never existed. Such heads settle at [`Self::finish`], or
    /// earlier under the bounded-age settle rule
    /// ([`CorrelatorConfig::lane_settle_depth`], on by default), which
    /// keeps router state bounded on endless noisy streams.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] after [`Self::finish`], or a
    /// configuration error when a shard worker died.
    pub fn push(&mut self, rec: RawRecord) -> Result<(), TraceError> {
        self.guard()?;
        self.ingest(rec);
        self.pump_router(false)
    }

    /// Parses and routes one TCP_TRACE log line through the zero-copy
    /// ingest path: the record is filtered before any allocation and
    /// its strings are interned.
    ///
    /// # Errors
    ///
    /// Returns a parse error for a malformed line, and
    /// [`TraceError::Finished`] after [`Self::finish`].
    pub fn push_line(&mut self, line: &str) -> Result<(), TraceError> {
        self.guard()?;
        let r = RawRecordRef::parse_line(line)?;
        self.push_ref(&r)
    }

    /// Zero-copy counterpart of [`Self::ingest`]: filters the borrowed
    /// record before any allocation, then interns and stages it.
    pub(crate) fn stage_ref(&mut self, r: &RawRecordRef<'_>) {
        self.core.stage_ref(r);
    }

    fn push_ref(&mut self, r: &RawRecordRef<'_>) -> Result<(), TraceError> {
        self.stage_ref(r);
        self.pump_router(false)
    }

    /// Flushes all partial batches to the workers (they keep
    /// correlating; use before a lull to bound shard input latency).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] after [`Self::finish`].
    pub fn flush(&mut self) -> Result<(), TraceError> {
        self.guard()?;
        for shard in 0..self.pending.len() {
            self.flush_shard(shard)?;
        }
        Ok(())
    }

    /// Closes the pipeline: flushes every batch, joins the workers and
    /// merges their outputs into the canonical deterministic order (see
    /// the module docs). The correlator is spent afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] when called twice and a
    /// configuration error when a worker panicked.
    pub fn finish(&mut self) -> Result<CorrelationOutput, TraceError> {
        self.guard()?;
        // Drain the router completely: with input closed, deferred
        // receives resolve, stuck states break by promotion.
        self.pump_router(true)?;
        for shard in 0..self.pending.len() {
            self.flush_shard(shard)?;
        }
        self.finished = true;
        // Hang up: workers drain their queues and finish.
        self.txs.clear();
        let mut outputs = Vec::with_capacity(self.workers.len());
        for handle in self.workers.drain(..) {
            let out = handle
                .join()
                .map_err(|_| TraceError::config("shard worker panicked"))??;
            outputs.push(out);
        }
        Ok(self.core.merge(outputs, self.started))
    }

    /// Batch convenience: correlates a complete record set through the
    /// sharded pipeline. Records may arrive in **any** order: the whole
    /// set is staged first (the router's per-entity lanes re-sort it by
    /// local time, like the batch drain's per-node sort), then routed
    /// in one pass that overlaps the workers' correlation.
    ///
    /// # Errors
    ///
    /// Returns a configuration error when the config is invalid.
    pub fn correlate(
        config: CorrelatorConfig,
        shards: usize,
        records: Vec<RawRecord>,
    ) -> Result<CorrelationOutput, TraceError> {
        let mut sc = ShardedCorrelator::new(config, shards)?;
        for rec in records {
            sc.ingest(rec);
        }
        sc.finish()
    }

    /// Batch convenience over a TCP_TRACE text log through the
    /// zero-copy ingest path: records are parsed borrowed, filtered
    /// before allocation, interned and staged; the routing pass then
    /// streams them to the shards, which correlate while the router
    /// keeps routing.
    ///
    /// # Errors
    ///
    /// Returns the first parse error, or a configuration error.
    pub fn correlate_text(
        config: CorrelatorConfig,
        shards: usize,
        text: &str,
    ) -> Result<CorrelationOutput, TraceError> {
        let mut sc = ShardedCorrelator::new(config, shards)?;
        for r in parse_log_iter(text) {
            sc.stage_ref(&r?);
        }
        sc.finish()
    }
}

/// Routing introspection for diagnostics and tests: runs only the
/// reader-side router over a complete record set (grouped/sorted like
/// [`ShardedCorrelator::correlate`]) and returns each activity with its
/// shard assignment, in dispatch order.
#[doc(hidden)]
pub fn route_records(
    config: &CorrelatorConfig,
    shards: usize,
    records: Vec<RawRecord>,
) -> Result<Vec<(Activity, u32)>, TraceError> {
    config.validate()?;
    let classifier = Classifier::new(config.access.clone());
    let filters = config.filters.clone();
    let mut dedup = RangeDedup::new();
    // Introspection shows every activity's assignment, so orphan
    // chains are routed (parity mode), never dropped.
    let mut router = SessionRouter::new(
        shards.max(1) as u32,
        config.channel_idle_horizon,
        config.lane_settle_depth,
        true,
    );
    let mut out = Vec::new();
    let mut dispatch = |m: ShardMsg, shard: u32| -> Result<(), TraceError> {
        if let ShardMsg::Act(a) = m {
            out.push((a, shard));
        }
        Ok(())
    };
    for mut rec in records {
        match dedup.decide_owned(&rec) {
            crate::raw::IngestDecision::Drop => continue,
            crate::raw::IngestDecision::Admit(size) => rec.size = size,
        }
        let act = classifier.classify(&rec);
        if filters.admits(&act) {
            router.stage(act);
            for ch in router.take_evicted() {
                dedup.evict_channel(ch);
            }
        }
    }
    router.pump(true, &mut dispatch)?;
    Ok(out)
}

/// Like [`route_records`] but pumping after every record, mirroring the
/// streaming `push` flow. For per-host-ordered input it must produce
/// identical assignments.
#[doc(hidden)]
pub fn route_records_streaming(
    config: &CorrelatorConfig,
    shards: usize,
    records: Vec<RawRecord>,
) -> Result<Vec<(Activity, u32)>, TraceError> {
    config.validate()?;
    let classifier = Classifier::new(config.access.clone());
    let filters = config.filters.clone();
    let mut dedup = RangeDedup::new();
    let mut router = SessionRouter::new(
        shards.max(1) as u32,
        config.channel_idle_horizon,
        config.lane_settle_depth,
        true,
    );
    let mut out = Vec::new();
    let mut dispatch = |m: ShardMsg, shard: u32| -> Result<(), TraceError> {
        if let ShardMsg::Act(a) = m {
            out.push((a, shard));
        }
        Ok(())
    };
    for mut rec in records {
        match dedup.decide_owned(&rec) {
            crate::raw::IngestDecision::Drop => continue,
            crate::raw::IngestDecision::Admit(size) => rec.size = size,
        }
        let act = classifier.classify(&rec);
        if filters.admits(&act) {
            router.stage(act);
            for ch in router.take_evicted() {
                dedup.evict_channel(ch);
            }
            router.pump(false, &mut dispatch)?;
        }
    }
    router.pump(true, &mut dispatch)?;
    Ok(out)
}

impl Drop for ShardedCorrelator {
    fn drop(&mut self) {
        // Hang up so abandoned workers terminate instead of blocking
        // forever on their receive loops.
        self.txs.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPointSpec;
    use crate::correlator::Correlator;
    use crate::raw::parse_log;

    fn access() -> AccessPointSpec {
        AccessPointSpec::new(
            [80],
            [
                "10.0.0.1".parse().unwrap(),
                "10.0.0.2".parse().unwrap(),
                "10.0.0.3".parse().unwrap(),
            ],
        )
    }

    /// Two interleaved three-tier requests from different clients plus
    /// untraced-peer noise.
    fn two_session_log() -> String {
        let mut log = String::new();
        for (client, base) in [("192.168.0.9:5000", 0u64), ("192.168.0.10:6000", 300)] {
            let port = 4001 + base;
            for line in [
                format!(
                    "{} web httpd 7 {} RECEIVE {client}-10.0.0.1:80 120",
                    1000 + base,
                    7 + base
                ),
                format!(
                    "{} web httpd 7 {} SEND 10.0.0.1:{port}-10.0.0.2:8009 64",
                    2000 + base,
                    7 + base
                ),
                format!(
                    "{} app java 9 {} RECEIVE 10.0.0.1:{port}-10.0.0.2:8009 64",
                    500900 + base,
                    21 + base
                ),
                format!(
                    "{} app java 9 {} SEND 10.0.0.2:8009-10.0.0.1:{port} 256",
                    504000 + base,
                    21 + base
                ),
                format!(
                    "{} web httpd 7 {} RECEIVE 10.0.0.2:8009-10.0.0.1:{port} 256",
                    4500 + base,
                    7 + base
                ),
                format!(
                    "{} web httpd 7 {} SEND 10.0.0.1:80-{client} 512",
                    5000 + base,
                    7 + base
                ),
            ] {
                log.push_str(&line);
                log.push('\n');
            }
        }
        log.push_str("902000 db mysqld 5 77 RECEIVE 172.16.9.9:6000-10.0.0.3:3306 48\n");
        log.push_str("902500 db mysqld 5 77 SEND 10.0.0.3:3306-172.16.9.9:6000 99\n");
        log
    }

    /// Content fingerprint that ignores stream order and ids.
    fn fingerprint(out: &CorrelationOutput) -> Vec<String> {
        let mut v: Vec<String> = out
            .cags
            .iter()
            .map(|c| {
                format!(
                    "{:?}|{}",
                    c.sorted_tags(),
                    c.vertices
                        .iter()
                        .map(|x| format!(
                            "{} {} {} {} {:?} {:?};",
                            x.ty, x.ts, x.channel, x.size, x.ctx_parent, x.msg_parent
                        ))
                        .collect::<String>()
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn sharded_matches_batch_content_for_any_shard_count() {
        let log = two_session_log();
        let records = parse_log(&log).unwrap();
        let batch = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(records.clone())
            .unwrap();
        for shards in [1, 2, 3, 4, 8] {
            let out = ShardedCorrelator::correlate(
                CorrelatorConfig::new(access()),
                shards,
                records.clone(),
            )
            .unwrap();
            assert_eq!(out.cags.len(), batch.cags.len(), "shards={shards}");
            assert_eq!(fingerprint(&out), fingerprint(&batch), "shards={shards}");
            assert_eq!(out.metrics.records_in, batch.metrics.records_in);
            assert_eq!(out.metrics.cags_finished, batch.metrics.cags_finished);
            assert_eq!(
                out.metrics.ranker.noise_discards,
                batch.metrics.ranker.noise_discards
            );
            // Canonical order: ids are sequential in stream order.
            let ids: Vec<u64> = out.cags.iter().map(|c| c.id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "shards={shards}");
            for cag in &out.cags {
                cag.validate().expect("valid sharded CAG");
            }
        }
    }

    #[test]
    fn shard_count_does_not_change_bytes() {
        let log = two_session_log();
        let base =
            ShardedCorrelator::correlate_text(CorrelatorConfig::new(access()), 1, &log).unwrap();
        for shards in [2, 4, 7] {
            let out =
                ShardedCorrelator::correlate_text(CorrelatorConfig::new(access()), shards, &log)
                    .unwrap();
            assert_eq!(
                format!("{:?}", out.cags),
                format!("{:?}", base.cags),
                "shards={shards}"
            );
            assert_eq!(out.unfinished.len(), base.unfinished.len());
        }
    }

    #[test]
    fn text_and_record_ingest_agree() {
        let log = two_session_log();
        let records = parse_log(&log).unwrap();
        let a =
            ShardedCorrelator::correlate_text(CorrelatorConfig::new(access()), 3, &log).unwrap();
        let b = ShardedCorrelator::correlate(CorrelatorConfig::new(access()), 3, records).unwrap();
        assert_eq!(format!("{:?}", a.cags), format!("{:?}", b.cags));
        assert_eq!(a.metrics.records_in, b.metrics.records_in);
    }

    #[test]
    fn filters_apply_in_the_reader() {
        let mut log = two_session_log();
        log.push_str("600 web sshd 99 99 RECEIVE 172.16.9.9:7000-10.0.0.1:22 500\n");
        let cfg =
            CorrelatorConfig::new(access()).with_filters(FilterSet::new().drop_program("sshd"));
        let out = ShardedCorrelator::correlate_text(cfg, 4, &log).unwrap();
        assert_eq!(out.metrics.filtered_out, 1);
        assert_eq!(out.cags.len(), 2);
    }

    #[test]
    fn api_after_finish_returns_finished_error() {
        let mut sc = ShardedCorrelator::new(CorrelatorConfig::new(access()), 2).unwrap();
        sc.push_line("1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120")
            .unwrap();
        let out = sc.finish().unwrap();
        assert_eq!(out.metrics.records_in, 1);
        assert_eq!(out.unfinished.len(), 1);
        let rec: RawRecord = "2000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512"
            .parse()
            .unwrap();
        assert_eq!(sc.push(rec), Err(TraceError::Finished));
        assert_eq!(sc.flush(), Err(TraceError::Finished));
        assert!(matches!(sc.finish(), Err(TraceError::Finished)));
    }

    #[test]
    fn zero_shards_resolves_to_auto() {
        let sc = ShardedCorrelator::new(CorrelatorConfig::new(access()), 0).unwrap();
        assert!(sc.shards() >= 1);
        assert!(sc.shards() <= AUTO_SHARD_CAP);
    }

    fn fmt_routed(v: &[(Activity, u32)]) -> Vec<String> {
        let mut s: Vec<String> = v.iter().map(|(a, sh)| format!("{a} -> {sh}")).collect();
        s.sort();
        s
    }

    #[test]
    fn routing_is_independent_of_pump_interleaving() {
        // The routing contract: for per-host-ordered input, assignments
        // are a pure function of the per-entity sequences and
        // per-channel claim FIFOs — staging everything before one
        // final pump and pumping after every record must produce
        // identical (activity, shard) streams.
        let log = two_session_log();
        let config = CorrelatorConfig::new(access());
        let records = parse_log(&log).unwrap();
        let batch = route_records(&config, 4, records.clone()).unwrap();
        let streaming = route_records_streaming(&config, 4, records).unwrap();
        assert_eq!(fmt_routed(&batch), fmt_routed(&streaming));
    }

    #[test]
    fn stage_all_routing_absorbs_arbitrary_input_order() {
        // The batch entry point stages the complete set first, so even
        // fully reversed input (every lane built by insertion sort)
        // routes identically to the in-order run.
        let log = two_session_log();
        let config = CorrelatorConfig::new(access());
        let records = parse_log(&log).unwrap();
        let in_order = route_records(&config, 4, records.clone()).unwrap();
        let mut reversed = records;
        reversed.reverse();
        let rev = route_records(&config, 4, reversed).unwrap();
        assert_eq!(fmt_routed(&in_order), fmt_routed(&rev));
    }

    #[test]
    fn router_memory_grows_and_shrinks_across_deferred_claims() {
        // A RECEIVE whose claiming SEND has not arrived defers on its
        // lane; the router's memory gauge must reflect the deferred
        // state and fall back once the claim routes it.
        let config = CorrelatorConfig::new(access());
        let classifier = Classifier::new(config.access.clone());
        let mut router = SessionRouter::new(4, None, None, true);
        let mut sink = |_m: ShardMsg, _s: u32| -> Result<(), TraceError> { Ok(()) };
        let mut feed = |router: &mut SessionRouter, line: String| {
            let rec: RawRecord = line.parse().unwrap();
            router.stage(classifier.classify(&rec));
            router
                .pump(false, &mut sink)
                .expect("dispatch cannot fail here");
        };
        let send = |i: u64, t: u64| {
            format!(
                "{t} web httpd 7 {} SEND 10.0.0.1:{}-10.0.0.2:8009 64",
                7 + i,
                4001 + i
            )
        };
        let recv = |i: u64, t: u64| {
            format!(
                "{t} app java 9 {} RECEIVE 10.0.0.1:{}-10.0.0.2:8009 64",
                21 + i,
                4001 + i
            )
        };

        // Warm-up: one routed round per channel creates the lanes and
        // claim entries that persist by design.
        for i in 0..3u64 {
            feed(&mut router, send(i, 1_000 + i));
            feed(&mut router, recv(i, 2_000 + i));
        }
        let base = router.approx_bytes();

        // A second round of receives arrives before its sends: each
        // defers on its lane, growing router memory monotonically.
        let mut grow = vec![base];
        for i in 0..3u64 {
            feed(&mut router, recv(i, 10_000 + i));
            grow.push(router.approx_bytes());
        }
        assert!(
            grow.windows(2).all(|w| w[0] < w[1]),
            "deferred claims must grow router memory: {grow:?}"
        );
        let deferred = *grow.last().unwrap();

        // The claiming sends arrive: deferred lanes drain and the
        // gauge returns exactly to the warmed-up baseline.
        for i in 0..3u64 {
            feed(&mut router, send(i, 9_000 + i));
        }
        let drained = router.approx_bytes();
        assert!(
            drained < deferred,
            "routed claims must shrink router memory: {deferred} -> {drained}"
        );
        assert_eq!(drained, base, "drained router returns to its baseline");
        assert_eq!(router.staged, 0, "nothing may stay staged");
    }

    #[test]
    fn channel_idle_gc_reclaims_drained_channels() {
        // Many one-shot channels (one send + one covering receive
        // each): without a horizon the router keeps one claims entry
        // per channel forever; with one, drained channels are evicted
        // once idle past the horizon and the memory gauge shrinks.
        let config = CorrelatorConfig::new(access());
        let classifier = Classifier::new(config.access.clone());
        let run = |horizon: Option<u64>| {
            let mut router = SessionRouter::new(4, horizon, None, true);
            let mut sink = |_m: ShardMsg, _s: u32| -> Result<(), TraceError> { Ok(()) };
            let mut grow_peak = 0usize;
            for i in 0..400u64 {
                let port = 4001 + i;
                let t = 1_000 + i * 10;
                for line in [
                    format!("{t} web httpd 7 7 SEND 10.0.0.1:{port}-10.0.0.2:8009 64"),
                    format!(
                        "{} app java 9 21 RECEIVE 10.0.0.1:{port}-10.0.0.2:8009 64",
                        t + 5
                    ),
                ] {
                    let rec: RawRecord = line.parse().unwrap();
                    router.stage(classifier.classify(&rec));
                    router.pump(false, &mut sink).unwrap();
                }
                grow_peak = grow_peak.max(router.approx_bytes());
            }
            (router, grow_peak)
        };
        let (no_gc, _) = run(None);
        let (gc, gc_peak) = run(Some(64));
        assert_eq!(no_gc.claims.len(), 400, "without GC every channel persists");
        assert!(
            gc.claims.len() < 64,
            "idle channels must be evicted: {} entries left",
            gc.claims.len()
        );
        assert!(
            gc.idle_evicted > 300,
            "evictions counted: {}",
            gc.idle_evicted
        );
        assert!(
            gc.approx_bytes() < no_gc.approx_bytes(),
            "GC router resident {} must undercut {}",
            gc.approx_bytes(),
            no_gc.approx_bytes()
        );
        // Grow-then-shrink: the gauge grew past its final value.
        assert!(gc_peak > gc.approx_bytes());
    }

    #[test]
    fn channel_idle_gc_does_not_change_output_on_live_traffic() {
        // Channels that stay active within the horizon are never
        // evicted, so output is byte-identical with and without GC.
        let log = two_session_log();
        let base =
            ShardedCorrelator::correlate_text(CorrelatorConfig::new(access()), 3, &log).unwrap();
        let gc = ShardedCorrelator::correlate_text(
            CorrelatorConfig::new(access()).with_channel_idle_horizon(4),
            3,
            &log,
        )
        .unwrap();
        assert_eq!(format!("{:?}", gc.cags), format!("{:?}", base.cags));
        assert_eq!(gc.unfinished.len(), base.unfinished.len());
        assert_eq!(
            gc.metrics.ranker.noise_discards,
            base.metrics.ranker.noise_discards
        );
    }

    #[test]
    fn bounded_age_settle_caps_an_always_deferred_lane() {
        // Pathological lane: a thread that only ever RECEIVEs on a
        // channel whose SEND side is never captured (dead or untraced
        // peer). Mid-stream such a head is undecidable — the send may
        // still arrive — so without a settle depth the lane parks and
        // buffers every later record forever. With one, the head is
        // settled as noise once `depth` records pile up behind it, so
        // the lane's resident depth is capped at the knob.
        let config = CorrelatorConfig::new(access());
        let classifier = Classifier::new(config.access.clone());
        let run = |depth: Option<u64>| {
            let mut router = SessionRouter::new(4, None, depth, true);
            let mut sink = |_m: ShardMsg, _s: u32| -> Result<(), TraceError> { Ok(()) };
            for i in 0..200u64 {
                let line = format!(
                    "{} app java 9 21 RECEIVE 10.0.0.1:6001-10.0.0.2:8009 64",
                    1_000 + i
                );
                let rec: RawRecord = line.parse().unwrap();
                router.stage(classifier.classify(&rec));
                router.pump(false, &mut sink).unwrap();
            }
            router
        };
        let parked = run(None);
        assert_eq!(parked.staged, 200, "without the rule every record parks");
        assert_eq!(parked.aged_settles, 0);
        let settled = run(Some(8));
        assert!(
            settled.staged <= 8,
            "the lane must stay within the settle depth: {} staged",
            settled.staged
        );
        assert_eq!(
            settled.aged_settles, 192,
            "each record past the depth settles one head"
        );
        assert_eq!(
            settled.noise_discards, settled.aged_settles,
            "claimless settled heads are discarded exactly like end-of-input noise"
        );
        assert!(
            settled.approx_bytes() < parked.approx_bytes() / 4,
            "settling must cap router memory: {} vs {}",
            settled.approx_bytes(),
            parked.approx_bytes()
        );
    }

    #[test]
    fn bounded_age_settle_waits_for_claims_staged_on_live_lanes() {
        // The rule must NOT fire when the head's claim is merely staged
        // on another lane (shared-channel turn ordering parks the send
        // behind an earlier stager): progress is guaranteed, and an
        // early settle would mis-route the receive. A depth of 1 makes
        // the settle maximally eager, yet output must match the
        // default run byte-for-byte on a live log.
        let log = two_session_log();
        let base =
            ShardedCorrelator::correlate_text(CorrelatorConfig::new(access()), 3, &log).unwrap();
        let eager = ShardedCorrelator::correlate_text(
            CorrelatorConfig::new(access()).with_lane_settle_depth(1),
            3,
            &log,
        )
        .unwrap();
        assert_eq!(format!("{:?}", eager.cags), format!("{:?}", base.cags));
        assert_eq!(eager.unfinished.len(), base.unfinished.len());
    }

    #[test]
    fn orphan_chain_records_drop_reader_side() {
        // The untraced-peer noise pair in `two_session_log` can never
        // reach an emitted CAG: the engine would park it on an orphan
        // chain and throw it away at finish. The reader drops such
        // records before dispatch (counted in `orphan_dropped`);
        // `--orphan-parity` restores the old ship-everything behavior.
        // Output bytes are identical either way.
        let log = two_session_log();
        let drop_out =
            ShardedCorrelator::correlate_text(CorrelatorConfig::new(access()), 3, &log).unwrap();
        let parity_out = ShardedCorrelator::correlate_text(
            CorrelatorConfig::new(access()).with_orphan_parity(),
            3,
            &log,
        )
        .unwrap();
        assert!(
            drop_out.metrics.orphan_dropped > 0,
            "the noise pair must be dropped reader-side"
        );
        assert_eq!(
            parity_out.metrics.orphan_dropped, 0,
            "--orphan-parity ships every record to the workers"
        );
        assert_eq!(
            format!("{:?}{:?}", drop_out.cags, drop_out.unfinished),
            format!("{:?}{:?}", parity_out.cags, parity_out.unfinished),
            "dropping orphan chains must not change emitted bytes"
        );
        assert_eq!(
            drop_out.metrics.ranker.noise_discards,
            parity_out.metrics.ranker.noise_discards
        );
    }

    #[test]
    fn range_dedup_coverage_follows_channel_idle_gc() {
        // Many one-shot v2 channels: without a horizon the reader keeps
        // one `RangeDedup` coverage entry per (channel, op) forever;
        // with one, a drained channel's coverage is evicted together
        // with its router claims, and the memory gauge shrinks.
        let run = |cfg: CorrelatorConfig| {
            let mut sc = ShardedCorrelator::new(cfg, 2).unwrap();
            let mut peak = 0usize;
            for i in 0..400u64 {
                let port = 4001 + i;
                let t = 1_000 + i * 10;
                sc.push_line(&format!(
                    "{t} web httpd 7 7 SEND 10.0.0.1:{port}-10.0.0.2:8009 64 seq=0"
                ))
                .unwrap();
                sc.push_line(&format!(
                    "{} app java 9 21 RECEIVE 10.0.0.1:{port}-10.0.0.2:8009 64 seq=0",
                    t + 5
                ))
                .unwrap();
                peak = peak.max(sc.approx_router_bytes());
            }
            (sc.approx_router_bytes(), peak)
        };
        let (no_gc, _) = run(CorrelatorConfig::new(access()));
        let (gc, gc_peak) = run(CorrelatorConfig::new(access()).with_channel_idle_horizon(64));
        assert!(
            gc < no_gc,
            "evicting drained channels' coverage must shrink the reader: {gc} vs {no_gc}"
        );
        // Grow-then-shrink: the gauge grew past its final value.
        assert!(gc_peak > gc, "gauge must have peaked above {gc}: {gc_peak}");
    }

    #[test]
    fn range_claims_survive_send_record_gaps() {
        // A v2 channel where the tail send chunk's record was lost to
        // partial capture: the receive's range proves the deficit is
        // permanent (a later send is already staged), so it resolves
        // mid-stream to the right shard instead of deadlocking the
        // lane until finish.
        let config = CorrelatorConfig::new(access());
        let classifier = Classifier::new(config.access.clone());
        let mut router = SessionRouter::new(4, None, None, true);
        let mut routed: Vec<(Activity, u32)> = Vec::new();
        let feed = |router: &mut SessionRouter, line: &str, out: &mut Vec<(Activity, u32)>| {
            let rec: RawRecord = line.parse().unwrap();
            router.stage(classifier.classify(&rec));
            let mut sink = |m: ShardMsg, s: u32| -> Result<(), TraceError> {
                if let ShardMsg::Act(a) = m {
                    out.push((a, s));
                }
                Ok(())
            };
            router.pump(false, &mut sink).unwrap();
        };
        // Send chunks [0,4096) and — LOST — [4096,4360); the next
        // message's send [4360,8456) is staged before the receive
        // resolves.
        feed(
            &mut router,
            "1000 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:8009 4096 seq=0",
            &mut routed,
        );
        feed(
            &mut router,
            "1200 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:8009 4096 seq=4360",
            &mut routed,
        );
        let sends_shard = routed[0].1;
        assert_eq!(routed.len(), 2);
        // The receive covers [0,4360): 264 bytes have no claim and
        // never will (max staged send offset is already 8456).
        feed(
            &mut router,
            "2000 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:8009 4360 seq=0",
            &mut routed,
        );
        assert_eq!(routed.len(), 3, "gapped receive must resolve mid-stream");
        assert_eq!(routed[2].1, sends_shard, "and to the claiming send's shard");
        assert_eq!(router.staged, 0);
        assert_eq!(router.forced_routes, 0, "no stuck-breaker involved");
    }

    #[test]
    fn sharded_reader_drops_retrans_like_the_streaming_path() {
        let mut log = two_session_log();
        log.push_str("4600 web httpd 7 7 RECEIVE 10.0.0.2:8009-10.0.0.1:4001 256 retrans\n");
        let records = parse_log(&log).unwrap();
        let batch = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(records.clone())
            .unwrap();
        let sharded =
            ShardedCorrelator::correlate(CorrelatorConfig::new(access()), 3, records).unwrap();
        assert_eq!(batch.metrics.retrans_dropped, 1);
        assert_eq!(sharded.metrics.retrans_dropped, 1);
        assert_eq!(sharded.cags.len(), batch.cags.len());
        assert_eq!(fingerprint(&sharded), fingerprint(&batch));
    }

    #[test]
    fn approx_router_bytes_is_exposed() {
        let mut sc = ShardedCorrelator::new(CorrelatorConfig::new(access()), 2).unwrap();
        let base = sc.approx_router_bytes();
        // An orphan receive on an unclaimed channel defers in the
        // router until finish.
        sc.push_line("902000 db mysqld 5 77 RECEIVE 172.16.9.9:6000-10.0.0.3:3306 48")
            .unwrap();
        assert!(sc.approx_router_bytes() > base);
        let out = sc.finish().unwrap();
        assert_eq!(out.metrics.ranker.noise_discards, 1);
    }

    #[test]
    fn invalid_config_is_rejected_before_spawning() {
        let cfg = CorrelatorConfig::new(AccessPointSpec::default());
        assert!(ShardedCorrelator::new(cfg, 4).is_err());
    }

    #[test]
    fn jump_hash_is_stable_and_in_range() {
        for key in 0..200u64 {
            let b4 = jump_hash(key, 4);
            let b5 = jump_hash(key, 5);
            assert!(b4 < 4);
            assert!(b5 < 5);
            // Consistency: growing the shard count either keeps the
            // bucket or moves the key to the new bucket range.
            if b5 != b4 {
                assert_eq!(b5, 4, "key {key} moved to an old bucket");
            }
        }
        assert_eq!(jump_hash(42, 1), 0);
    }

    #[test]
    fn memory_budget_splits_across_shards() {
        // A tiny budget still bounds each shard; evictions are counted
        // in the merged metrics. Shedding is opt-in now; the default
        // spill policy is covered by the cross-mode property tests.
        let access = AccessPointSpec::new([80], ["10.0.0.1".parse().unwrap()]);
        let mut cfg = CorrelatorConfig::new(access)
            .with_memory_budget(16 * 1024)
            .with_shed_on_budget();
        cfg.mem_sample_every = 8;
        let mut sc = ShardedCorrelator::new(cfg, 2).unwrap();
        for i in 0..4_000u64 {
            sc.push(
                format!(
                    "{} web httpd 7 7 RECEIVE 192.168.0.9:{}-10.0.0.1:80 100",
                    i * 1_000_000,
                    5_000 + (i % 50_000),
                )
                .parse()
                .unwrap(),
            )
            .unwrap();
        }
        let out = sc.finish().unwrap();
        assert!(out.metrics.engine.budget_evicted_cags > 0);
        assert_eq!(
            out.metrics.cags_unfinished,
            out.unfinished.len() as u64 + out.metrics.engine.budget_evicted_cags
        );
    }
}
