//! **PTBIN** — the compact binary wire form of `TCP_TRACE` records.
//!
//! The text format is what sniffer frontends emit for humans; PTBIN is
//! what they ship to a long-running correlator. It round-trips
//! `TCP_TRACE` v1/v2 losslessly (every field the text grammar can
//! express, including the optional `seq=`/`retrans` v2 attributes) at a
//! fixed 53 bytes per record, with all hostname/program strings
//! interned into a table up front so decoding is a handful of
//! little-endian loads per record and zero allocations when borrowed
//! ([`Reader::get`] / [`decode_refs`]).
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! header   magic "PTBN" (4) | version u16 (=1) | flags u16 (=0)
//! table    count u32 | count × { len u16 | UTF-8 bytes }
//! records  count u64 | count × 53-byte record
//!
//! record   ts u64 | host_idx u32 | prog_idx u32 | pid u32 | tid u32
//!          | flags u8 | src_ip [4] | src_port u16
//!          | dst_ip [4] | dst_port u16 | size u64 | seq u64
//! flags    bit0 op (0=SEND, 1=RECEIVE) | bit1 retrans | bit2 has seq=
//! ```
//!
//! `seq` is only meaningful when flag bit 2 is set (a v2 record); v1
//! records store 0 there so every record is the same width — which is
//! what lets [`decode_refs_parallel`] split the record array by index
//! with no scanning. The out-of-band ground-truth `tag` is not part of
//! the text grammar and is not carried; decoded records have `tag = 0`,
//! exactly like text parsing.
//!
//! # Examples
//!
//! ```
//! use tracer_core::binfmt;
//!
//! let text = "1000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 42\n";
//! let bin = binfmt::encode_text(text, 1)?;
//! assert!(binfmt::is_ptbin(&bin));
//! let records = binfmt::decode_refs(&bin)?;
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].hostname, "web");
//! assert_eq!(records[0].to_string().as_str(), text.trim_end());
//! # Ok::<(), tracer_core::TraceError>(())
//! ```

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::path::Path;

use crate::activity::{EndpointV4, LocalTime};
use crate::error::TraceError;
use crate::intern::Interner;
use crate::raw::{RawOp, RawRecord, RawRecordRef};

/// File magic: the first four bytes of every PTBIN stream.
pub const MAGIC: [u8; 4] = *b"PTBN";

/// Current format version (header `version` field).
pub const VERSION: u16 = 1;

/// Fixed encoded size of one record in bytes.
pub const RECORD_BYTES: usize = 53;

/// Header size in bytes: magic + version + header flags.
const HEADER_BYTES: usize = 8;

/// Record flag bit 0: operation (`0` = SEND, `1` = RECEIVE).
const FLAG_RECEIVE: u8 = 1 << 0;
/// Record flag bit 1: the `retrans` attribute was present.
const FLAG_RETRANS: u8 = 1 << 1;
/// Record flag bit 2: the `seq=` attribute was present (v2 record).
const FLAG_HAS_SEQ: u8 = 1 << 2;

fn err(reason: impl Into<String>) -> TraceError {
    TraceError::Config(format!("PTBIN: {}", reason.into()))
}

/// True when `buf` starts with the PTBIN magic (any version).
///
/// This is the sniff test `pt convert` / `pt correlate` use to pick a
/// direction; the magic bytes are not valid UTF-8-leading text for any
/// TCP_TRACE log, so the formats cannot be confused.
#[inline]
pub fn is_ptbin(buf: &[u8]) -> bool {
    buf.len() >= MAGIC.len() && buf[..MAGIC.len()] == MAGIC
}

/// Reads a PTBIN file into memory.
///
/// # Errors
///
/// Returns [`TraceError::Config`] when the file cannot be read.
pub fn read_binary_file(path: impl AsRef<Path>) -> Result<Vec<u8>, TraceError> {
    let path = path.as_ref();
    std::fs::read(path).map_err(|e| err(format!("cannot read {}: {e}", path.display())))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Incremental PTBIN encoder: push records (in chunks, if the caller
/// streams), then [`finish`](Encoder::finish) to get the full stream
/// with the string table up front.
///
/// The table is built on the fly — each distinct hostname/program is
/// stored once and subsequent records reference it by index — so the
/// encoder's memory is the encoded records plus one copy of each
/// distinct string, never the input text.
#[derive(Debug, Default)]
pub struct Encoder {
    strings: Vec<String>,
    index: HashMap<String, u32>,
    records: Vec<u8>,
    count: u64,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records pushed so far.
    pub fn record_count(&self) -> u64 {
        self.count
    }

    fn intern(&mut self, s: &str) -> Result<u32, TraceError> {
        if let Some(&i) = self.index.get(s) {
            return Ok(i);
        }
        if s.len() > usize::from(u16::MAX) {
            return Err(err(format!("string longer than 65535 bytes: {:.32}...", s)));
        }
        let i = u32::try_from(self.strings.len())
            .map_err(|_| err("string table overflow (more than 2^32 distinct strings)"))?;
        self.strings.push(s.to_owned());
        self.index.insert(s.to_owned(), i);
        Ok(i)
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Config`] when a hostname/program string
    /// exceeds the format's 65535-byte limit.
    pub fn push(&mut self, r: &RawRecordRef<'_>) -> Result<(), TraceError> {
        let host_idx = self.intern(r.hostname)?;
        let prog_idx = self.intern(r.program)?;
        let mut flags = 0u8;
        if r.op == RawOp::Receive {
            flags |= FLAG_RECEIVE;
        }
        if r.retrans {
            flags |= FLAG_RETRANS;
        }
        if r.seq.is_some() {
            flags |= FLAG_HAS_SEQ;
        }
        let out = &mut self.records;
        out.reserve(RECORD_BYTES);
        out.extend_from_slice(&r.ts.as_nanos().to_le_bytes());
        out.extend_from_slice(&host_idx.to_le_bytes());
        out.extend_from_slice(&prog_idx.to_le_bytes());
        out.extend_from_slice(&r.pid.to_le_bytes());
        out.extend_from_slice(&r.tid.to_le_bytes());
        out.push(flags);
        out.extend_from_slice(&r.src.ip.octets());
        out.extend_from_slice(&r.src.port.to_le_bytes());
        out.extend_from_slice(&r.dst.ip.octets());
        out.extend_from_slice(&r.dst.port.to_le_bytes());
        out.extend_from_slice(&r.size.to_le_bytes());
        out.extend_from_slice(&r.seq.unwrap_or(0).to_le_bytes());
        self.count += 1;
        Ok(())
    }

    /// Finishes the stream: header, string table, then all records.
    pub fn finish(self) -> Vec<u8> {
        let table_bytes: usize = self.strings.iter().map(|s| 2 + s.len()).sum();
        let mut out = Vec::with_capacity(HEADER_BYTES + 4 + table_bytes + 8 + self.records.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // header flags: none defined yet
        out.extend_from_slice(
            &u32::try_from(self.strings.len())
                .unwrap_or(u32::MAX)
                .to_le_bytes(),
        );
        for s in &self.strings {
            out.extend_from_slice(&(s.len() as u16).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.records);
        out
    }
}

/// Encodes borrowed records into a complete PTBIN stream.
///
/// # Errors
///
/// Returns [`TraceError::Config`] when a string field exceeds the
/// format's 65535-byte limit.
pub fn encode_refs(records: &[RawRecordRef<'_>]) -> Result<Vec<u8>, TraceError> {
    let mut enc = Encoder::new();
    for r in records {
        enc.push(r)?;
    }
    Ok(enc.finish())
}

/// Encodes owned records into a complete PTBIN stream.
///
/// # Errors
///
/// Returns [`TraceError::Config`] when a string field exceeds the
/// format's 65535-byte limit.
pub fn encode_records(records: &[RawRecord]) -> Result<Vec<u8>, TraceError> {
    let mut enc = Encoder::new();
    for r in records {
        enc.push(&r.as_record_ref())?;
    }
    Ok(enc.finish())
}

/// Parses `TCP_TRACE` text (with `threads` ingest workers) and encodes
/// the records as PTBIN.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] for malformed text and
/// [`TraceError::Config`] for records the format cannot express.
pub fn encode_text(text: &str, threads: usize) -> Result<Vec<u8>, TraceError> {
    let refs = crate::ingest::parse_refs_parallel(text, threads)?;
    encode_refs(&refs)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A validated view over a PTBIN stream: the string table is resolved
/// (and UTF-8 checked) once, after which [`get`](Reader::get) decodes
/// any record by index with plain little-endian loads — no scanning,
/// no allocation, strings borrowed straight from the input buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    strings: Vec<&'a str>,
    records: &'a [u8],
    count: usize,
}

impl<'a> Reader<'a> {
    /// Validates the header and string table of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Config`] on bad magic, an unsupported
    /// version, unknown header flags, a truncated stream, or a string
    /// table entry that is not UTF-8.
    pub fn new(buf: &'a [u8]) -> Result<Self, TraceError> {
        if !is_ptbin(buf) {
            return Err(err("bad magic (not a PTBIN stream)"));
        }
        let take = |pos: usize, n: usize| -> Result<&'a [u8], TraceError> {
            buf.get(pos..pos + n).ok_or_else(|| err("truncated stream"))
        };
        let version = u16::from_le_bytes(take(4, 2)?.try_into().unwrap());
        if version != VERSION {
            return Err(err(format!(
                "unsupported version {version} (expected {VERSION})"
            )));
        }
        let hflags = u16::from_le_bytes(take(6, 2)?.try_into().unwrap());
        if hflags != 0 {
            return Err(err(format!("unknown header flags {hflags:#06x}")));
        }
        let nstrings = u32::from_le_bytes(take(8, 4)?.try_into().unwrap()) as usize;
        let mut pos = HEADER_BYTES + 4;
        let mut strings = Vec::with_capacity(nstrings.min(1 << 16));
        for _ in 0..nstrings {
            let len = u16::from_le_bytes(take(pos, 2)?.try_into().unwrap()) as usize;
            pos += 2;
            let s = std::str::from_utf8(take(pos, len)?)
                .map_err(|_| err("string table entry is not UTF-8"))?;
            pos += len;
            strings.push(s);
        }
        let count64 = u64::from_le_bytes(take(pos, 8)?.try_into().unwrap());
        pos += 8;
        let count = usize::try_from(count64).map_err(|_| err("record count overflow"))?;
        let need = count
            .checked_mul(RECORD_BYTES)
            .ok_or_else(|| err("record count overflow"))?;
        let records = take(pos, need)?;
        if buf.len() != pos + need {
            return Err(err(format!(
                "trailing garbage: {} bytes past the last record",
                buf.len() - (pos + need)
            )));
        }
        Ok(Reader {
            strings,
            records,
            count,
        })
    }

    /// Number of records in the stream.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the stream holds no records.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of distinct interned strings in the table.
    pub fn string_count(&self) -> usize {
        self.strings.len()
    }

    /// Decodes record `i` (zero-based), borrowing strings from the
    /// underlying buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Config`] when `i` is out of range, a
    /// string index points past the table, or reserved flag bits are
    /// set.
    pub fn get(&self, i: usize) -> Result<RawRecordRef<'a>, TraceError> {
        if i >= self.count {
            return Err(err(format!("record {i} out of range ({})", self.count)));
        }
        let b = &self.records[i * RECORD_BYTES..(i + 1) * RECORD_BYTES];
        decode_cell(b, &|idx| self.strings.get(idx as usize).copied())
    }

    /// Iterates over all records in stream order.
    pub fn iter(&self) -> impl Iterator<Item = Result<RawRecordRef<'a>, TraceError>> + '_ {
        (0..self.count).map(move |i| self.get(i))
    }
}

/// Decodes one fixed-width record cell (`RECORD_BYTES` bytes);
/// `string` resolves a table index to its interned text.
///
/// # Errors
///
/// Returns [`TraceError::Config`] for reserved flag bits or a string
/// index past the table.
fn decode_cell<'a>(
    b: &'a [u8],
    string: &dyn Fn(u32) -> Option<&'a str>,
) -> Result<RawRecordRef<'a>, TraceError> {
    debug_assert_eq!(b.len(), RECORD_BYTES);
    let u64_at = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
    let u32_at = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().unwrap());
    let u16_at = |o: usize| u16::from_le_bytes(b[o..o + 2].try_into().unwrap());
    let string_at = |o: usize| -> Result<&'a str, TraceError> {
        let idx = u32_at(o);
        string(idx).ok_or_else(|| err(format!("string index {idx} out of range")))
    };
    let flags = b[24];
    if flags & !(FLAG_RECEIVE | FLAG_RETRANS | FLAG_HAS_SEQ) != 0 {
        return Err(err(format!("unknown record flags {flags:#04x}")));
    }
    let seq_raw = u64_at(45);
    Ok(RawRecordRef {
        ts: LocalTime::from_nanos(u64_at(0)),
        hostname: string_at(8)?,
        program: string_at(12)?,
        pid: u32_at(16),
        tid: u32_at(20),
        op: if flags & FLAG_RECEIVE != 0 {
            RawOp::Receive
        } else {
            RawOp::Send
        },
        src: EndpointV4::new(Ipv4Addr::new(b[25], b[26], b[27], b[28]), u16_at(29)),
        dst: EndpointV4::new(Ipv4Addr::new(b[31], b[32], b[33], b[34]), u16_at(35)),
        size: u64_at(37),
        tag: 0,
        retrans: flags & FLAG_RETRANS != 0,
        seq: (flags & FLAG_HAS_SEQ != 0).then_some(seq_raw),
    })
}

/// Decodes a complete PTBIN stream into borrowed records.
///
/// # Errors
///
/// Returns [`TraceError::Config`] for any malformed stream (see
/// [`Reader::new`] / [`Reader::get`]).
pub fn decode_refs(buf: &[u8]) -> Result<Vec<RawRecordRef<'_>>, TraceError> {
    let reader = Reader::new(buf)?;
    let mut out = Vec::with_capacity(reader.len());
    for r in reader.iter() {
        out.push(r?);
    }
    Ok(out)
}

/// Decodes a complete PTBIN stream with `threads` workers, splitting
/// the fixed-width record array by index (no scanning required).
///
/// Produces exactly the same records in the same order as
/// [`decode_refs`]; `threads == 0` picks the available parallelism and
/// `threads == 1` is the sequential path.
///
/// # Errors
///
/// Returns [`TraceError::Config`] for any malformed stream; when
/// several records are malformed, the error for the earliest one in
/// stream order is returned (matching the text ingest contract).
pub fn decode_refs_parallel(
    buf: &[u8],
    threads: usize,
) -> Result<Vec<RawRecordRef<'_>>, TraceError> {
    let reader = Reader::new(buf)?;
    let n = reader.len();
    let threads = crate::ingest::resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        let mut out = Vec::with_capacity(n);
        for r in reader.iter() {
            out.push(r?);
        }
        return Ok(out);
    }
    // Even index ranges per worker; the fixed record width means no
    // boundary snapping is needed.
    let mut bounds = Vec::with_capacity(threads + 1);
    for i in 0..=threads {
        bounds.push(n * i / threads);
    }
    let reader = &reader;
    let parts: Vec<Result<Vec<RawRecordRef<'_>>, TraceError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .windows(2)
            .map(|w| {
                let (lo, hi) = (w[0], w[1]);
                scope.spawn(move || {
                    let mut part = Vec::with_capacity(hi - lo);
                    for i in lo..hi {
                        part.push(reader.get(i)?);
                    }
                    Ok(part)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part?);
    }
    Ok(out)
}

/// Decodes a complete PTBIN stream into owned records, interning
/// hostname/program strings.
///
/// # Errors
///
/// Returns [`TraceError::Config`] for any malformed stream.
pub fn decode_records(buf: &[u8]) -> Result<Vec<RawRecord>, TraceError> {
    let reader = Reader::new(buf)?;
    let mut interner = Interner::new();
    let mut out = Vec::with_capacity(reader.len());
    for r in reader.iter() {
        out.push(r?.to_owned_interned(&mut interner));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Incremental decoding (live tails)
// ---------------------------------------------------------------------------

/// Incremental PTBIN decoder for live sources: bytes arrive in
/// arbitrary chunks (a growing file's appends, a pipe's reads) and
/// [`drain`](StreamDecoder::drain) yields every record that is complete
/// so far. A **torn tail** — a chunk boundary mid-header, mid-table or
/// mid-record-cell — is never an error: the fragment stays buffered and
/// decoding resumes when the missing bytes arrive, so a reader polling
/// a file an encoder is still writing simply retries. Genuine
/// malformation (bad magic, unsupported version, non-UTF-8 table
/// entries, reserved flag bits) still fails hard, exactly like
/// [`Reader::new`].
///
/// After a segment's promised record count is consumed the decoder
/// expects the next bytes to start a fresh header, so concatenated
/// PTBIN streams — the natural wire form of a long-running sniffer that
/// flushes one [`Encoder`] per batch — decode as one record sequence
/// ([`segments`](StreamDecoder::segments) counts the headers).
///
/// Memory is bounded by one incomplete element (header + string table,
/// or one record cell) plus the current segment's string table —
/// consumed input bytes are dropped on every drain; the raw stream is
/// never held whole.
///
/// ```
/// use tracer_core::binfmt;
///
/// let text = "1000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 42\n";
/// let bin = binfmt::encode_text(text, 1)?;
/// let mut dec = binfmt::StreamDecoder::new();
/// dec.push(&bin[..bin.len() - 3]); // torn mid-cell
/// assert_eq!(dec.drain()?.len(), 0);
/// assert!(!dec.is_clean()); // a fragment is pending, not an error
/// dec.push(&bin[bin.len() - 3..]);
/// assert_eq!(dec.drain()?.len(), 1);
/// assert!(dec.is_clean());
/// # Ok::<(), tracer_core::TraceError>(())
/// ```
#[derive(Debug, Default)]
pub struct StreamDecoder {
    /// Unconsumed input bytes (compacted on every drain).
    buf: Vec<u8>,
    /// Current segment's string table, owned so `buf` can be shed.
    strings: Vec<String>,
    /// Records the current segment's header promised but which have
    /// not been decoded yet; `None` while waiting for the next header.
    remaining: Option<u64>,
    /// Completed segment headers parsed so far.
    segments: u64,
    /// Records decoded so far, across segments.
    records: u64,
    interner: Interner,
}

impl StreamDecoder {
    /// Creates a decoder expecting the start of a PTBIN stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the source. Call
    /// [`drain`](StreamDecoder::drain) to decode.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered for a not-yet-complete element (torn tail); zero
    /// when the last drain consumed everything pushed.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// True when the stream may end here cleanly: no torn fragment is
    /// buffered and no promised record is missing. At a source's final
    /// EOF, `!is_clean()` means the tail was truncated mid-element.
    pub fn is_clean(&self) -> bool {
        self.buf.is_empty() && self.remaining.is_none_or(|r| r == 0)
    }

    /// Completed segment headers decoded so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Records decoded so far, across segments.
    pub fn records_decoded(&self) -> u64 {
        self.records
    }

    /// Tries to parse a segment header (+ string table + record count)
    /// at the front of `buf`. Returns the consumed byte count and the
    /// promised record count, or `None` when more bytes are needed.
    fn try_header(&mut self) -> Result<Option<(usize, u64)>, TraceError> {
        let buf = &self.buf;
        if buf.len() < MAGIC.len() {
            return Ok(None);
        }
        if !is_ptbin(buf) {
            return Err(err("bad magic (not a PTBIN stream)"));
        }
        let Some(head) = buf.get(4..HEADER_BYTES + 4) else {
            return Ok(None);
        };
        let version = u16::from_le_bytes(head[0..2].try_into().unwrap());
        if version != VERSION {
            return Err(err(format!(
                "unsupported version {version} (expected {VERSION})"
            )));
        }
        let hflags = u16::from_le_bytes(head[2..4].try_into().unwrap());
        if hflags != 0 {
            return Err(err(format!("unknown header flags {hflags:#06x}")));
        }
        let nstrings = u32::from_le_bytes(head[4..8].try_into().unwrap()) as usize;
        let mut pos = HEADER_BYTES + 4;
        let mut strings = Vec::with_capacity(nstrings.min(1 << 16));
        for _ in 0..nstrings {
            let Some(len_bytes) = buf.get(pos..pos + 2) else {
                return Ok(None);
            };
            let len = u16::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
            pos += 2;
            let Some(raw) = buf.get(pos..pos + len) else {
                return Ok(None);
            };
            let s = std::str::from_utf8(raw)
                .map_err(|_| err("string table entry is not UTF-8"))?
                .to_owned();
            pos += len;
            strings.push(s);
        }
        let Some(count_bytes) = buf.get(pos..pos + 8) else {
            return Ok(None);
        };
        let count = u64::from_le_bytes(count_bytes.try_into().unwrap());
        pos += 8;
        self.strings = strings;
        Ok(Some((pos, count)))
    }

    /// Decodes every record that is complete so far, consuming its
    /// bytes. A torn tail stays buffered for the next push + drain.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Config`] for genuinely malformed input —
    /// the same conditions as [`Reader::new`] / [`Reader::get`], minus
    /// truncation, which is retriable here. After an error the decoder
    /// is poisoned; recover by starting a fresh one on a fresh stream.
    pub fn drain(&mut self) -> Result<Vec<RawRecord>, TraceError> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        loop {
            match self.remaining {
                None | Some(0) => {
                    // Between segments: drop consumed bytes, then try
                    // to parse the next header at the front.
                    if pos > 0 {
                        self.buf.drain(..pos);
                        pos = 0;
                    }
                    if self.buf.is_empty() {
                        break;
                    }
                    match self.try_header()? {
                        None => break,
                        Some((consumed, count)) => {
                            self.buf.drain(..consumed);
                            self.remaining = Some(count);
                            self.segments += 1;
                        }
                    }
                }
                Some(n) => {
                    let StreamDecoder {
                        buf,
                        strings,
                        interner,
                        ..
                    } = &mut *self;
                    let Some(cell) = buf.get(pos..pos + RECORD_BYTES) else {
                        break;
                    };
                    let r =
                        decode_cell(cell, &|idx| strings.get(idx as usize).map(|s| s.as_str()))?;
                    out.push(r.to_owned_interned(interner));
                    pos += RECORD_BYTES;
                    self.remaining = Some(n - 1);
                    self.records += 1;
                }
            }
        }
        if pos > 0 {
            self.buf.drain(..pos);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::parse_log;

    const SAMPLE: &str = "\
1000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 42
1005 app java 9 12 RECEIVE 10.0.0.1:80-10.0.0.2:8009 42 seq=0
1010 app java 9 12 SEND 10.0.0.2:8009-10.0.0.1:80 17 seq=100 retrans
1020 db mysqld 3 3 RECEIVE 10.0.0.2:3306-10.0.0.3:9000 9 retrans
";

    fn sample_records() -> Vec<RawRecord> {
        parse_log(SAMPLE).unwrap()
    }

    #[test]
    fn round_trips_v1_and_v2_records() {
        let records = sample_records();
        let bin = encode_records(&records).unwrap();
        assert!(is_ptbin(&bin));
        let decoded = decode_records(&bin).unwrap();
        assert_eq!(records, decoded);
    }

    #[test]
    fn round_trip_renders_byte_identical_text() {
        let records = sample_records();
        let bin = encode_records(&records).unwrap();
        let rendered: String = decode_refs(&bin)
            .unwrap()
            .iter()
            .map(|r| format!("{r}\n"))
            .collect();
        assert_eq!(rendered, SAMPLE);
    }

    #[test]
    fn encode_text_matches_encode_records() {
        let via_text = encode_text(SAMPLE, 1).unwrap();
        let via_records = encode_records(&sample_records()).unwrap();
        assert_eq!(via_text, via_records);
        // And the parallel ingest front-end produces the same stream.
        assert_eq!(encode_text(SAMPLE, 3).unwrap(), via_records);
    }

    #[test]
    fn string_table_interns_duplicates() {
        let bin = encode_records(&sample_records()).unwrap();
        let reader = Reader::new(&bin).unwrap();
        // web/httpd/app/java/db/mysqld — six distinct strings for four
        // records with eight string fields.
        assert_eq!(reader.string_count(), 6);
        assert_eq!(reader.len(), 4);
    }

    #[test]
    fn parallel_decode_matches_sequential_for_every_thread_count() {
        let records = sample_records();
        let bin = encode_records(&records).unwrap();
        let seq = decode_refs(&bin).unwrap();
        for threads in [0, 1, 2, 3, 4, 7] {
            let par = decode_refs_parallel(&bin, threads).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_stream_round_trips() {
        let bin = encode_records(&[]).unwrap();
        let reader = Reader::new(&bin).unwrap();
        assert!(reader.is_empty());
        assert_eq!(decode_refs(&bin).unwrap(), Vec::new());
    }

    #[test]
    fn rejects_bad_magic_version_flags_and_truncation() {
        let bin = encode_records(&sample_records()).unwrap();

        let mut bad_magic = bin.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Reader::new(&bad_magic),
            Err(TraceError::Config(m)) if m.contains("magic")
        ));

        let mut bad_version = bin.clone();
        bad_version[4] = 9;
        assert!(matches!(
            Reader::new(&bad_version),
            Err(TraceError::Config(m)) if m.contains("version")
        ));

        let mut bad_flags = bin.clone();
        bad_flags[6] = 1;
        assert!(matches!(
            Reader::new(&bad_flags),
            Err(TraceError::Config(m)) if m.contains("header flags")
        ));

        for cut in [3, HEADER_BYTES, bin.len() - 1] {
            assert!(Reader::new(&bin[..cut]).is_err(), "cut={cut}");
        }

        let mut trailing = bin.clone();
        trailing.push(0);
        assert!(matches!(
            Reader::new(&trailing),
            Err(TraceError::Config(m)) if m.contains("trailing")
        ));
    }

    #[test]
    fn rejects_bad_record_flags_and_string_indices() {
        let records = sample_records();
        let bin = encode_records(&records[..1]).unwrap();
        let record_at = bin.len() - RECORD_BYTES;

        let mut bad_flags = bin.clone();
        bad_flags[record_at + 24] = 0x80;
        assert!(matches!(
            decode_refs(&bad_flags),
            Err(TraceError::Config(m)) if m.contains("record flags")
        ));

        let mut bad_index = bin.clone();
        bad_index[record_at + 8..record_at + 12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_refs(&bad_index),
            Err(TraceError::Config(m)) if m.contains("string index")
        ));
    }

    #[test]
    fn seq_zero_is_distinct_from_no_seq() {
        let v2 = "1000 a b 1 1 SEND 10.0.0.1:80-10.0.0.2:90 5 seq=0\n";
        let v1 = "1000 a b 1 1 SEND 10.0.0.1:80-10.0.0.2:90 5\n";
        for text in [v2, v1] {
            let bin = encode_text(text, 1).unwrap();
            let decoded = decode_refs(&bin).unwrap();
            let rendered = format!("{}\n", decoded[0]);
            assert_eq!(rendered, text);
        }
    }

    #[test]
    fn oversized_string_is_rejected() {
        let long = "h".repeat(usize::from(u16::MAX) + 1);
        let line = format!("1000 {long} b 1 1 SEND 10.0.0.1:80-10.0.0.2:90 5");
        let r = RawRecordRef::parse_line(&line).unwrap();
        assert!(encode_refs(&[r]).is_err());
    }

    #[test]
    fn stream_decoder_matches_one_shot_for_every_cut_point() {
        // The torn-tail contract, exhaustively: splitting the stream at
        // EVERY byte boundary — mid-magic, mid-table, mid-count,
        // mid-cell — and pushing the halves separately must decode the
        // exact records a one-shot parse yields, with no error at the
        // cut.
        let records = sample_records();
        let bin = encode_records(&records).unwrap();
        let one_shot = decode_records(&bin).unwrap();
        for cut in 0..=bin.len() {
            let mut dec = StreamDecoder::new();
            let mut got = Vec::new();
            dec.push(&bin[..cut]);
            got.extend(dec.drain().unwrap_or_else(|e| panic!("cut={cut}: {e}")));
            if cut > 0 && cut < bin.len() {
                assert!(!dec.is_clean(), "cut={cut}: missing bytes must be pending");
            }
            dec.push(&bin[cut..]);
            got.extend(dec.drain().unwrap_or_else(|e| panic!("cut={cut}: {e}")));
            assert_eq!(got, one_shot, "cut={cut}");
            assert!(dec.is_clean(), "cut={cut}");
            assert_eq!(dec.pending_bytes(), 0, "cut={cut}");
        }
    }

    #[test]
    fn stream_decoder_handles_concatenated_segments_and_tiny_chunks() {
        // Two encoder flushes back to back — each with its own header
        // and (different) string table — pushed one byte at a time,
        // decode as one record sequence.
        let records = sample_records();
        let first = encode_records(&records[..2]).unwrap();
        let second = encode_records(&records[2..]).unwrap();
        let wire: Vec<u8> = [first, second].concat();
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        for b in &wire {
            dec.push(std::slice::from_ref(b));
            got.extend(dec.drain().unwrap());
        }
        assert_eq!(got, records);
        assert_eq!(dec.segments(), 2);
        assert_eq!(dec.records_decoded(), records.len() as u64);
        assert!(dec.is_clean());
    }

    #[test]
    fn stream_decoder_reports_torn_final_record() {
        let bin = encode_records(&sample_records()).unwrap();
        let mut dec = StreamDecoder::new();
        dec.push(&bin[..bin.len() - 1]);
        let got = dec.drain().unwrap();
        assert_eq!(got.len(), 3, "the torn final cell must not decode");
        assert!(!dec.is_clean(), "a truncated tail is pending, not clean");
        assert!(dec.pending_bytes() > 0);
    }

    #[test]
    fn stream_decoder_still_rejects_malformation() {
        let bin = encode_records(&sample_records()).unwrap();
        let mut bad_magic = bin.clone();
        bad_magic[0] = b'X';
        let mut dec = StreamDecoder::new();
        dec.push(&bad_magic);
        assert!(matches!(
            dec.drain(),
            Err(TraceError::Config(m)) if m.contains("magic")
        ));

        let mut bad_version = bin.clone();
        bad_version[4] = 9;
        let mut dec = StreamDecoder::new();
        dec.push(&bad_version);
        assert!(matches!(
            dec.drain(),
            Err(TraceError::Config(m)) if m.contains("version")
        ));

        let record_at = bin.len() - RECORD_BYTES;
        let mut bad_flags = bin;
        bad_flags[record_at + 24] = 0x80;
        let mut dec = StreamDecoder::new();
        dec.push(&bad_flags);
        assert!(matches!(
            dec.drain(),
            Err(TraceError::Config(m)) if m.contains("record flags")
        ));
    }

    #[test]
    fn compactness_beats_text() {
        // Header + string table amortize away: over a realistic corpus
        // the fixed 53-byte records undercut the ~60-byte text lines.
        let mut text = String::new();
        for i in 0..500u32 {
            text.push_str(&format!(
                "{} web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 {} seq={}\n",
                1_000_000 + u64::from(i) * 1_000,
                40 + i % 100,
                u64::from(i) * 64,
            ));
        }
        let bin = encode_text(&text, 1).unwrap();
        assert!(
            bin.len() < text.len(),
            "binary {} bytes vs text {} bytes",
            bin.len(),
            text.len()
        );
    }
}
