//! BEGIN/END synthesis from access points (§3.1).
//!
//! "BEGIN or END activities are distinguished according to the ports of
//! the communication channels. For example, the RECEIVE activity from a
//! client to the web server's port 80 means the START of a request, and
//! the SEND activity in the same connection with opposite direction means
//! the STOP of a request."
//!
//! [`AccessPointSpec`] describes the service's *access points* (frontend
//! ports) and the set of IPs that are internal to the service. The
//! [`Classifier`] turns [`RawRecord`]s into typed
//! [`crate::activity::Activity`] values:
//!
//! * RECEIVE whose destination is an access point and whose source IP is
//!   **not** internal → [`ActivityType::Begin`],
//! * SEND whose source is an access point and whose destination IP is
//!   **not** internal → [`ActivityType::End`],
//! * everything else keeps its kernel-level type.
//!
//! Chunked client requests/responses produce several consecutive
//! BEGIN/END activities on the same channel; the engine merges those by
//! message size exactly like interior SEND segments (§4.2).

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use crate::activity::{Activity, ActivityType, Channel, ContextId};
use crate::intern::Interner;
use crate::raw::{RawOp, RawRecord, RawRecordRef};

/// Which frontend ports constitute request entry points, and which IPs
/// belong to the service itself.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessPointSpec {
    frontend_ports: BTreeSet<u16>,
    internal_ips: BTreeSet<Ipv4Addr>,
}

impl AccessPointSpec {
    /// Constructs a spec from frontend ports and internal service IPs.
    ///
    /// # Examples
    ///
    /// ```
    /// use tracer_core::AccessPointSpec;
    /// let spec = AccessPointSpec::new([80, 8080], ["10.0.0.1".parse().unwrap()]);
    /// assert!(spec.is_frontend_port(80));
    /// assert!(!spec.is_internal("192.168.0.7".parse().unwrap()));
    /// ```
    pub fn new(
        frontend_ports: impl IntoIterator<Item = u16>,
        internal_ips: impl IntoIterator<Item = Ipv4Addr>,
    ) -> Self {
        AccessPointSpec {
            frontend_ports: frontend_ports.into_iter().collect(),
            internal_ips: internal_ips.into_iter().collect(),
        }
    }

    /// Adds a frontend port.
    pub fn add_frontend_port(&mut self, port: u16) -> &mut Self {
        self.frontend_ports.insert(port);
        self
    }

    /// Adds an internal service IP.
    pub fn add_internal_ip(&mut self, ip: Ipv4Addr) -> &mut Self {
        self.internal_ips.insert(ip);
        self
    }

    /// Whether `port` is a request entry point.
    pub fn is_frontend_port(&self, port: u16) -> bool {
        self.frontend_ports.contains(&port)
    }

    /// Whether `ip` belongs to the service.
    pub fn is_internal(&self, ip: Ipv4Addr) -> bool {
        self.internal_ips.contains(&ip)
    }

    /// True when no frontend port is configured (all activities keep
    /// their kernel-level types; no CAG will ever complete).
    pub fn is_empty(&self) -> bool {
        self.frontend_ports.is_empty()
    }

    /// The configured frontend ports, in ascending order (stable, so
    /// a spec round-trips bit-exactly through serialization).
    pub fn frontend_ports(&self) -> impl Iterator<Item = u16> + '_ {
        self.frontend_ports.iter().copied()
    }

    /// The configured internal service IPs, in ascending order.
    pub fn internal_ips(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.internal_ips.iter().copied()
    }
}

/// Transforms raw TCP_TRACE records into typed activities.
///
/// Stateless: the BEGIN/END decision depends only on the record and the
/// spec, which is what makes the transformation robust to record loss.
#[derive(Debug, Clone)]
pub struct Classifier {
    spec: AccessPointSpec,
}

impl Classifier {
    /// Constructs a classifier for a service description.
    pub fn new(spec: AccessPointSpec) -> Self {
        Classifier { spec }
    }

    /// A shared view of the spec.
    pub fn spec(&self) -> &AccessPointSpec {
        &self.spec
    }

    /// The §3.1 type transformation alone, shared by the owned and
    /// borrowing classification paths.
    #[inline]
    fn classify_op(
        &self,
        op: RawOp,
        src: crate::activity::EndpointV4,
        dst: crate::activity::EndpointV4,
    ) -> ActivityType {
        match op {
            RawOp::Receive
                if self.spec.is_frontend_port(dst.port) && !self.spec.is_internal(src.ip) =>
            {
                ActivityType::Begin
            }
            RawOp::Send
                if self.spec.is_frontend_port(src.port) && !self.spec.is_internal(dst.ip) =>
            {
                ActivityType::End
            }
            RawOp::Send => ActivityType::Send,
            RawOp::Receive => ActivityType::Receive,
        }
    }

    /// Transforms one raw record into a typed activity (§3.1).
    pub fn classify(&self, r: &RawRecord) -> Activity {
        Activity {
            ty: self.classify_op(r.op, r.src, r.dst),
            ts: r.ts,
            ctx: r.context(),
            channel: r.channel(),
            size: r.size,
            tag: r.tag,
            seq: r.seq,
        }
    }

    /// Transforms one **borrowed** raw record into a typed activity,
    /// interning the hostname and program so the zero-copy ingest path
    /// allocates nothing per record in steady state.
    pub fn classify_ref(&self, r: &RawRecordRef<'_>, interner: &mut Interner) -> Activity {
        Activity {
            ty: self.classify_op(r.op, r.src, r.dst),
            ts: r.ts,
            ctx: ContextId {
                hostname: interner.intern(r.hostname),
                program: interner.intern(r.program),
                pid: r.pid,
                tid: r.tid,
            },
            channel: Channel::new(r.src, r.dst),
            size: r.size,
            tag: r.tag,
            seq: r.seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawRecord;

    fn spec() -> AccessPointSpec {
        AccessPointSpec::new(
            [80],
            ["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap()],
        )
    }

    fn rec(line: &str) -> RawRecord {
        RawRecord::parse_line(line).unwrap()
    }

    #[test]
    fn receive_from_client_on_frontend_is_begin() {
        let c = Classifier::new(spec());
        let a = c.classify(&rec(
            "1 web httpd 1 1 RECEIVE 192.168.0.9:5000-10.0.0.1:80 10",
        ));
        assert_eq!(a.ty, ActivityType::Begin);
    }

    #[test]
    fn send_to_client_on_frontend_is_end() {
        let c = Classifier::new(spec());
        let a = c.classify(&rec("1 web httpd 1 1 SEND 10.0.0.1:80-192.168.0.9:5000 10"));
        assert_eq!(a.ty, ActivityType::End);
    }

    #[test]
    fn internal_traffic_keeps_kernel_types() {
        let c = Classifier::new(spec());
        let s = c.classify(&rec("1 web httpd 1 1 SEND 10.0.0.1:4001-10.0.0.2:9000 10"));
        assert_eq!(s.ty, ActivityType::Send);
        let r = c.classify(&rec(
            "1 app java 2 2 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 10",
        ));
        assert_eq!(r.ty, ActivityType::Receive);
    }

    #[test]
    fn internal_client_of_frontend_port_is_not_a_begin() {
        // A service component calling back into the frontend (e.g. an
        // internal health check) must not open a new CAG.
        let c = Classifier::new(spec());
        let a = c.classify(&rec("1 web httpd 1 1 RECEIVE 10.0.0.2:5000-10.0.0.1:80 10"));
        assert_eq!(a.ty, ActivityType::Receive);
    }

    #[test]
    fn frontend_port_on_non_frontend_direction() {
        // Traffic *from* port 80 to an internal IP stays SEND.
        let c = Classifier::new(spec());
        let a = c.classify(&rec("1 web httpd 1 1 SEND 10.0.0.1:80-10.0.0.2:9000 10"));
        assert_eq!(a.ty, ActivityType::Send);
    }

    #[test]
    fn tags_and_attributes_are_preserved() {
        let c = Classifier::new(spec());
        let mut r = rec("7 web httpd 3 4 RECEIVE 192.168.0.9:5000-10.0.0.1:80 99");
        r.tag = 1234;
        let a = c.classify(&r);
        assert_eq!(a.tag, 1234);
        assert_eq!(a.size, 99);
        assert_eq!(a.ts.as_nanos(), 7);
        assert_eq!(a.ctx.pid, 3);
    }

    #[test]
    fn classify_ref_matches_classify() {
        use crate::raw::RawRecordRef;
        let c = Classifier::new(spec());
        let mut interner = Interner::new();
        for line in [
            "1 web httpd 1 1 RECEIVE 192.168.0.9:5000-10.0.0.1:80 10",
            "1 web httpd 1 1 SEND 10.0.0.1:80-192.168.0.9:5000 10",
            "1 web httpd 1 1 SEND 10.0.0.1:4001-10.0.0.2:9000 10",
            "2 app java 2 2 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 10",
        ] {
            let owned = c.classify(&rec(line));
            let via_ref = c.classify_ref(&RawRecordRef::parse_line(line).unwrap(), &mut interner);
            assert_eq!(owned, via_ref, "{line}");
        }
        // Interning is effective: both web records share one hostname Arc.
        assert_eq!(interner.len(), 4); // web, httpd, app, java
    }

    #[test]
    fn empty_spec_classifies_everything_as_kernel_types() {
        let c = Classifier::new(AccessPointSpec::default());
        assert!(c.spec().is_empty());
        let a = c.classify(&rec(
            "1 web httpd 1 1 RECEIVE 192.168.0.9:5000-10.0.0.1:80 10",
        ));
        assert_eq!(a.ty, ActivityType::Receive);
    }
}
