//! # tracer-core — the PreciseTracer correlation engine
//!
//! This crate implements the primary contribution of *"Precise Request
//! Tracing and Performance Debugging for Multi-tier Services of Black
//! Boxes"* (Zhang et al., DSN 2009): a **precise** (non-probabilistic)
//! request tracing algorithm for multi-tier services treated as black
//! boxes, together with the **component activity graph (CAG)**
//! abstraction used for end-to-end performance debugging.
//!
//! The tracer consumes only *application-independent* knowledge — local
//! timestamps, end-to-end TCP channels and process/thread contexts — as
//! produced by a kernel-level probe (the paper's `TCP_TRACE` SystemTap
//! module). Records in the exact `TCP_TRACE` text format are parsed by
//! [`raw::RawRecord`]; a byte-accurate simulated probe lives in the
//! companion `multitier` crate.
//!
//! ## Pipeline
//!
//! ```text
//! Source ─→ ingest (range dedup) ─→ access::Classifier ─→ filter::FilterSet ─→ Ranker ─→ Engine ─→ CAGs
//!            (v2 seq= arithmetic)   (§3.1 transformation) (noise attr filters)  (§4.1)     (§4.2)   (§3.2)
//! ```
//!
//! The public entry point is [`pipeline::Pipeline`]: one
//! [`pipeline::PipelineConfig`] (correlation knobs + a
//! [`pipeline::Mode`]: batch, streaming or sharded) and one
//! [`pipeline::Source`] (owned records, zero-copy text, a text log
//! path, or a [`binfmt`] PTBIN binary path), run through a single
//! `builder → run(source)` path. The legacy `Correlator` /
//! `StreamingCorrelator` / `ShardedCorrelator` shims have been
//! removed; the same engines now run only behind the pipeline facade.
//!
//! * [`ranker::Ranker`] — per-node queues sorted by local clocks, a
//!   sliding time window, candidate selection Rules 1 & 2 with the
//!   `BEGIN < SEND < END < RECEIVE` priority, `is_noise` discarding and
//!   concurrency-disturbance head swapping (§4.1, §4.3).
//! * [`engine::Engine`] — CAG construction with the `mmap`/`cmap` index
//!   maps, n-to-n SEND/RECEIVE segment merging by message size, and the
//!   thread-reuse same-CAG check (§4.2, Fig. 3/4).
//! * [`pattern`] — isomorphism classes of CAGs (causal path patterns) and
//!   averaged causal paths (§3.2).
//! * [`analysis`] — latency percentages of components and differential
//!   diagnosis, the quantities plotted in Figs. 15 and 17.
//!
//! ## Quick example
//!
//! ```
//! use tracer_core::prelude::*;
//!
//! # fn main() -> Result<(), TraceError> {
//! // Two nodes: a front end (10.0.0.1:80) and a backend (10.0.0.2:9000).
//! let log = "\
//! 1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120
//! 2000 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:9000 64
//! 2500 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 64
//! 4000 app java 9 21 SEND 10.0.0.2:9000-10.0.0.1:4001 256
//! 4400 web httpd 7 7 RECEIVE 10.0.0.2:9000-10.0.0.1:4001 256
//! 5000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512
//! ";
//! let access = AccessPointSpec::new([80], ["10.0.0.1".parse().unwrap(),
//!                                          "10.0.0.2".parse().unwrap()]);
//! let output = Pipeline::new(PipelineConfig::new(access))?.run(Source::text(log))?;
//! assert_eq!(output.cags.len(), 1);
//! assert_eq!(output.cags[0].vertices.len(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod activity;
pub mod analysis;
pub mod binfmt;
pub mod cag;
pub mod correlator;
pub mod dist;
pub mod dot;
pub mod engine;
pub mod error;
pub mod fasthash;
pub mod filter;
pub mod ingest;
pub mod intern;
pub mod metrics;
pub mod pattern;
pub mod pipeline;
pub mod ranker;
pub mod raw;
pub mod serve;
pub mod shard;
pub mod spill;

pub use access::AccessPointSpec;
pub use activity::{Activity, ActivityType, Channel, ContextId, EndpointV4, LocalTime, Nanos};
pub use analysis::{BreakdownReport, Diagnosis, DiffReport, SuspectKind};
pub use cag::{Cag, Component, EdgeKind, Vertex};
pub use correlator::{
    CorrelationOutput, CorrelatorConfig, EngineOptions, RankerOptions, WindowPolicy,
};
pub use dist::{serve_router, RouterTransport, MAX_ROUTERS};
pub use engine::Engine;
pub use error::TraceError;
pub use filter::{FilterRule, FilterSet};
pub use ingest::{parse_log_parallel, parse_refs_parallel};
pub use intern::Interner;
pub use metrics::CorrelatorMetrics;
pub use pattern::{AveragePath, PatternAggregator, PatternKey};
pub use pipeline::{Mode, Pipeline, PipelineConfig, PipelineSession, Source};
pub use ranker::Ranker;
pub use raw::{
    dedup_retransmissions, parse_log, parse_log_iter, RangeDedup, RawOp, RawRecord, RawRecordRef,
};
pub use serve::{
    ServeConfig, ServeKpi, ServeReport, ServeSink, Server, ShedPolicy, SourceKind, SourceReport,
    SourceSpec,
};
pub use spill::{sweep_process_spill_files, SpillFile, SpillFileStats, SPILL_FILE_PREFIX};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::access::AccessPointSpec;
    pub use crate::activity::{
        Activity, ActivityType, Channel, ContextId, EndpointV4, LocalTime, Nanos,
    };
    pub use crate::analysis::{BreakdownReport, Diagnosis, DiffReport, SuspectKind};
    pub use crate::cag::{Cag, Component, EdgeKind, Vertex};
    pub use crate::correlator::{
        CorrelationOutput, CorrelatorConfig, EngineOptions, RankerOptions, WindowPolicy,
    };
    pub use crate::dist::{serve_router, RouterTransport};
    pub use crate::error::TraceError;
    pub use crate::filter::{FilterRule, FilterSet};
    pub use crate::ingest::{parse_log_parallel, parse_refs_parallel};
    pub use crate::intern::Interner;
    pub use crate::metrics::CorrelatorMetrics;
    pub use crate::pattern::{AveragePath, PatternAggregator, PatternKey};
    pub use crate::pipeline::{Mode, Pipeline, PipelineConfig, PipelineSession, Source};
    pub use crate::raw::{
        dedup_retransmissions, parse_log, parse_log_iter, RangeDedup, RawOp, RawRecord,
        RawRecordRef,
    };
    pub use crate::serve::{
        ServeConfig, ServeKpi, ServeReport, ServeSink, Server, ShedPolicy, SourceKind,
        SourceReport, SourceSpec,
    };
}
