//! Parallel chunked ingest: whole-buffer parsing of `TCP_TRACE` logs
//! at hardware saturation.
//!
//! The single-threaded [`parse_log_iter`](crate::raw::parse_log_iter)
//! path tops out well below what the sharded correlator can drain, so
//! this module applies the one-billion-row-challenge recipe to the
//! probe log format:
//!
//! 1. the input is read (or handed over) as **one contiguous buffer** —
//!    no line-at-a-time I/O;
//! 2. the buffer is split into per-core **chunks aligned to record
//!    boundaries** (each nominal cut is snapped forward to just past
//!    the next `\n`, so a record straddling a cut belongs wholly to the
//!    chunk where its line starts);
//! 3. each chunk is scanned by a worker thread with byte loops
//!    (`str::find('\n')` lowers to `memchr`) and a **specialised field
//!    parser** that allocates nothing per record and validates no
//!    UTF-8 — string fields are borrowed sub-slices of the input,
//!    split on ASCII whitespace;
//! 4. the per-chunk record vectors are concatenated in chunk order, so
//!    the result is **record-for-record identical** to the sequential
//!    iterator.
//!
//! Equivalence with the sequential path is by construction: the fast
//! field parser accepts a strict subset of the grammar (plain decimal
//! digits, canonical dotted-quad IPv4, exact `SEND`/`RECEIVE`), and any
//! line outside that subset falls back to
//! [`RawRecordRef::parse_line`], which makes the accept/reject set —
//! including the error for the first malformed line — identical to
//! [`parse_log_iter`](crate::raw::parse_log_iter). Chunks are
//! text-ordered, so the first failing chunk holds the first failing
//! line.
//!
//! The [`Pipeline`](crate::pipeline::Pipeline) engages this module for
//! [`Source::path`](crate::pipeline::Source::path) inputs and for text
//! sources whenever `PipelineConfig::with_ingest_threads` asks for more
//! than one thread.

use std::net::Ipv4Addr;
use std::path::Path;

use crate::activity::{EndpointV4, LocalTime};
use crate::error::TraceError;
use crate::intern::Interner;
use crate::raw::{RawOp, RawRecord, RawRecordRef};

/// Upper bound on worker threads: beyond this the split overhead and
/// memory bandwidth dominate any parse win.
const MAX_THREADS: usize = 64;

/// Rough bytes-per-record estimate used only to pre-size result
/// vectors.
const BYTES_PER_RECORD_HINT: usize = 48;

/// Resolves a user-facing thread count: `0` means "one per available
/// core" (capped), anything else is clamped to [`MAX_THREADS`].
#[must_use]
pub fn resolve_threads(threads: usize) -> usize {
    let n = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    };
    n.clamp(1, MAX_THREADS)
}

/// Reads a whole log file into one buffer, mapping I/O failures onto
/// [`TraceError::Config`] (the error type stays `Clone`/`PartialEq`).
///
/// # Errors
///
/// Returns [`TraceError::Config`] when the file cannot be read or is
/// not valid UTF-8.
pub fn read_log_file(path: &Path) -> Result<String, TraceError> {
    std::fs::read_to_string(path)
        .map_err(|e| TraceError::config(format!("cannot read {}: {e}", path.display())))
}

/// Splits `text` into at most `chunks` byte spans, each ending just
/// past a `\n` (except the last, which ends at the buffer end), so no
/// record straddles a span boundary. Returns fewer spans than asked
/// when the text is short; never returns an empty span.
#[must_use]
pub fn chunk_spans(text: &str, chunks: usize) -> Vec<(usize, usize)> {
    let n = text.len();
    let chunks = chunks.max(1);
    let mut spans = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 1..=chunks {
        if start >= n {
            break;
        }
        let nominal = ((n as u128 * i as u128) / chunks as u128) as usize;
        let mut end = nominal.max(start);
        if i == chunks {
            end = n;
        } else if end < n {
            // Snap forward to just past the next record boundary.
            end = match text[end..].find('\n') {
                Some(j) => end + j + 1,
                None => n,
            };
        }
        if end > start {
            spans.push((start, end));
            start = end;
        }
    }
    spans
}

/// Parses one chunk with the same line discipline as
/// [`parse_log_iter`](crate::raw::parse_log_iter): split on `\n`, trim,
/// skip blanks and `#` comments, stop at the first malformed line.
fn parse_chunk<'a>(chunk: &'a str, out: &mut Vec<RawRecordRef<'a>>) -> Result<(), TraceError> {
    let mut rest = chunk;
    loop {
        let (line, next) = match rest.find('\n') {
            Some(i) => (&rest[..i], &rest[i + 1..]),
            None => (rest, ""),
        };
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('#') {
            out.push(parse_record(t)?);
        }
        if next.is_empty() {
            return Ok(());
        }
        rest = next;
    }
}

/// Parses one trimmed line: the specialised byte-loop parser first,
/// falling back to [`RawRecordRef::parse_line`] on anything outside
/// its strict subset so acceptance and errors match the sequential
/// path exactly.
#[inline]
fn parse_record(line: &str) -> Result<RawRecordRef<'_>, TraceError> {
    match parse_line_fast(line) {
        Some(r) => Ok(r),
        None => RawRecordRef::parse_line(line),
    }
}

/// Splits `s` into ASCII-whitespace-separated fields without the
/// iterator adapters of `split_ascii_whitespace` (same token set).
struct Fields<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Fields<'a> {
    #[inline]
    fn next(&mut self) -> Option<&'a str> {
        let b = self.s.as_bytes();
        let mut i = self.pos;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= b.len() {
            self.pos = i;
            return None;
        }
        let start = i;
        while i < b.len() && !b[i].is_ascii_whitespace() {
            i += 1;
        }
        self.pos = i;
        Some(&self.s[start..i])
    }
}

/// Plain decimal `u64`: digits only (no sign, which the fallback
/// handles), with overflow checking.
#[inline]
fn parse_u64(s: &str) -> Option<u64> {
    let b = s.as_bytes();
    if b.is_empty() {
        return None;
    }
    let mut v: u64 = 0;
    for &c in b {
        let d = c.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u64::from(d))?;
    }
    Some(v)
}

#[inline]
fn parse_u32(s: &str) -> Option<u32> {
    parse_u64(s).and_then(|v| u32::try_from(v).ok())
}

/// Canonical dotted-quad IPv4, matching `Ipv4Addr::from_str` exactly:
/// four decimal octets ≤ 255, no leading zeros, nothing else.
#[inline]
fn parse_ipv4(s: &str) -> Option<Ipv4Addr> {
    let mut octets = [0u8; 4];
    let mut parts = s.split('.');
    for o in &mut octets {
        let p = parts.next()?.as_bytes();
        if p.is_empty() || p.len() > 3 || (p.len() > 1 && p[0] == b'0') {
            return None;
        }
        let mut v: u32 = 0;
        for &c in p {
            let d = c.wrapping_sub(b'0');
            if d > 9 {
                return None;
            }
            v = v * 10 + u32::from(d);
        }
        if v > 255 {
            return None;
        }
        *o = v as u8;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(Ipv4Addr::from(octets))
}

/// `ip:port` endpoint; the port keeps `u16::from_str` semantics
/// (leading zeros allowed) minus the sign prefixes.
#[inline]
fn parse_endpoint(s: &str) -> Option<EndpointV4> {
    let (ip, port) = s.rsplit_once(':')?;
    let ip = parse_ipv4(ip)?;
    let port = parse_u64(port)?;
    let port = u16::try_from(port).ok()?;
    Some(EndpointV4::new(ip, port))
}

/// The byte-loop happy path. Returns `None` for anything outside the
/// strict grammar subset; the caller then re-parses with the sequential
/// parser so behaviour (accept set, record values, error text) is
/// identical by construction.
fn parse_line_fast(line: &str) -> Option<RawRecordRef<'_>> {
    let mut f = Fields { s: line, pos: 0 };
    let ts = parse_u64(f.next()?)?;
    let hostname = f.next()?;
    let program = f.next()?;
    let pid = parse_u32(f.next()?)?;
    let tid = parse_u32(f.next()?)?;
    let op = match f.next()? {
        "SEND" => RawOp::Send,
        "RECEIVE" => RawOp::Receive,
        _ => return None,
    };
    let chan = f.next()?;
    let (src, dst) = chan.split_once('-')?;
    let src = parse_endpoint(src)?;
    let dst = parse_endpoint(dst)?;
    let size = parse_u64(f.next()?)?;
    let mut retrans = false;
    let mut seq: Option<u64> = None;
    while let Some(attr) = f.next() {
        match attr {
            "retrans" if !retrans => retrans = true,
            a if a.starts_with("seq=") && seq.is_none() => {
                seq = Some(parse_u64(&a["seq=".len()..])?);
            }
            _ => return None,
        }
    }
    Some(RawRecordRef {
        ts: LocalTime::from_nanos(ts),
        hostname,
        program,
        pid,
        tid,
        op,
        src,
        dst,
        size,
        tag: 0,
        retrans,
        seq,
    })
}

/// Collects the per-chunk results in chunk (= text) order, so the
/// first chunk holding an error reports the first malformed line of
/// the whole input.
fn concat<T>(results: Vec<Result<Vec<T>, TraceError>>) -> Result<Vec<T>, TraceError> {
    let mut chunks = Vec::with_capacity(results.len());
    let mut total = 0usize;
    for r in results {
        let v = r?;
        total += v.len();
        chunks.push(v);
    }
    let mut out = Vec::with_capacity(total);
    for v in chunks {
        out.extend(v);
    }
    Ok(out)
}

/// Parses a whole log into borrowed [`RawRecordRef`]s using `threads`
/// worker threads (`0` = one per core). The result is record-for-record
/// identical to collecting
/// [`parse_log_iter`](crate::raw::parse_log_iter).
///
/// # Errors
///
/// Returns the first parse error encountered, identical to the
/// sequential path's.
///
/// # Examples
///
/// ```
/// use tracer_core::ingest::parse_refs_parallel;
/// let refs = parse_refs_parallel(
///     "# comment\n100 web httpd 1 1 SEND 10.0.0.1:80-10.0.0.9:5000 42\n",
///     4,
/// )?;
/// assert_eq!(refs.len(), 1);
/// assert_eq!(refs[0].size, 42);
/// # Ok::<(), tracer_core::TraceError>(())
/// ```
pub fn parse_refs_parallel(
    text: &str,
    threads: usize,
) -> Result<Vec<RawRecordRef<'_>>, TraceError> {
    let spans = chunk_spans(text, resolve_threads(threads));
    if spans.len() <= 1 {
        let mut out = Vec::with_capacity(text.len() / BYTES_PER_RECORD_HINT + 1);
        parse_chunk(text, &mut out)?;
        return Ok(out);
    }
    let results: Vec<Result<Vec<RawRecordRef<'_>>, TraceError>> = std::thread::scope(|s| {
        let handles: Vec<_> = spans
            .iter()
            .map(|&(a, b)| {
                let chunk = &text[a..b];
                s.spawn(move || {
                    let mut out = Vec::with_capacity(chunk.len() / BYTES_PER_RECORD_HINT + 1);
                    parse_chunk(chunk, &mut out).map(|()| out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest worker panicked"))
            .collect()
    });
    concat(results)
}

/// Parses a whole log into owned, interned [`RawRecord`]s using
/// `threads` worker threads (`0` = one per core). Each worker interns
/// into its own [`Interner`], so allocation stays proportional to
/// `distinct strings × chunks`, not to the record count; the records
/// are value-identical to [`parse_log`](crate::raw::parse_log)'s.
///
/// # Errors
///
/// Returns the first parse error encountered, identical to the
/// sequential path's.
pub fn parse_log_parallel(text: &str, threads: usize) -> Result<Vec<RawRecord>, TraceError> {
    let spans = chunk_spans(text, resolve_threads(threads));
    if spans.len() <= 1 {
        return crate::raw::parse_log(text);
    }
    let results: Vec<Result<Vec<RawRecord>, TraceError>> = std::thread::scope(|s| {
        let handles: Vec<_> = spans
            .iter()
            .map(|&(a, b)| {
                let chunk = &text[a..b];
                s.spawn(move || {
                    let mut refs = Vec::with_capacity(chunk.len() / BYTES_PER_RECORD_HINT + 1);
                    parse_chunk(chunk, &mut refs)?;
                    let mut interner = Interner::new();
                    Ok(refs
                        .iter()
                        .map(|r| r.to_owned_interned(&mut interner))
                        .collect())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest worker panicked"))
            .collect()
    });
    concat(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::parse_log_iter;

    fn sequential(text: &str) -> Result<Vec<RawRecordRef<'_>>, TraceError> {
        parse_log_iter(text).collect()
    }

    const SAMPLE: &str = "\
# comment line
1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120
2000 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:9000 64 seq=0

2500 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 64 seq=0 retrans
   4000 app java 9 21 SEND 10.0.0.2:9000-10.0.0.1:4001 256\t
5000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512 retrans seq=9
";

    #[test]
    fn parallel_matches_sequential_for_every_thread_count() {
        let want = sequential(SAMPLE).unwrap();
        for threads in 1..=8 {
            let got = parse_refs_parallel(SAMPLE, threads).unwrap();
            assert_eq!(got, want, "thread count {threads}");
        }
    }

    #[test]
    fn chunk_spans_cover_the_buffer_without_splitting_records() {
        for chunks in 1..=9 {
            let spans = chunk_spans(SAMPLE, chunks);
            assert_eq!(spans.first().map(|s| s.0), Some(0));
            assert_eq!(spans.last().map(|s| s.1), Some(SAMPLE.len()));
            for w in spans.windows(2) {
                assert_eq!(w[0].1, w[1].0, "spans must tile");
                assert_eq!(
                    SAMPLE.as_bytes()[w[0].1 - 1],
                    b'\n',
                    "interior span boundaries must sit just past a newline"
                );
            }
        }
    }

    #[test]
    fn trailing_partial_line_is_parsed() {
        let text = "1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42"; // no '\n'
        let got = parse_refs_parallel(text, 4).unwrap();
        assert_eq!(got, sequential(text).unwrap());
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn more_threads_than_lines_is_fine() {
        let text = "1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42\n";
        for threads in 1..=32 {
            assert_eq!(
                parse_refs_parallel(text, threads).unwrap(),
                sequential(text).unwrap()
            );
        }
        assert!(parse_refs_parallel("", 8).unwrap().is_empty());
        assert!(parse_refs_parallel("\n\n# only comments\n", 8)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn first_error_matches_the_sequential_one() {
        // Two bad lines in different prospective chunks: the reported
        // error must be the first in text order, as sequential parse
        // would report.
        let mut text = String::new();
        for i in 0..100 {
            if i == 23 || i == 77 {
                text.push_str(&format!("{i} bad line only five fields\n"));
            } else {
                text.push_str(&format!(
                    "{i} web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42\n"
                ));
            }
        }
        let want = sequential(&text).unwrap_err();
        for threads in [1, 2, 3, 8] {
            assert_eq!(parse_refs_parallel(&text, threads).unwrap_err(), want);
        }
    }

    #[test]
    fn fast_path_falls_back_on_grammar_edges() {
        // Each of these is accepted or rejected by the sequential
        // parser in a way the fast path cannot express — the fallback
        // must keep behaviour identical.
        let edge_lines = [
            "+1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42", // signed int
            "1000 web httpd 7 7 SEND 10.0.0.1:080-10.0.0.9:5000 42", // zero-padded port
            "1000 web httpd 7 7 SEND 10.0.0.01:80-10.0.0.9:5000 42", // zero-padded octet
            "1000 web httpd 7 7 SEND 10.0.0.256:80-10.0.0.9:5000 42", // octet overflow
            "1000 web httpd 7 7 send 10.0.0.1:80-10.0.0.9:5000 42",  // lowercase op
            "1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42 seq=+7", // signed seq
            "1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42 retrans retrans", // dup attr
            "1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42 extra", // trailing junk
            "99999999999999999999999 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42", // overflow
        ];
        for line in edge_lines {
            assert_eq!(
                parse_record(line),
                RawRecordRef::parse_line(line),
                "divergence on {line:?}"
            );
        }
    }

    #[test]
    fn owned_parallel_parse_matches_parse_log() {
        let want = crate::raw::parse_log(SAMPLE).unwrap();
        for threads in [1, 2, 4, 7] {
            assert_eq!(parse_log_parallel(SAMPLE, threads).unwrap(), want);
        }
    }

    #[test]
    fn resolve_threads_clamps() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(10_000), MAX_THREADS);
    }
}
