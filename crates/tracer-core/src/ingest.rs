//! Parallel chunked ingest: whole-buffer parsing of `TCP_TRACE` logs
//! at hardware saturation.
//!
//! The single-threaded [`parse_log_iter`](crate::raw::parse_log_iter)
//! path tops out well below what the sharded correlator can drain, so
//! this module applies the one-billion-row-challenge recipe to the
//! probe log format:
//!
//! 1. the input is read (or handed over) as **one contiguous buffer** —
//!    no line-at-a-time I/O;
//! 2. the buffer is split into per-core **chunks aligned to record
//!    boundaries** (each nominal cut is snapped forward to just past
//!    the next `\n`, so a record straddling a cut belongs wholly to the
//!    chunk where its line starts);
//! 3. each chunk is scanned by a worker thread with **SWAR (SIMD
//!    within a register) wide-word scanning**: newline and delimiter
//!    search examine eight bytes per `u64` load ([`find_byte`] /
//!    the whitespace scan in `Fields`), and decimal fields decode
//!    eight digits at a time with a branchless multiply-shift chain
//!    (`parse_u64`, the Lemire "parse eight digits" kernel) — all in
//!    safe Rust, the crate forbids `unsafe`. The **specialised field
//!    parser** allocates nothing per record and validates no UTF-8 —
//!    string fields are borrowed sub-slices of the input, split on
//!    ASCII whitespace;
//! 4. the per-chunk record vectors are concatenated in chunk order, so
//!    the result is **record-for-record identical** to the sequential
//!    iterator.
//!
//! Equivalence with the sequential path is by construction: the fast
//! field parser accepts a strict subset of the grammar (plain decimal
//! digits, canonical dotted-quad IPv4, exact `SEND`/`RECEIVE`), and any
//! line outside that subset falls back to
//! [`RawRecordRef::parse_line`], which makes the accept/reject set —
//! including the error for the first malformed line — identical to
//! [`parse_log_iter`](crate::raw::parse_log_iter). Chunks are
//! text-ordered, so the first failing chunk holds the first failing
//! line.
//!
//! The [`Pipeline`](crate::pipeline::Pipeline) engages this module for
//! [`Source::path`](crate::pipeline::Source::path) inputs and for text
//! sources whenever `PipelineConfig::with_ingest_threads` asks for more
//! than one thread.

use std::net::Ipv4Addr;
use std::path::Path;

use crate::activity::{EndpointV4, LocalTime};
use crate::error::TraceError;
use crate::intern::Interner;
use crate::raw::{RawOp, RawRecord, RawRecordRef};

/// Upper bound on worker threads: beyond this the split overhead and
/// memory bandwidth dominate any parse win.
const MAX_THREADS: usize = 64;

/// Rough bytes-per-record estimate used only to pre-size result
/// vectors.
const BYTES_PER_RECORD_HINT: usize = 48;

/// Resolves a user-facing thread count: `0` means "one per available
/// core" (capped), anything else is clamped to [`MAX_THREADS`].
#[must_use]
pub fn resolve_threads(threads: usize) -> usize {
    let n = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    };
    n.clamp(1, MAX_THREADS)
}

/// Reads a whole log file into one buffer, mapping I/O failures onto
/// [`TraceError::Config`] (the error type stays `Clone`/`PartialEq`).
///
/// Line endings are not normalised here: both the sequential and the
/// parallel scanners treat `\r\n` like `\n` (the `\r` is trimmed with
/// the rest of the surrounding whitespace) and parse a final record
/// with no trailing newline, so a CRLF log or a log cut mid-write
/// parses identically through every path.
///
/// # Errors
///
/// Returns [`TraceError::Config`] when the file cannot be read or is
/// not valid UTF-8.
pub fn read_log_file(path: &Path) -> Result<String, TraceError> {
    std::fs::read_to_string(path)
        .map_err(|e| TraceError::config(format!("cannot read {}: {e}", path.display())))
}

/// Splits a byte buffer read from a **live** text log at the last
/// newline: `(complete, tail)`, where `complete` ends just past the
/// final `\n` and `tail` is the torn final line the writer has not
/// finished yet (empty when the buffer ends on a newline).
///
/// The contract in [`read_log_file`]'s docs — "a log cut mid-write
/// parses identically" — holds only for a cut at a *line* boundary; a
/// cut mid-line yields a prefix that parses as a malformed (or worse,
/// silently shorter) record. A tailer that polls a growing file feeds
/// `complete` to the parser and carries `tail` over to the front of
/// its next read, making every torn tail retriable instead of an
/// error:
///
/// ```
/// use tracer_core::ingest::split_complete_lines;
///
/// let (done, torn) = split_complete_lines(b"1000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 42\n1005 app ja");
/// assert!(done.ends_with(b"42\n"));
/// assert_eq!(torn, b"1005 app ja");
/// ```
#[must_use]
pub fn split_complete_lines(buf: &[u8]) -> (&[u8], &[u8]) {
    match buf.iter().rposition(|&b| b == b'\n') {
        Some(i) => buf.split_at(i + 1),
        None => (&buf[..0], buf),
    }
}

// --- SWAR (SIMD-within-a-register) scanning primitives ----------------
//
// Everything below is safe Rust: eight-byte windows are read with
// `u64::from_le_bytes` on bounds-checked subslices, which the compiler
// lowers to single unaligned loads.

/// Every byte `0x01`.
const SWAR_LO: u64 = 0x0101_0101_0101_0101;
/// Every byte `0x80`.
const SWAR_HI: u64 = 0x8080_8080_8080_8080;

#[inline]
fn load_le(b: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(b[i..i + 8].try_into().unwrap())
}

/// Index of the first `needle` byte at or after position 0, eight
/// bytes per iteration. The classic `memchr` SWAR kernel: XOR with the
/// broadcast needle turns matches into zero bytes, and
/// `(z - 0x01…) & !z & 0x80…` flags zero bytes — borrows can only
/// flag bytes *above* a true match, so the lowest set flag is exact.
#[inline]
fn find_byte(b: &[u8], needle: u8) -> Option<usize> {
    let bcast = u64::from(needle) * SWAR_LO;
    let mut i = 0usize;
    while i + 8 <= b.len() {
        let z = load_le(b, i) ^ bcast;
        let hit = z.wrapping_sub(SWAR_LO) & !z & SWAR_HI;
        if hit != 0 {
            return Some(i + (hit.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    b[i..].iter().position(|&c| c == needle).map(|j| i + j)
}

/// Index of the first ASCII-whitespace byte at or after `from` (or
/// `b.len()`). The wide-word probe flags bytes `< 0x21` (a superset of
/// ASCII whitespace: the lowest flagged byte is exact, see
/// [`find_byte`]); the rare non-whitespace control byte inside a token
/// is verified out and scanning resumes one past it.
#[inline]
fn find_ws(b: &[u8], from: usize) -> usize {
    let mut i = from;
    while i + 8 <= b.len() {
        let w = load_le(b, i);
        let lt = w.wrapping_sub(SWAR_LO * 0x21) & !w & SWAR_HI;
        if lt != 0 {
            let j = i + (lt.trailing_zeros() / 8) as usize;
            if b[j].is_ascii_whitespace() {
                return j;
            }
            i = j + 1;
            continue;
        }
        i += 8;
    }
    while i < b.len() && !b[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// True when all eight bytes of `w` are ASCII digits (`0x30..=0x39`).
/// simdjson's digit-validity check: the high nibble of every byte must
/// be 3, and adding 6 must not carry into the high nibble (which it
/// does exactly for `0x3A..=0x3F`). A cross-byte carry can only occur
/// for bytes `>= 0xFA`, which already fail the first term.
#[inline]
fn all_digits(w: u64) -> bool {
    const NIB: u64 = 0xF0F0_F0F0_F0F0_F0F0;
    (w & NIB) | ((w.wrapping_add(0x0606_0606_0606_0606) & NIB) >> 4) == 0x3333_3333_3333_3333
}

/// Decodes eight ASCII digits (already validated by [`all_digits`])
/// into their numeric value with a branchless multiply-shift chain
/// (Lemire's `parse_eight_digits_swar`): digits combine into 2-digit
/// bytes, 4-digit 16-bit lanes, then the full 8-digit value.
#[inline]
fn eight_digits(w: u64) -> u64 {
    let v = w.wrapping_sub(0x3030_3030_3030_3030);
    let pairs = (v.wrapping_mul(1 + (10 << 8)) >> 8) & 0x00FF_00FF_00FF_00FF;
    let quads = (pairs.wrapping_mul(1 + (100 << 16)) >> 16) & 0x0000_FFFF_0000_FFFF;
    quads.wrapping_mul(1 + (10_000u64 << 32)) >> 32
}

/// Splits `text` into at most `chunks` byte spans, each ending just
/// past a `\n` (except the last, which ends at the buffer end), so no
/// record straddles a span boundary. Returns fewer spans than asked
/// when the text is short; never returns an empty span.
#[must_use]
pub fn chunk_spans(text: &str, chunks: usize) -> Vec<(usize, usize)> {
    let n = text.len();
    let chunks = chunks.max(1);
    let mut spans = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 1..=chunks {
        if start >= n {
            break;
        }
        let nominal = ((n as u128 * i as u128) / chunks as u128) as usize;
        let mut end = nominal.max(start);
        if i == chunks {
            end = n;
        } else if end < n {
            // Snap forward to just past the next record boundary (a
            // byte-wise SWAR search: a nominal cut may land inside a
            // multi-byte character, but `\n` never does, so every span
            // boundary is a character boundary).
            end = match find_byte(&text.as_bytes()[end..], b'\n') {
                Some(j) => end + j + 1,
                None => n,
            };
        }
        if end > start {
            spans.push((start, end));
            start = end;
        }
    }
    spans
}

/// Parses one chunk with the same line discipline as
/// [`parse_log_iter`](crate::raw::parse_log_iter): split on `\n`, trim,
/// skip blanks and `#` comments, stop at the first malformed line.
fn parse_chunk<'a>(chunk: &'a str, out: &mut Vec<RawRecordRef<'a>>) -> Result<(), TraceError> {
    let mut rest = chunk;
    loop {
        let (line, next) = match find_byte(rest.as_bytes(), b'\n') {
            Some(i) => (&rest[..i], &rest[i + 1..]),
            None => (rest, ""),
        };
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('#') {
            out.push(parse_record(t)?);
        }
        if next.is_empty() {
            return Ok(());
        }
        rest = next;
    }
}

/// Parses one trimmed line: the specialised byte-loop parser first,
/// falling back to [`RawRecordRef::parse_line`] on anything outside
/// its strict subset so acceptance and errors match the sequential
/// path exactly.
#[inline]
fn parse_record(line: &str) -> Result<RawRecordRef<'_>, TraceError> {
    match parse_line_fast(line) {
        Some(r) => Ok(r),
        None => RawRecordRef::parse_line(line),
    }
}

/// Splits `s` into ASCII-whitespace-separated fields without the
/// iterator adapters of `split_ascii_whitespace` (same token set).
struct Fields<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Fields<'a> {
    #[inline]
    fn next(&mut self) -> Option<&'a str> {
        let b = self.s.as_bytes();
        let mut i = self.pos;
        // Gap between fields: almost always a single space, so a byte
        // loop beats a wide probe here.
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= b.len() {
            self.pos = i;
            return None;
        }
        // Token body: wide-word delimiter search (both endpoints are
        // ASCII, hence character boundaries).
        let end = find_ws(b, i + 1);
        self.pos = end;
        Some(&self.s[i..end])
    }
}

/// Plain decimal `u64`: digits only (no sign, which the fallback
/// handles), with overflow checking. Eight digits decode per `u64`
/// load ([`eight_digits`]); the checked accumulate preserves the
/// overflow → `None` contract of the digit-at-a-time loop exactly
/// (for all-digit input both reject precisely when the value exceeds
/// `u64::MAX`).
#[inline]
fn parse_u64(s: &str) -> Option<u64> {
    let b = s.as_bytes();
    if b.is_empty() {
        return None;
    }
    let mut v: u64 = 0;
    let mut i = 0usize;
    while i + 8 <= b.len() {
        let w = load_le(b, i);
        if !all_digits(w) {
            return None;
        }
        v = v.checked_mul(100_000_000)?.checked_add(eight_digits(w))?;
        i += 8;
    }
    for &c in &b[i..] {
        let d = c.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u64::from(d))?;
    }
    Some(v)
}

#[inline]
fn parse_u32(s: &str) -> Option<u32> {
    parse_u64(s).and_then(|v| u32::try_from(v).ok())
}

/// Canonical dotted-quad IPv4, matching `Ipv4Addr::from_str` exactly:
/// four decimal octets ≤ 255, no leading zeros, nothing else.
#[inline]
fn parse_ipv4(s: &str) -> Option<Ipv4Addr> {
    let mut octets = [0u8; 4];
    let mut parts = s.split('.');
    for o in &mut octets {
        let p = parts.next()?.as_bytes();
        if p.is_empty() || p.len() > 3 || (p.len() > 1 && p[0] == b'0') {
            return None;
        }
        let mut v: u32 = 0;
        for &c in p {
            let d = c.wrapping_sub(b'0');
            if d > 9 {
                return None;
            }
            v = v * 10 + u32::from(d);
        }
        if v > 255 {
            return None;
        }
        *o = v as u8;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(Ipv4Addr::from(octets))
}

/// `ip:port` endpoint; the port keeps `u16::from_str` semantics
/// (leading zeros allowed) minus the sign prefixes.
#[inline]
fn parse_endpoint(s: &str) -> Option<EndpointV4> {
    let (ip, port) = s.rsplit_once(':')?;
    let ip = parse_ipv4(ip)?;
    let port = parse_u64(port)?;
    let port = u16::try_from(port).ok()?;
    Some(EndpointV4::new(ip, port))
}

/// The byte-loop happy path. Returns `None` for anything outside the
/// strict grammar subset; the caller then re-parses with the sequential
/// parser so behaviour (accept set, record values, error text) is
/// identical by construction.
fn parse_line_fast(line: &str) -> Option<RawRecordRef<'_>> {
    let mut f = Fields { s: line, pos: 0 };
    let ts = parse_u64(f.next()?)?;
    let hostname = f.next()?;
    let program = f.next()?;
    let pid = parse_u32(f.next()?)?;
    let tid = parse_u32(f.next()?)?;
    let op = match f.next()? {
        "SEND" => RawOp::Send,
        "RECEIVE" => RawOp::Receive,
        _ => return None,
    };
    let chan = f.next()?;
    let (src, dst) = chan.split_once('-')?;
    let src = parse_endpoint(src)?;
    let dst = parse_endpoint(dst)?;
    let size = parse_u64(f.next()?)?;
    let mut retrans = false;
    let mut seq: Option<u64> = None;
    while let Some(attr) = f.next() {
        match attr {
            "retrans" if !retrans => retrans = true,
            a if a.starts_with("seq=") && seq.is_none() => {
                seq = Some(parse_u64(&a["seq=".len()..])?);
            }
            _ => return None,
        }
    }
    Some(RawRecordRef {
        ts: LocalTime::from_nanos(ts),
        hostname,
        program,
        pid,
        tid,
        op,
        src,
        dst,
        size,
        tag: 0,
        retrans,
        seq,
    })
}

/// Collects the per-chunk results in chunk (= text) order, so the
/// first chunk holding an error reports the first malformed line of
/// the whole input.
fn concat<T>(results: Vec<Result<Vec<T>, TraceError>>) -> Result<Vec<T>, TraceError> {
    let mut chunks = Vec::with_capacity(results.len());
    let mut total = 0usize;
    for r in results {
        let v = r?;
        total += v.len();
        chunks.push(v);
    }
    let mut out = Vec::with_capacity(total);
    for v in chunks {
        out.extend(v);
    }
    Ok(out)
}

/// Parses a whole log into borrowed [`RawRecordRef`]s using `threads`
/// worker threads (`0` = one per core). The result is record-for-record
/// identical to collecting
/// [`parse_log_iter`](crate::raw::parse_log_iter).
///
/// # Errors
///
/// Returns the first parse error encountered, identical to the
/// sequential path's.
///
/// # Examples
///
/// ```
/// use tracer_core::ingest::parse_refs_parallel;
/// let refs = parse_refs_parallel(
///     "# comment\n100 web httpd 1 1 SEND 10.0.0.1:80-10.0.0.9:5000 42\n",
///     4,
/// )?;
/// assert_eq!(refs.len(), 1);
/// assert_eq!(refs[0].size, 42);
/// # Ok::<(), tracer_core::TraceError>(())
/// ```
pub fn parse_refs_parallel(
    text: &str,
    threads: usize,
) -> Result<Vec<RawRecordRef<'_>>, TraceError> {
    let spans = chunk_spans(text, resolve_threads(threads));
    if spans.len() <= 1 {
        let mut out = Vec::with_capacity(text.len() / BYTES_PER_RECORD_HINT + 1);
        parse_chunk(text, &mut out)?;
        return Ok(out);
    }
    let results: Vec<Result<Vec<RawRecordRef<'_>>, TraceError>> = std::thread::scope(|s| {
        let handles: Vec<_> = spans
            .iter()
            .map(|&(a, b)| {
                let chunk = &text[a..b];
                s.spawn(move || {
                    let mut out = Vec::with_capacity(chunk.len() / BYTES_PER_RECORD_HINT + 1);
                    parse_chunk(chunk, &mut out).map(|()| out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest worker panicked"))
            .collect()
    });
    concat(results)
}

/// Parses a whole log into owned, interned [`RawRecord`]s using
/// `threads` worker threads (`0` = one per core). Each worker interns
/// into its own [`Interner`], so allocation stays proportional to
/// `distinct strings × chunks`, not to the record count; the records
/// are value-identical to [`parse_log`](crate::raw::parse_log)'s.
///
/// # Errors
///
/// Returns the first parse error encountered, identical to the
/// sequential path's.
pub fn parse_log_parallel(text: &str, threads: usize) -> Result<Vec<RawRecord>, TraceError> {
    let spans = chunk_spans(text, resolve_threads(threads));
    if spans.len() <= 1 {
        return crate::raw::parse_log(text);
    }
    let results: Vec<Result<Vec<RawRecord>, TraceError>> = std::thread::scope(|s| {
        let handles: Vec<_> = spans
            .iter()
            .map(|&(a, b)| {
                let chunk = &text[a..b];
                s.spawn(move || {
                    let mut refs = Vec::with_capacity(chunk.len() / BYTES_PER_RECORD_HINT + 1);
                    parse_chunk(chunk, &mut refs)?;
                    let mut interner = Interner::new();
                    Ok(refs
                        .iter()
                        .map(|r| r.to_owned_interned(&mut interner))
                        .collect())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest worker panicked"))
            .collect()
    });
    concat(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::parse_log_iter;

    fn sequential(text: &str) -> Result<Vec<RawRecordRef<'_>>, TraceError> {
        parse_log_iter(text).collect()
    }

    const SAMPLE: &str = "\
# comment line
1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120
2000 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:9000 64 seq=0

2500 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 64 seq=0 retrans
   4000 app java 9 21 SEND 10.0.0.2:9000-10.0.0.1:4001 256\t
5000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512 retrans seq=9
";

    #[test]
    fn parallel_matches_sequential_for_every_thread_count() {
        let want = sequential(SAMPLE).unwrap();
        for threads in 1..=8 {
            let got = parse_refs_parallel(SAMPLE, threads).unwrap();
            assert_eq!(got, want, "thread count {threads}");
        }
    }

    #[test]
    fn chunk_spans_cover_the_buffer_without_splitting_records() {
        for chunks in 1..=9 {
            let spans = chunk_spans(SAMPLE, chunks);
            assert_eq!(spans.first().map(|s| s.0), Some(0));
            assert_eq!(spans.last().map(|s| s.1), Some(SAMPLE.len()));
            for w in spans.windows(2) {
                assert_eq!(w[0].1, w[1].0, "spans must tile");
                assert_eq!(
                    SAMPLE.as_bytes()[w[0].1 - 1],
                    b'\n',
                    "interior span boundaries must sit just past a newline"
                );
            }
        }
    }

    #[test]
    fn split_complete_lines_makes_every_cut_retriable() {
        // The live-tail contract, exhaustively: cut the log at EVERY
        // byte boundary, feed the complete-lines prefix plus a
        // carried-over tail, and the reassembled parse must equal the
        // one-shot parse — no cut may error or drop a record.
        let want = sequential(SAMPLE).unwrap();
        let bytes = SAMPLE.as_bytes();
        for cut in 0..=bytes.len() {
            let (done, torn) = split_complete_lines(&bytes[..cut]);
            assert_eq!(done.len() + torn.len(), cut);
            let mut reassembled = Vec::from(done);
            reassembled.extend_from_slice(torn);
            reassembled.extend_from_slice(&bytes[cut..]);
            assert_eq!(reassembled, bytes, "cut={cut}: no byte may be lost");
            // A tailer parses the complete prefix now and the carried
            // tail + remainder on the next poll.
            let head = std::str::from_utf8(done).unwrap();
            let mut tail = Vec::from(torn);
            tail.extend_from_slice(&bytes[cut..]);
            let tail = String::from_utf8(tail).unwrap();
            let mut got = sequential(head).unwrap_or_else(|e| panic!("cut={cut}: {e}"));
            got.extend(sequential(&tail).unwrap_or_else(|e| panic!("cut={cut}: {e}")));
            assert_eq!(got, want, "cut={cut}");
        }
    }

    #[test]
    fn trailing_partial_line_is_parsed() {
        let text = "1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42"; // no '\n'
        let got = parse_refs_parallel(text, 4).unwrap();
        assert_eq!(got, sequential(text).unwrap());
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn more_threads_than_lines_is_fine() {
        let text = "1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42\n";
        for threads in 1..=32 {
            assert_eq!(
                parse_refs_parallel(text, threads).unwrap(),
                sequential(text).unwrap()
            );
        }
        assert!(parse_refs_parallel("", 8).unwrap().is_empty());
        assert!(parse_refs_parallel("\n\n# only comments\n", 8)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn first_error_matches_the_sequential_one() {
        // Two bad lines in different prospective chunks: the reported
        // error must be the first in text order, as sequential parse
        // would report.
        let mut text = String::new();
        for i in 0..100 {
            if i == 23 || i == 77 {
                text.push_str(&format!("{i} bad line only five fields\n"));
            } else {
                text.push_str(&format!(
                    "{i} web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42\n"
                ));
            }
        }
        let want = sequential(&text).unwrap_err();
        for threads in [1, 2, 3, 8] {
            assert_eq!(parse_refs_parallel(&text, threads).unwrap_err(), want);
        }
    }

    #[test]
    fn fast_path_falls_back_on_grammar_edges() {
        // Each of these is accepted or rejected by the sequential
        // parser in a way the fast path cannot express — the fallback
        // must keep behaviour identical.
        let edge_lines = [
            "+1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42", // signed int
            "1000 web httpd 7 7 SEND 10.0.0.1:080-10.0.0.9:5000 42", // zero-padded port
            "1000 web httpd 7 7 SEND 10.0.0.01:80-10.0.0.9:5000 42", // zero-padded octet
            "1000 web httpd 7 7 SEND 10.0.0.256:80-10.0.0.9:5000 42", // octet overflow
            "1000 web httpd 7 7 send 10.0.0.1:80-10.0.0.9:5000 42",  // lowercase op
            "1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42 seq=+7", // signed seq
            "1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42 retrans retrans", // dup attr
            "1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42 extra", // trailing junk
            "99999999999999999999999 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42", // overflow
        ];
        for line in edge_lines {
            assert_eq!(
                parse_record(line),
                RawRecordRef::parse_line(line),
                "divergence on {line:?}"
            );
        }
    }

    #[test]
    fn owned_parallel_parse_matches_parse_log() {
        let want = crate::raw::parse_log(SAMPLE).unwrap();
        for threads in [1, 2, 4, 7] {
            assert_eq!(parse_log_parallel(SAMPLE, threads).unwrap(), want);
        }
    }

    #[test]
    fn resolve_threads_clamps() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(10_000), MAX_THREADS);
    }

    #[test]
    fn swar_u64_parse_matches_std() {
        let cases = [
            "0",
            "7",
            "00000000",
            "12345678",
            "123456789",
            "1234567890123456789",
            "18446744073709551615", // u64::MAX
            "18446744073709551616", // u64::MAX + 1 → overflow
            "99999999999999999999999",
            "1844674407370955161500", // overflows in the tail loop
            "",
            "12a45678",
            "1234567a",
            "a2345678",
            "123456781234567x",
            "-1",
            " 123",
            "123 ",
            "seq=9",
        ];
        for s in cases {
            assert_eq!(parse_u64(s), s.parse::<u64>().ok(), "input {s:?}");
        }
        // `u64::from_str` accepts a leading `+`; the fast path rejects
        // it so the fallback keeps ownership of signed forms.
        assert_eq!(parse_u64("+123"), None);
        // Exhaustive near the eight-digit block boundary.
        for v in (0u64..200).chain([99_999_999, 100_000_000, 4_294_967_295]) {
            let s = v.to_string();
            assert_eq!(parse_u64(&s), Some(v), "value {v}");
        }
    }

    #[test]
    fn swar_find_byte_matches_naive() {
        let hay = SAMPLE.as_bytes();
        for needle in [b'\n', b'#', b':', b'-', b'z', 0u8, 0xFF] {
            for start in 0..hay.len().min(40) {
                assert_eq!(
                    find_byte(&hay[start..], needle),
                    hay[start..].iter().position(|&c| c == needle),
                    "needle {needle:#04x} start {start}"
                );
            }
        }
        assert_eq!(find_byte(b"", b'\n'), None);
        assert_eq!(find_byte(b"short", b't'), Some(4));
    }

    #[test]
    fn swar_ws_scan_matches_split_ascii_whitespace() {
        // Includes a non-whitespace control byte (0x0B, vertical tab:
        // *not* ASCII whitespace) inside a token, multi-space gaps,
        // tabs, and a token longer than one SWAR word.
        let lines = [
            "1000 web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42",
            "a\x0bb c",
            "one  two\tthree   four",
            "a-very-long-token-spanning-words x",
            "trailing-token",
            "",
        ];
        for line in lines {
            let via_fields: Vec<&str> = {
                let mut f = Fields { s: line, pos: 0 };
                let mut v = Vec::new();
                while let Some(t) = f.next() {
                    v.push(t);
                }
                v
            };
            let via_std: Vec<&str> = line.split_ascii_whitespace().collect();
            assert_eq!(via_fields, via_std, "line {line:?}");
        }
    }

    #[test]
    fn crlf_matches_lf_in_sequential_and_parallel_paths() {
        let crlf = SAMPLE.replace('\n', "\r\n");
        let want = sequential(SAMPLE).unwrap();
        assert_eq!(sequential(&crlf).unwrap(), want, "sequential CRLF");
        for threads in 1..=8 {
            assert_eq!(
                parse_refs_parallel(&crlf, threads).unwrap(),
                want,
                "parallel CRLF, {threads} threads"
            );
        }
    }

    #[test]
    fn crlf_final_record_without_newline_parses_everywhere() {
        let mut text = SAMPLE.replace('\n', "\r\n");
        text.push_str("9000 db mysqld 3 3 SEND 10.0.0.3:3306-10.0.0.2:4101 8");
        let want = sequential(&text).unwrap();
        assert_eq!(want.len(), sequential(SAMPLE).unwrap().len() + 1);
        assert_eq!(want.last().unwrap().size, 8);
        for threads in 1..=8 {
            assert_eq!(parse_refs_parallel(&text, threads).unwrap(), want);
        }
        // A lone final `\r` (CRLF log truncated between CR and LF) is
        // trimmed like any other trailing whitespace.
        let mut cut = text.clone();
        cut.push('\r');
        assert_eq!(sequential(&cut).unwrap(), want);
        for threads in [1, 3, 8] {
            assert_eq!(parse_refs_parallel(&cut, threads).unwrap(), want);
        }
    }

    #[test]
    fn chunk_spans_tile_crlf_text() {
        let crlf = SAMPLE.replace('\n', "\r\n");
        for chunks in 1..=9 {
            let spans = chunk_spans(&crlf, chunks);
            assert_eq!(spans.first().map(|s| s.0), Some(0));
            assert_eq!(spans.last().map(|s| s.1), Some(crlf.len()));
            for w in spans.windows(2) {
                assert_eq!(w[0].1, w[1].0, "spans must tile");
                assert_eq!(crlf.as_bytes()[w[0].1 - 1], b'\n');
            }
        }
    }

    #[test]
    fn chunk_spans_snap_past_multibyte_comments() {
        // A nominal cut landing inside a multi-byte character must not
        // panic; spans still snap to `\n` boundaries.
        let mut text = String::from("# è-commentaire: ünïcode héader païd d\u{1F600}ata\n");
        for i in 0..40 {
            text.push_str(&format!(
                "{i} web httpd 7 7 SEND 10.0.0.1:80-10.0.0.9:5000 42\n"
            ));
        }
        for chunks in 1..=16 {
            let spans = chunk_spans(&text, chunks);
            assert_eq!(spans.last().map(|s| s.1), Some(text.len()));
            for &(a, b) in &spans {
                assert!(text.is_char_boundary(a) && text.is_char_boundary(b));
            }
        }
        let want = sequential(&text).unwrap();
        for threads in [1, 2, 5, 16] {
            assert_eq!(parse_refs_parallel(&text, threads).unwrap(), want);
        }
    }
}
