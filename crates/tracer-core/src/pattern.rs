//! Causal path patterns (§3.2).
//!
//! "We can classify CAGs into different causal path patterns according
//! to the shapes of CAGs ... Each causal path pattern is composed of a
//! series of isomorphic CAGs, where similar vertices represent
//! activities of the same type with the same context information. For a
//! causal path pattern, we aggregate and average n isomorphic CAGs to
//! compute an average causal path."
//!
//! Isomorphism is decided on a **canonical signature**: a deterministic
//! DFS over the CAG where vertices are labelled `(type, hostname,
//! program)` — pids/tids are excluded because every request is serviced
//! by different pool members — and children are visited in a sorted
//! order, so any two isomorphic CAGs produce the identical signature
//! string regardless of construction order.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::activity::Nanos;
use crate::cag::{Cag, Component, EdgeKind};

/// Opaque identifier of a causal path pattern (hash of the canonical
/// signature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternKey(pub u64);

impl fmt::Display for PatternKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Computes the canonical signature of a CAG.
///
/// Returns the pattern key, the human-readable signature string and the
/// canonical visiting order of vertex indices.
pub fn canonical_signature(cag: &Cag) -> (PatternKey, String, Vec<usize>) {
    // Build child lists from parent links.
    let n = cag.vertices.len();
    let mut children: Vec<Vec<(usize, EdgeKind)>> = vec![Vec::new(); n];
    for (i, v) in cag.vertices.iter().enumerate() {
        if let Some(p) = v.ctx_parent {
            children[p].push((i, EdgeKind::Context));
        }
        if let Some(p) = v.msg_parent {
            children[p].push((i, EdgeKind::Message));
        }
    }
    let label = |i: usize| {
        let v = &cag.vertices[i];
        format!("{}|{}|{}", v.ty, v.ctx.hostname, v.ctx.program)
    };
    // Sort children deterministically by (kind, label) so isomorphic
    // graphs traverse identically.
    for (i, ch) in children.iter_mut().enumerate() {
        let _ = i;
        ch.sort_by(|a, b| {
            (a.1, label(a.0))
                .cmp(&(b.1, label(b.0)))
                .then(a.0.cmp(&b.0))
        });
    }
    let mut sig = String::new();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut discovered: Vec<Option<usize>> = vec![None; n];
    // Iterative DFS from the root (vertex 0).
    let mut stack: Vec<(usize, Option<EdgeKind>, bool)> = vec![(0, None, false)];
    while let Some((i, via, exit)) = stack.pop() {
        if exit {
            sig.push(')');
            continue;
        }
        match via {
            None => {}
            Some(EdgeKind::Context) => sig.push_str(" c"),
            Some(EdgeKind::Message) => sig.push_str(" m"),
        }
        if let Some(d) = discovered[i] {
            // Second parent of a RECEIVE: reference, don't re-expand.
            sig.push_str(&format!("^{d}"));
            continue;
        }
        discovered[i] = Some(order.len());
        order.push(i);
        sig.push('(');
        sig.push_str(&label(i));
        stack.push((i, via, true));
        for &(c, kind) in children[i].iter().rev() {
            stack.push((c, Some(kind), false));
        }
    }
    // Vertices unreachable from the root (cannot happen for valid CAGs,
    // but keep the signature total anyway).
    for (i, d) in discovered.iter_mut().enumerate() {
        if d.is_none() {
            *d = Some(order.len());
            order.push(i);
            sig.push_str(&format!(" orphan({})", label(i)));
        }
    }
    let mut h = DefaultHasher::new();
    sig.hash(&mut h);
    (PatternKey(h.finish()), sig, order)
}

/// Accumulated statistics for one pattern.
#[derive(Debug, Clone)]
pub struct PatternStats {
    /// Pattern identifier.
    pub key: PatternKey,
    /// Canonical signature string.
    pub signature: String,
    /// Number of isomorphic CAGs aggregated.
    pub count: u64,
    /// A representative CAG (the first one seen).
    pub exemplar: Cag,
    /// Sum of total latencies.
    total_sum: u128,
    /// Sum of per-component attributed latencies.
    component_sums: BTreeMap<Component, u128>,
    /// Sum of per-edge latencies keyed by canonical (from, to, kind).
    edge_sums: HashMap<(usize, usize, EdgeKind), u128>,
}

impl PatternStats {
    /// Mean total servicing latency.
    pub fn mean_total(&self) -> Nanos {
        if self.count == 0 {
            Nanos::ZERO
        } else {
            Nanos((self.total_sum / self.count as u128) as u64)
        }
    }

    /// Mean latency per component (the averaged causal path content).
    pub fn mean_components(&self) -> BTreeMap<Component, Nanos> {
        self.component_sums
            .iter()
            .map(|(k, &v)| (k.clone(), Nanos((v / self.count.max(1) as u128) as u64)))
            .collect()
    }

    /// Latency percentage per component: mean component latency over
    /// mean total latency × 100 (Figs. 15 and 17).
    pub fn latency_percentages(&self) -> BTreeMap<Component, f64> {
        let total = self.mean_total().as_nanos() as f64;
        self.mean_components()
            .into_iter()
            .map(|(k, v)| {
                let pct = if total > 0.0 {
                    v.as_nanos() as f64 / total * 100.0
                } else {
                    0.0
                };
                (k, pct)
            })
            .collect()
    }

    /// Mean latency per canonical edge.
    pub fn mean_edges(&self) -> BTreeMap<(usize, usize, EdgeKind), Nanos> {
        self.edge_sums
            .iter()
            .map(|(&k, &v)| (k, Nanos((v / self.count.max(1) as u128) as u64)))
            .collect()
    }
}

/// The average causal path of a pattern: the exemplar structure plus
/// averaged latencies.
#[derive(Debug, Clone)]
pub struct AveragePath {
    /// Pattern identifier.
    pub key: PatternKey,
    /// Canonical signature.
    pub signature: String,
    /// Number of aggregated CAGs.
    pub count: u64,
    /// Representative structure.
    pub exemplar: Cag,
    /// Mean total latency.
    pub mean_total: Nanos,
    /// Mean latency per component.
    pub components: BTreeMap<Component, Nanos>,
    /// Latency percentage per component.
    pub percentages: BTreeMap<Component, f64>,
}

/// Groups CAGs into patterns and computes average causal paths.
#[derive(Debug, Default)]
pub struct PatternAggregator {
    patterns: HashMap<PatternKey, PatternStats>,
}

impl PatternAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        PatternAggregator::default()
    }

    /// Adds one finished CAG.
    pub fn add(&mut self, cag: &Cag) {
        let (key, signature, order) = canonical_signature(cag);
        // Canonical rank of each vertex.
        let mut rank = vec![0usize; cag.vertices.len()];
        for (r, &i) in order.iter().enumerate() {
            rank[i] = r;
        }
        let total = cag.total_latency().unwrap_or(Nanos::ZERO);
        let stats = self.patterns.entry(key).or_insert_with(|| PatternStats {
            key,
            signature,
            count: 0,
            exemplar: cag.clone(),
            total_sum: 0,
            component_sums: BTreeMap::new(),
            edge_sums: HashMap::new(),
        });
        stats.count += 1;
        stats.total_sum += total.as_nanos() as u128;
        for (comp, lat) in cag.component_latencies() {
            *stats.component_sums.entry(comp).or_insert(0) += lat.as_nanos() as u128;
        }
        for e in cag.attributed_edges() {
            *stats
                .edge_sums
                .entry((rank[e.from], rank[e.to], e.kind))
                .or_insert(0) += e.latency.as_nanos() as u128;
        }
    }

    /// Adds many CAGs.
    pub fn add_all<'a>(&mut self, cags: impl IntoIterator<Item = &'a Cag>) {
        for c in cags {
            self.add(c);
        }
    }

    /// Builds an aggregator over a set of CAGs in one step.
    pub fn from_cags<'a>(cags: impl IntoIterator<Item = &'a Cag>) -> Self {
        let mut agg = PatternAggregator::new();
        agg.add_all(cags);
        agg
    }

    /// Number of distinct patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when no CAG has been added.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Pattern statistics sorted by descending count (most frequent
    /// request type first, like the paper's ViewItem analysis).
    pub fn patterns(&self) -> Vec<&PatternStats> {
        let mut v: Vec<&PatternStats> = self.patterns.values().collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        v
    }

    /// The statistics of a specific pattern.
    pub fn get(&self, key: PatternKey) -> Option<&PatternStats> {
        self.patterns.get(&key)
    }

    /// The most frequent pattern, if any.
    pub fn dominant(&self) -> Option<&PatternStats> {
        self.patterns().into_iter().next()
    }

    /// Average causal paths, by descending frequency.
    pub fn average_paths(&self) -> Vec<AveragePath> {
        self.patterns()
            .into_iter()
            .map(|s| AveragePath {
                key: s.key,
                signature: s.signature.clone(),
                count: s.count,
                exemplar: s.exemplar.clone(),
                mean_total: s.mean_total(),
                components: s.mean_components(),
                percentages: s.latency_percentages(),
            })
            .collect()
    }

    /// Flags patterns that look like *deformed* CAGs (§5.2: lost
    /// activities deform paths): patterns whose count is below
    /// `fraction` of the dominant pattern's count.
    pub fn deformed(&self, fraction: f64) -> Vec<&PatternStats> {
        let Some(max) = self.patterns.values().map(|s| s.count).max() else {
            return Vec::new();
        };
        let threshold = (max as f64 * fraction).ceil() as u64;
        self.patterns()
            .into_iter()
            .filter(|s| s.count < threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{ActivityType, Channel, LocalTime};
    use crate::cag::test_support::{ep, two_tier_cag, vertex};

    fn shifted(cag: &Cag, delta: u64, stretch: u64) -> Cag {
        let mut c = cag.clone();
        c.id += 1000;
        for (k, v) in c.vertices.iter_mut().enumerate() {
            let t = v.ts.as_nanos() + delta + stretch * k as u64;
            v.ts = LocalTime::from_nanos(t);
            v.ts_last = v.ts;
            v.ctx.tid += 17; // different pool thread, same pattern
        }
        c
    }

    #[test]
    fn isomorphic_cags_share_a_key() {
        let a = two_tier_cag();
        let b = shifted(&a, 5_000, 3);
        let (ka, _, _) = canonical_signature(&a);
        let (kb, _, _) = canonical_signature(&b);
        assert_eq!(ka, kb);
    }

    #[test]
    fn different_shapes_get_different_keys() {
        let a = two_tier_cag();
        let mut b = a.clone();
        // Drop the backend round trip: different shape.
        b.vertices.truncate(2);
        b.vertices.push(vertex(
            ActivityType::End,
            5_000,
            "web",
            "httpd",
            7,
            Channel::new(ep("10.0.0.1:80"), ep("192.168.0.9:5000")),
            Some(1),
            None,
        ));
        let (ka, _, _) = canonical_signature(&a);
        let (kb, _, _) = canonical_signature(&b);
        assert_ne!(ka, kb);
    }

    #[test]
    fn different_programs_get_different_keys() {
        let a = two_tier_cag();
        let mut b = a.clone();
        for v in &mut b.vertices[2..4] {
            v.ctx.program = "tomcat".into();
        }
        let (ka, _, _) = canonical_signature(&a);
        let (kb, _, _) = canonical_signature(&b);
        assert_ne!(ka, kb);
    }

    #[test]
    fn signature_string_mentions_structure() {
        let (_, sig, order) = canonical_signature(&two_tier_cag());
        assert!(sig.contains("BEGIN|web|httpd"));
        assert!(sig.contains(" m("));
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn aggregator_averages_latencies() {
        let a = two_tier_cag(); // total latency 4000
        let b = shifted(&a, 0, 400); // stretched: END at 5000+400*5=7000, BEGIN 1000 → total 6000
        let mut agg = PatternAggregator::new();
        agg.add_all([&a, &b]);
        assert_eq!(agg.len(), 1);
        let s = agg.dominant().unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean_total(), Nanos(5_000));
        let comps = s.mean_components();
        assert!(comps.contains_key(&Component::new("httpd", "java")));
        // Percentages sum to ~100 for linear paths.
        let sum: f64 = s.latency_percentages().values().sum();
        assert!((sum - 100.0).abs() < 1.0, "sum={sum}");
    }

    #[test]
    fn average_paths_sorted_by_frequency() {
        let a = two_tier_cag();
        let mut short = a.clone();
        short.vertices.truncate(1);
        short.vertices[0].ctx_parent = None;
        short.finished = false;
        let mut agg = PatternAggregator::new();
        agg.add(&a);
        agg.add(&shifted(&a, 10, 1));
        agg.add(&shifted(&a, 20, 2));
        agg.add(&short);
        let paths = agg.average_paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].count, 3);
        assert_eq!(paths[1].count, 1);
    }

    #[test]
    fn deformed_patterns_flagged_by_rarity() {
        let a = two_tier_cag();
        let mut agg = PatternAggregator::new();
        for i in 0..99 {
            agg.add(&shifted(&a, i, 0));
        }
        let mut deformed = a.clone();
        deformed.vertices.truncate(4); // lost tail
        deformed.finished = false;
        agg.add(&deformed);
        let flagged = agg.deformed(0.1);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].count, 1);
    }

    #[test]
    fn mean_edges_keyed_canonically() {
        let a = two_tier_cag();
        let mut agg = PatternAggregator::new();
        agg.add(&a);
        let s = agg.dominant().unwrap();
        let edges = s.mean_edges();
        // 6 edges total, one excluded from attribution (ctx into the
        // two-parent receive).
        assert_eq!(edges.len(), 5);
    }

    #[test]
    fn empty_aggregator_behaves() {
        let agg = PatternAggregator::new();
        assert!(agg.is_empty());
        assert!(agg.dominant().is_none());
        assert!(agg.average_paths().is_empty());
        assert!(agg.deformed(0.5).is_empty());
    }
}
