//! Multi-process distributed correlation: router peers over sockets
//! with claim exchange and a canonical cluster merge.
//!
//! [`Mode::Sharded`](crate::pipeline::Mode::Sharded) scales correlation
//! to one machine's cores; this module scales it past one process. The
//! topology mirrors the follow-up paper's distributed tracer (Sang et
//! al., arXiv:1007.4057) and MiSeRTrace's per-node collectors:
//!
//! ```text
//!  coordinator process                router processes (N peers)
//!  ───────────────────                ───────────────────────────
//!  parse → dedup → classify           ┌ router 0: worker 0..W ┐
//!  → filter → SessionRouter ──claims──┤ router 1: worker 0..W ├──outputs──→ canonical
//!  (the ONE sequential reader)        └ router N-1: …         ┘            merge
//! ```
//!
//! * The **coordinator** runs the exact same reader-side front-end as
//!   the sharded pipeline ([`ReaderCore`]): the sequential
//!   [`SessionRouter`](crate::shard) assigns every activity to one of
//!   `routers × workers_per_router` **global shards**, so a session
//!   whose records straddle router inputs is owned by exactly one
//!   worker — the session-assignment *claims* are what travels on the
//!   wire, never raw unrouted records.
//! * Each **router peer** (a spawned child process, a TCP-connected
//!   remote `pt router --listen`, or an in-process thread) hosts a
//!   block of `workers_per_router` shard workers and streams claim
//!   batches into them exactly like the in-process sharded pipeline.
//! * At end of input the coordinator collects every worker's
//!   [`CorrelationOutput`] in global shard order and performs the
//!   canonical merge (sort by CAG root, renumber) — so cluster output
//!   is **byte-identical** to single-process `Mode::Sharded` with the
//!   same total shard count, on every corpus and over every transport.
//!
//! ## Wire protocol
//!
//! Length-prefixed binary frames in PTBIN style (little-endian,
//! length-prefixed strings, incremental interning):
//!
//! ```text
//!  frame   := type:u8 len:u32 payload[len]
//!  Hello   := magic:u32 version:u32 router:u32 workers:u32 config
//!  Claim   := worker:u32 count:u32 msg[count]     (coordinator → router)
//!  Finish  := (empty)                             (coordinator → router)
//!  Output  := worker:u32 correlation-output       (router → coordinator)
//!  Error   := message:str                         (router → coordinator)
//!  msg     := 0 act | 1 forget-ctx
//! ```
//!
//! Context strings in Claim frames use **incremental interning**: the
//! first occurrence of a hostname/program travels as
//! `u32::MAX + len + bytes` and enters both sides' tables; every later
//! occurrence is a 4-byte table id. The per-connection tables make the
//! steady-state claim cost independent of string length, like PTBIN's
//! string table but built online.
//!
//! ## Supervision
//!
//! A router peer that dies mid-run surfaces as one clear
//! [`TraceError::Router`] carrying the exit status and stderr tail —
//! never a hang: writes to a half-closed socket fail with broken-pipe
//! (Rust ignores `SIGPIPE`), reads see EOF. Spawned children are
//! killed and reaped on coordinator drop, and per-router spill
//! directories are removed after the drain.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::correlator::{CorrelationOutput, CorrelatorConfig, StreamingCorrelator};
use crate::error::TraceError;
use crate::raw::{parse_log_iter, RawRecord, RawRecordRef};
use crate::shard::{run_worker, worker_config, ReaderCore, ShardMsg, MAX_SHARDS};

/// Activities per Claim frame batch — matches the sharded pipeline's
/// channel batching so a worker sees identical batch boundaries.
const BATCH_RECORDS: usize = 4_096;

/// Bounded worker-channel capacity inside a router peer, in batches.
const CHANNEL_BATCHES: usize = 8;

/// Bounded in-process duplex pipe capacity, in write chunks.
const PIPE_CHUNKS: usize = 64;

/// Hard cap on router peers: each is a process (or thread) plus a
/// frame connection, and the coordinator's single reader cannot feed
/// more anyway.
pub const MAX_ROUTERS: usize = 64;

/// How much of a child router's stderr is retained for the error
/// message when it fails.
const STDERR_TAIL: usize = 4096;

/// How the coordinator reaches its router peers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RouterTransport {
    /// Router peers run as background threads inside this process,
    /// connected over in-memory duplex pipes that carry the full wire
    /// protocol. The default: no deployment needed, still exercises
    /// every encode/decode path.
    #[default]
    InProcess,
    /// Spawn `exe router --stdio` child processes, connected over a
    /// Unix socketpair bridged to the child's stdin/stdout (plain
    /// pipes on non-Unix platforms).
    Spawn {
        /// Router executable, typically `std::env::current_exe()`.
        exe: PathBuf,
    },
    /// Connect over TCP to already-running `pt router --listen`
    /// processes. One address per router, `host:port`.
    Connect {
        /// Router addresses, in router-index order.
        addrs: Vec<String>,
    },
}

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

pub(crate) mod wire {
    use super::*;
    use crate::activity::{Activity, ContextId, LocalTime};
    use crate::cag::Cag;
    use crate::engine::{EngineCounters, EngineOptions};
    use crate::metrics::CorrelatorMetrics;
    use crate::ranker::{RankerCounters, RankerOptions, WindowPolicy};
    use crate::spill::codec::{get_channel, put_channel, put_str, put_u32, put_u64, put_u8, Dec};
    use crate::spill::{decode_cag_from, encode_cag};

    pub const MAGIC: u32 = 0x5054_4443; // "PTDC"
    pub const VERSION: u32 = 1;

    pub const FRAME_HELLO: u8 = 1;
    pub const FRAME_CLAIM: u8 = 2;
    pub const FRAME_FINISH: u8 = 3;
    pub const FRAME_OUTPUT: u8 = 4;
    pub const FRAME_ERROR: u8 = 5;

    /// Sanity bound on incoming frame length (a corrupt header must
    /// not trigger a multi-gigabyte allocation).
    const MAX_FRAME: u32 = 1 << 30;

    /// Buffered frame writer: payload is built in a reusable scratch
    /// buffer, then shipped as `type + len + payload`.
    pub struct FrameWriter<W: Write> {
        w: W,
        buf: Vec<u8>,
    }

    impl<W: Write> FrameWriter<W> {
        pub fn new(w: W) -> Self {
            FrameWriter { w, buf: Vec::new() }
        }

        pub fn send(&mut self, ty: u8, build: impl FnOnce(&mut Vec<u8>)) -> io::Result<()> {
            self.buf.clear();
            build(&mut self.buf);
            let mut head = [0u8; 5];
            head[0] = ty;
            head[1..5].copy_from_slice(&(self.buf.len() as u32).to_le_bytes());
            self.w.write_all(&head)?;
            self.w.write_all(&self.buf)
        }

        pub fn flush(&mut self) -> io::Result<()> {
            self.w.flush()
        }
    }

    /// Reads one frame into `buf`, returning its type. `Ok(None)` is a
    /// clean EOF (peer closed between frames); EOF inside a frame is an
    /// error.
    pub fn read_frame<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<Option<u8>> {
        let mut head = [0u8; 5];
        let mut filled = 0;
        while filled < head.len() {
            match r.read(&mut head[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let ty = head[0];
        let len = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes"));
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds protocol bound"),
            ));
        }
        buf.resize(len as usize, 0);
        r.read_exact(buf)?;
        Ok(Some(ty))
    }

    /// Sentinel marking a string's first occurrence (inline bytes
    /// follow; both sides append it to their table).
    const STR_NEW: u32 = u32::MAX;

    /// Sender side of the incremental string table.
    #[derive(Default)]
    pub struct StrEnc {
        ids: HashMap<Arc<str>, u32>,
    }

    impl StrEnc {
        pub fn put(&mut self, buf: &mut Vec<u8>, s: &Arc<str>) {
            if let Some(&id) = self.ids.get(s) {
                put_u32(buf, id);
            } else {
                let id = self.ids.len() as u32;
                debug_assert!(id < STR_NEW);
                self.ids.insert(Arc::clone(s), id);
                put_u32(buf, STR_NEW);
                put_str(buf, s);
            }
        }
    }

    /// Receiver side of the incremental string table.
    #[derive(Default)]
    pub struct StrDec {
        table: Vec<Arc<str>>,
    }

    impl StrDec {
        pub fn get(&mut self, d: &mut Dec<'_>) -> io::Result<Arc<str>> {
            let id = d.u32();
            if id == STR_NEW {
                let s: Arc<str> = Arc::from(d.str());
                self.table.push(Arc::clone(&s));
                Ok(s)
            } else {
                self.table.get(id as usize).cloned().ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("claim references unknown string id {id}"),
                    )
                })
            }
        }
    }

    fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
        match v {
            Some(v) => {
                put_u8(buf, 1);
                put_u64(buf, v);
            }
            None => put_u8(buf, 0),
        }
    }

    fn get_opt_u64(d: &mut Dec<'_>) -> Option<u64> {
        (d.u8() != 0).then(|| d.u64())
    }

    fn put_ctx(buf: &mut Vec<u8>, enc: &mut StrEnc, ctx: &ContextId) {
        enc.put(buf, &ctx.hostname);
        enc.put(buf, &ctx.program);
        put_u32(buf, ctx.pid);
        put_u32(buf, ctx.tid);
    }

    fn get_ctx(d: &mut Dec<'_>, dec: &mut StrDec) -> io::Result<ContextId> {
        let hostname = dec.get(d)?;
        let program = dec.get(d)?;
        let pid = d.u32();
        let tid = d.u32();
        Ok(ContextId {
            hostname,
            program,
            pid,
            tid,
        })
    }

    fn put_act(buf: &mut Vec<u8>, enc: &mut StrEnc, a: &Activity) {
        put_u8(buf, crate::spill::activity_type_code(a.ty));
        put_u64(buf, a.ts.0);
        put_ctx(buf, enc, &a.ctx);
        put_channel(buf, a.channel);
        put_u64(buf, a.size);
        put_u64(buf, a.tag);
        put_opt_u64(buf, a.seq);
    }

    fn get_act(d: &mut Dec<'_>, dec: &mut StrDec) -> io::Result<Activity> {
        let ty = crate::spill::activity_type_from_code(d.u8());
        let ts = LocalTime(d.u64());
        let ctx = get_ctx(d, dec)?;
        let channel = get_channel(d);
        let size = d.u64();
        let tag = d.u64();
        let seq = get_opt_u64(d);
        Ok(Activity {
            ty,
            ts,
            ctx,
            channel,
            size,
            tag,
            seq,
        })
    }

    pub fn put_msg(buf: &mut Vec<u8>, enc: &mut StrEnc, msg: &ShardMsg) {
        match msg {
            ShardMsg::Act(a) => {
                put_u8(buf, 0);
                put_act(buf, enc, a);
            }
            ShardMsg::ForgetCtx(ctx) => {
                put_u8(buf, 1);
                put_ctx(buf, enc, ctx);
            }
        }
    }

    pub fn get_msg(d: &mut Dec<'_>, dec: &mut StrDec) -> io::Result<ShardMsg> {
        match d.u8() {
            0 => Ok(ShardMsg::Act(get_act(d, dec)?)),
            1 => Ok(ShardMsg::ForgetCtx(get_ctx(d, dec)?)),
            c => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown claim message code {c}"),
            )),
        }
    }

    /// Noise-sample activities travel plain (low volume, own frame).
    fn put_act_plain(buf: &mut Vec<u8>, a: &Activity) {
        put_u8(buf, crate::spill::activity_type_code(a.ty));
        put_u64(buf, a.ts.0);
        put_str(buf, &a.ctx.hostname);
        put_str(buf, &a.ctx.program);
        put_u32(buf, a.ctx.pid);
        put_u32(buf, a.ctx.tid);
        put_channel(buf, a.channel);
        put_u64(buf, a.size);
        put_u64(buf, a.tag);
        put_opt_u64(buf, a.seq);
    }

    fn get_act_plain(d: &mut Dec<'_>) -> Activity {
        let ty = crate::spill::activity_type_from_code(d.u8());
        let ts = LocalTime(d.u64());
        let hostname = d.str().to_owned();
        let program = d.str().to_owned();
        let pid = d.u32();
        let tid = d.u32();
        Activity {
            ty,
            ts,
            ctx: ContextId::new(hostname, program, pid, tid),
            channel: get_channel(d),
            size: d.u64(),
            tag: d.u64(),
            seq: get_opt_u64(d),
        }
    }

    /// Serializes the per-worker correlator config for the Hello
    /// frame. Exhaustive destructuring everywhere in this module: a
    /// new config or counter field fails compilation here instead of
    /// silently diverging between coordinator and router.
    pub fn put_config(buf: &mut Vec<u8>, cfg: &CorrelatorConfig) {
        let CorrelatorConfig {
            access,
            filters: _, // workers receive pre-filtered activities
            ranker,
            engine,
            mem_sample_every,
            memory_budget,
            spill_dir,
            shed_on_budget,
            max_seal_lag,
            channel_idle_horizon,
            lane_settle_depth,
            orphan_parity,
        } = cfg;
        let ports: Vec<u16> = access.frontend_ports().collect();
        put_u32(buf, ports.len() as u32);
        for p in ports {
            put_u32(buf, u32::from(p));
        }
        let ips: Vec<std::net::Ipv4Addr> = access.internal_ips().collect();
        put_u32(buf, ips.len() as u32);
        for ip in ips {
            put_u32(buf, u32::from(ip));
        }
        let RankerOptions {
            window,
            window_policy,
            swap,
            fetch_boost,
            noise_discard,
            buffer_cap_bytes,
        } = ranker;
        put_u64(buf, window.0);
        match *window_policy {
            WindowPolicy::Static => put_u8(buf, 0),
            WindowPolicy::Adaptive { slack, min, max } => {
                put_u8(buf, 1);
                put_u32(buf, slack);
                put_u64(buf, min.0);
                put_u64(buf, max.0);
            }
        }
        put_u8(buf, *swap as u8);
        put_u32(buf, *fetch_boost);
        put_u8(buf, *noise_discard as u8);
        put_opt_u64(buf, buffer_cap_bytes.map(|v| v as u64));
        let EngineOptions {
            merge_segments,
            thread_reuse_check,
            amend_finished,
            pending_cap,
            orphan_cap,
            unfinished_cap,
        } = engine;
        put_u8(buf, *merge_segments as u8);
        put_u8(buf, *thread_reuse_check as u8);
        put_u8(buf, *amend_finished as u8);
        put_u64(buf, *pending_cap as u64);
        put_u64(buf, *orphan_cap as u64);
        put_u64(buf, *unfinished_cap as u64);
        put_u64(buf, *mem_sample_every);
        put_opt_u64(buf, memory_budget.map(|v| v as u64));
        match spill_dir {
            Some(p) => {
                put_u8(buf, 1);
                put_str(buf, &p.to_string_lossy());
            }
            None => put_u8(buf, 0),
        }
        put_u8(buf, *shed_on_budget as u8);
        put_opt_u64(buf, *max_seal_lag);
        put_opt_u64(buf, *channel_idle_horizon);
        put_opt_u64(buf, *lane_settle_depth);
        put_u8(buf, *orphan_parity as u8);
    }

    pub fn get_config(d: &mut Dec<'_>) -> CorrelatorConfig {
        use crate::access::AccessPointSpec;
        use crate::activity::Nanos;
        let n_ports = d.u32() as usize;
        let ports: Vec<u16> = (0..n_ports).map(|_| d.u32() as u16).collect();
        let n_ips = d.u32() as usize;
        let ips: Vec<std::net::Ipv4Addr> = (0..n_ips)
            .map(|_| std::net::Ipv4Addr::from(d.u32()))
            .collect();
        let mut cfg = CorrelatorConfig::new(AccessPointSpec::new(ports, ips));
        cfg.ranker.window = Nanos(d.u64());
        cfg.ranker.window_policy = match d.u8() {
            0 => WindowPolicy::Static,
            _ => WindowPolicy::Adaptive {
                slack: d.u32(),
                min: Nanos(d.u64()),
                max: Nanos(d.u64()),
            },
        };
        cfg.ranker.swap = d.u8() != 0;
        cfg.ranker.fetch_boost = d.u32();
        cfg.ranker.noise_discard = d.u8() != 0;
        cfg.ranker.buffer_cap_bytes = get_opt_u64(d).map(|v| v as usize);
        cfg.engine.merge_segments = d.u8() != 0;
        cfg.engine.thread_reuse_check = d.u8() != 0;
        cfg.engine.amend_finished = d.u8() != 0;
        cfg.engine.pending_cap = d.u64() as usize;
        cfg.engine.orphan_cap = d.u64() as usize;
        cfg.engine.unfinished_cap = d.u64() as usize;
        cfg.mem_sample_every = d.u64();
        cfg.memory_budget = get_opt_u64(d).map(|v| v as usize);
        cfg.spill_dir = (d.u8() != 0).then(|| PathBuf::from(d.str()));
        cfg.shed_on_budget = d.u8() != 0;
        cfg.max_seal_lag = get_opt_u64(d);
        cfg.channel_idle_horizon = get_opt_u64(d);
        cfg.lane_settle_depth = get_opt_u64(d);
        cfg.orphan_parity = d.u8() != 0;
        cfg
    }

    fn put_ranker_counters(buf: &mut Vec<u8>, c: &RankerCounters) {
        let RankerCounters {
            enqueued,
            candidates,
            rule1,
            rule2,
            swaps,
            fetch_boosts,
            noise_discards,
            aged_settles,
            forced_deliveries,
            peak_buffered,
            rtt_samples,
            window_updates,
            window_clamps,
            adaptive_window_ns,
        } = c;
        for v in [
            *enqueued,
            *candidates,
            *rule1,
            *rule2,
            *swaps,
            *fetch_boosts,
            *noise_discards,
            *aged_settles,
            *forced_deliveries,
            *peak_buffered as u64,
            *rtt_samples,
            *window_updates,
            *window_clamps,
            *adaptive_window_ns,
        ] {
            put_u64(buf, v);
        }
    }

    fn get_ranker_counters(d: &mut Dec<'_>) -> RankerCounters {
        RankerCounters {
            enqueued: d.u64(),
            candidates: d.u64(),
            rule1: d.u64(),
            rule2: d.u64(),
            swaps: d.u64(),
            fetch_boosts: d.u64(),
            noise_discards: d.u64(),
            aged_settles: d.u64(),
            forced_deliveries: d.u64(),
            peak_buffered: d.u64() as usize,
            rtt_samples: d.u64(),
            window_updates: d.u64(),
            window_clamps: d.u64(),
            adaptive_window_ns: d.u64(),
        }
    }

    fn put_engine_counters(buf: &mut Vec<u8>, c: &EngineCounters) {
        let EngineCounters {
            delivered,
            cags_opened,
            cags_finished,
            send_merges,
            begin_merges,
            end_amends,
            partial_receives,
            unmatched_receives,
            cross_message_receives,
            unmatched_ends,
            reuse_suppressed_edges,
            orphan_vertices,
            evicted_pendings,
            evicted_orphans,
            abandoned_cags,
            budget_evicted_cags,
            budget_evicted_vertices,
            pruned_contexts,
            forced_seals,
            gap_retired_pendings,
            spilled_cags,
            spilled_orphans,
            spill_faults,
            spilled_bytes,
        } = c;
        for v in [
            *delivered,
            *cags_opened,
            *cags_finished,
            *send_merges,
            *begin_merges,
            *end_amends,
            *partial_receives,
            *unmatched_receives,
            *cross_message_receives,
            *unmatched_ends,
            *reuse_suppressed_edges,
            *orphan_vertices,
            *evicted_pendings,
            *evicted_orphans,
            *abandoned_cags,
            *budget_evicted_cags,
            *budget_evicted_vertices,
            *pruned_contexts,
            *forced_seals,
            *gap_retired_pendings,
            *spilled_cags,
            *spilled_orphans,
            *spill_faults,
            *spilled_bytes,
        ] {
            put_u64(buf, v);
        }
    }

    fn get_engine_counters(d: &mut Dec<'_>) -> EngineCounters {
        EngineCounters {
            delivered: d.u64(),
            cags_opened: d.u64(),
            cags_finished: d.u64(),
            send_merges: d.u64(),
            begin_merges: d.u64(),
            end_amends: d.u64(),
            partial_receives: d.u64(),
            unmatched_receives: d.u64(),
            cross_message_receives: d.u64(),
            unmatched_ends: d.u64(),
            reuse_suppressed_edges: d.u64(),
            orphan_vertices: d.u64(),
            evicted_pendings: d.u64(),
            evicted_orphans: d.u64(),
            abandoned_cags: d.u64(),
            budget_evicted_cags: d.u64(),
            budget_evicted_vertices: d.u64(),
            pruned_contexts: d.u64(),
            forced_seals: d.u64(),
            gap_retired_pendings: d.u64(),
            spilled_cags: d.u64(),
            spilled_orphans: d.u64(),
            spill_faults: d.u64(),
            spilled_bytes: d.u64(),
        }
    }

    fn put_metrics(buf: &mut Vec<u8>, m: &CorrelatorMetrics) {
        let CorrelatorMetrics {
            records_in,
            filtered_out,
            retrans_dropped,
            seq_dedup_ranges,
            v2_records,
            seq_gaps,
            orphan_dropped,
            ranker,
            engine,
            cags_finished,
            cags_unfinished,
            spilled_dedup_entries,
            spill_dedup_faults,
            spill_pages_written,
            spill_pages_read,
            spill_queue_hits,
            peak_bytes,
            final_bytes,
            wall,
        } = m;
        for v in [
            *records_in,
            *filtered_out,
            *retrans_dropped,
            *seq_dedup_ranges,
            *v2_records,
            *seq_gaps,
            *orphan_dropped,
            *cags_finished,
            *cags_unfinished,
            *spilled_dedup_entries,
            *spill_dedup_faults,
            *spill_pages_written,
            *spill_pages_read,
            *spill_queue_hits,
            *peak_bytes as u64,
            *final_bytes as u64,
            wall.as_nanos() as u64,
        ] {
            put_u64(buf, v);
        }
        put_ranker_counters(buf, ranker);
        put_engine_counters(buf, engine);
    }

    fn get_metrics(d: &mut Dec<'_>) -> CorrelatorMetrics {
        let mut m = CorrelatorMetrics {
            records_in: d.u64(),
            filtered_out: d.u64(),
            retrans_dropped: d.u64(),
            seq_dedup_ranges: d.u64(),
            v2_records: d.u64(),
            seq_gaps: d.u64(),
            orphan_dropped: d.u64(),
            cags_finished: d.u64(),
            cags_unfinished: d.u64(),
            spilled_dedup_entries: d.u64(),
            spill_dedup_faults: d.u64(),
            spill_pages_written: d.u64(),
            spill_pages_read: d.u64(),
            spill_queue_hits: d.u64(),
            peak_bytes: d.u64() as usize,
            final_bytes: d.u64() as usize,
            wall: std::time::Duration::from_nanos(d.u64()),
            ..CorrelatorMetrics::default()
        };
        m.ranker = get_ranker_counters(d);
        m.engine = get_engine_counters(d);
        m
    }

    fn put_cags(buf: &mut Vec<u8>, cags: &[Cag]) {
        put_u32(buf, cags.len() as u32);
        for c in cags {
            encode_cag(c, buf);
        }
    }

    fn get_cags(d: &mut Dec<'_>) -> Vec<Cag> {
        let n = d.u32() as usize;
        (0..n).map(|_| decode_cag_from(d)).collect()
    }

    pub fn put_output(buf: &mut Vec<u8>, worker: u32, out: &CorrelationOutput) {
        let CorrelationOutput {
            cags,
            unfinished,
            metrics,
            noise_samples,
        } = out;
        put_u32(buf, worker);
        put_cags(buf, cags);
        put_cags(buf, unfinished);
        put_metrics(buf, metrics);
        put_u32(buf, noise_samples.len() as u32);
        for a in noise_samples {
            put_act_plain(buf, a);
        }
    }

    pub fn get_output(d: &mut Dec<'_>) -> (u32, CorrelationOutput) {
        let worker = d.u32();
        let cags = get_cags(d);
        let unfinished = get_cags(d);
        let metrics = get_metrics(d);
        let n = d.u32() as usize;
        let noise_samples = (0..n).map(|_| get_act_plain(d)).collect();
        (
            worker,
            CorrelationOutput {
                cags,
                unfinished,
                metrics,
                noise_samples,
            },
        )
    }
}

// ---------------------------------------------------------------------
// In-process duplex pipe (the InProcess transport's "socket")
// ---------------------------------------------------------------------

/// Write half of a bounded in-memory byte pipe.
struct PipeWriter {
    tx: SyncSender<Vec<u8>>,
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "pipe peer hung up"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Read half of a bounded in-memory byte pipe. Sender drop is EOF.
struct PipeReader {
    rx: Receiver<Vec<u8>>,
    chunk: Vec<u8>,
    pos: usize,
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        while self.pos >= self.chunk.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.chunk = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0),
            }
        }
        let n = (self.chunk.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.chunk[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn pipe() -> (PipeWriter, PipeReader) {
    let (tx, rx) = sync_channel(PIPE_CHUNKS);
    (
        PipeWriter { tx },
        PipeReader {
            rx,
            chunk: Vec::new(),
            pos: 0,
        },
    )
}

// ---------------------------------------------------------------------
// Router peer (server side)
// ---------------------------------------------------------------------

/// Serves one coordinator connection: `Hello` configures the worker
/// block, `Claim` frames stream in, `Finish` drains, `Output` frames
/// stream back. Used by `pt router` (child process / TCP listener) and
/// by the in-process transport's threads.
///
/// # Errors
///
/// Returns a [`TraceError`] when the connection breaks or carries an
/// out-of-protocol frame; a best-effort `Error` frame is sent to the
/// coordinator first so the failure is visible on both sides.
pub fn serve_router<R: Read, W: Write>(r: R, w: W) -> Result<(), TraceError> {
    let mut fw = wire::FrameWriter::new(io::BufWriter::new(w));
    match serve_inner(r, &mut fw) {
        Ok(()) => Ok(()),
        Err(e) => {
            let msg = e.to_string();
            let _ = fw.send(wire::FRAME_ERROR, |buf| {
                crate::spill::codec::put_str(buf, &msg);
            });
            let _ = fw.flush();
            Err(e)
        }
    }
}

fn serve_inner<R: Read, W: Write>(
    r: R,
    fw: &mut wire::FrameWriter<io::BufWriter<W>>,
) -> Result<(), TraceError> {
    let mut r = io::BufReader::new(r);
    let mut buf = Vec::new();
    let proto = |reason: String| TraceError::config(format!("router protocol: {reason}"));

    // Hello: validate, build the worker block.
    let ty = wire::read_frame(&mut r, &mut buf)
        .map_err(|e| proto(format!("reading hello: {e}")))?
        .ok_or_else(|| proto("coordinator closed before hello".into()))?;
    if ty != wire::FRAME_HELLO {
        return Err(proto(format!("expected hello, got frame type {ty}")));
    }
    let mut d = crate::spill::codec::Dec::new(&buf);
    if d.u32() != wire::MAGIC {
        return Err(proto("bad magic (not a PTDC coordinator)".into()));
    }
    let version = d.u32();
    if version != wire::VERSION {
        return Err(proto(format!(
            "protocol version {version} (this router speaks {})",
            wire::VERSION
        )));
    }
    let router_index = d.u32();
    let workers = d.u32() as usize;
    if workers == 0 || workers > MAX_SHARDS {
        return Err(proto(format!("worker count {workers} out of range")));
    }
    let cfg = wire::get_config(&mut d);
    if let Some(dir) = &cfg.spill_dir {
        std::fs::create_dir_all(dir).map_err(|e| {
            TraceError::config(format!("cannot create spill dir {}: {e}", dir.display()))
        })?;
    }

    let mut txs = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let sc = StreamingCorrelator::direct_for_activities(cfg.clone())?;
        let (tx, rx): (SyncSender<Vec<ShardMsg>>, Receiver<Vec<ShardMsg>>) =
            sync_channel(CHANNEL_BATCHES);
        txs.push(tx);
        handles.push(std::thread::spawn(move || run_worker(sc, rx)));
    }

    // Claim stream until Finish.
    let mut dec = wire::StrDec::default();
    loop {
        let ty = wire::read_frame(&mut r, &mut buf)
            .map_err(|e| proto(format!("reading claims: {e}")))?
            .ok_or_else(|| proto("coordinator hung up before finish".into()))?;
        match ty {
            wire::FRAME_CLAIM => {
                let mut d = crate::spill::codec::Dec::new(&buf);
                let worker = d.u32() as usize;
                if worker >= txs.len() {
                    return Err(proto(format!("claim for worker {worker} of {}", txs.len())));
                }
                let count = d.u32() as usize;
                let mut batch = Vec::with_capacity(count);
                for _ in 0..count {
                    batch.push(
                        wire::get_msg(&mut d, &mut dec)
                            .map_err(|e| proto(format!("decoding claim: {e}")))?,
                    );
                }
                if !d.is_empty() {
                    return Err(proto("trailing bytes in claim frame".into()));
                }
                txs[worker]
                    .send(batch)
                    .map_err(|_| TraceError::config("router worker terminated unexpectedly"))?;
            }
            wire::FRAME_FINISH => break,
            ty => return Err(proto(format!("unexpected frame type {ty} in claim stream"))),
        }
    }

    // Drain: hang up worker channels, join, ship outputs in local
    // worker order (the coordinator relies on it for the global shard
    // order of the canonical merge).
    drop(txs);
    for (i, handle) in handles.into_iter().enumerate() {
        let out = handle
            .join()
            .map_err(|_| TraceError::config("router worker panicked"))??;
        fw.send(wire::FRAME_OUTPUT, |buf| {
            wire::put_output(buf, i as u32, &out);
        })
        .map_err(|e| proto(format!("writing output: {e}")))?;
    }
    fw.flush()
        .map_err(|e| proto(format!("flushing outputs: {e}")))?;
    // Drain-path backstop, exactly like serve's shutdown: our workers'
    // spill files self-delete on drop, and the sweep is pid-scoped so
    // sibling routers sharing the directory are untouched.
    if let Some(dir) = &cfg.spill_dir {
        crate::spill::sweep_process_spill_files(dir);
    }
    let _ = router_index;
    Ok(())
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// Captures the tail of a child router's stderr on a drainer thread
/// (bounded; prevents pipe-full deadlock and feeds the error message).
#[derive(Clone)]
struct StderrTail(Arc<Mutex<Vec<u8>>>);

impl StderrTail {
    fn capture(stderr: std::process::ChildStderr) -> Self {
        let tail = StderrTail(Arc::new(Mutex::new(Vec::new())));
        let sink = Arc::clone(&tail.0);
        std::thread::spawn(move || {
            let mut stderr = stderr;
            let mut chunk = [0u8; 1024];
            while let Ok(n) = stderr.read(&mut chunk) {
                if n == 0 {
                    break;
                }
                let mut sink = sink.lock().expect("stderr tail lock");
                sink.extend_from_slice(&chunk[..n]);
                let excess = sink.len().saturating_sub(STDERR_TAIL);
                if excess > 0 {
                    sink.drain(..excess);
                }
            }
        });
        tail
    }

    fn get(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("stderr tail lock")).into_owned()
    }
}

enum PeerKind {
    /// In-process router thread.
    Thread(Option<std::thread::JoinHandle<Result<(), TraceError>>>),
    /// Spawned child process.
    Child {
        child: std::process::Child,
        stderr: StderrTail,
    },
    /// TCP connection to an external router.
    Tcp { addr: String },
}

struct Peer {
    writer: wire::FrameWriter<Box<dyn Write + Send>>,
    reader: io::BufReader<Box<dyn Read + Send>>,
    kind: PeerKind,
    /// Set once this peer's failure has been diagnosed (avoid
    /// double-reaping in Drop).
    failed: bool,
}

impl Peer {
    /// Turns an I/O failure on this peer's connection into the single
    /// clear error: reaps a child for its exit status and stderr tail,
    /// joins a thread for its own `TraceError`.
    fn diagnose(&mut self, index: usize, io_err: &io::Error) -> TraceError {
        self.failed = true;
        match &mut self.kind {
            PeerKind::Thread(handle) => match handle.take().map(|h| h.join()) {
                Some(Ok(Err(e))) => TraceError::router(index, e.to_string()),
                Some(Err(_)) => TraceError::router(index, "router thread panicked"),
                _ => TraceError::router(index, io_err.to_string()),
            },
            PeerKind::Child { child, stderr } => {
                // The pipe broke, so the child is dead or dying; kill
                // covers the half-closed case, then reap.
                let _ = child.kill();
                let status = child.wait();
                let tail = stderr.get();
                let mut reason = match status {
                    Ok(s) => format!("router process exited with {s}"),
                    Err(e) => format!("router process unreachable ({e})"),
                };
                if !tail.trim().is_empty() {
                    reason.push_str(&format!("; stderr: {}", tail.trim()));
                } else {
                    reason.push_str(&format!(" ({io_err})"));
                }
                TraceError::router(index, reason)
            }
            PeerKind::Tcp { addr } => {
                TraceError::router(index, format!("connection to {addr} failed: {io_err}"))
            }
        }
    }
}

/// The distributed correlation coordinator — the engine behind
/// [`Mode::Distributed`](crate::pipeline::Mode::Distributed); callers
/// reach it through [`crate::pipeline::Pipeline`]. See the module docs
/// for the architecture and the byte-identity contract.
pub(crate) struct DistCorrelator {
    core: ReaderCore,
    peers: Vec<Peer>,
    workers_per_router: usize,
    /// Per-global-shard batch under construction.
    pending: Vec<Vec<ShardMsg>>,
    /// Per-peer claim string tables.
    encs: Vec<wire::StrEnc>,
    /// Per-router spill subdirectories this coordinator created (and
    /// removes after the drain).
    spill_dirs: Vec<PathBuf>,
    started: Instant,
    finished: bool,
}

impl std::fmt::Debug for DistCorrelator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistCorrelator")
            .field("routers", &self.peers.len())
            .field("workers_per_router", &self.workers_per_router)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl DistCorrelator {
    /// Connects `routers` router peers of `workers_per_router` workers
    /// each over `transport` and sends their Hello frames.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for an invalid config or topology
    /// and a [`TraceError::Router`] when a peer cannot be reached.
    pub fn new(
        config: CorrelatorConfig,
        routers: usize,
        workers_per_router: usize,
        transport: &RouterTransport,
    ) -> Result<Self, TraceError> {
        config.validate()?;
        let wpr = workers_per_router.max(1);
        if routers == 0 {
            return Err(TraceError::config(
                "distributed mode needs at least 1 router",
            ));
        }
        if routers > MAX_ROUTERS {
            return Err(TraceError::config(format!(
                "router count {routers} exceeds the maximum of {MAX_ROUTERS}"
            )));
        }
        let total = routers * wpr;
        if total > MAX_SHARDS {
            return Err(TraceError::config(format!(
                "{routers} routers x {wpr} workers = {total} shards exceeds the maximum of {MAX_SHARDS}"
            )));
        }
        if let RouterTransport::Connect { addrs } = transport {
            if addrs.len() != routers {
                return Err(TraceError::config(format!(
                    "{} router addresses for {routers} routers",
                    addrs.len()
                )));
            }
        }

        // The one canonical reader over the global shard space: global
        // shard s lives on router s / wpr as local worker s % wpr
        // (contiguous blocks), so output collection order IS global
        // shard order.
        let core = ReaderCore::new(&config, total as u32);
        // Workers get the same budget split as Mode::Sharded(total) —
        // a precondition of byte-identical spill/shed behavior.
        let wc = worker_config(&config, total);

        // Per-router spill namespace: router i pages into its own
        // subdirectory (named with the coordinator pid, so concurrent
        // clusters sharing --spill-dir cannot collide), created here
        // and removed after the drain.
        let spill_base = wc
            .memory_budget
            .is_some()
            .then(|| wc.spill_dir.clone().unwrap_or_else(std::env::temp_dir));
        let mut spill_dirs = Vec::new();

        let mut peers = Vec::with_capacity(routers);
        for i in 0..routers {
            let mut rc = wc.clone();
            if let Some(base) = &spill_base {
                let dir = base.join(format!("pt-dist-{}-r{i}", std::process::id()));
                std::fs::create_dir_all(&dir).map_err(|e| {
                    TraceError::config(format!(
                        "cannot create router spill dir {}: {e}",
                        dir.display()
                    ))
                })?;
                spill_dirs.push(dir.clone());
                rc.spill_dir = Some(dir);
            }
            let mut peer = connect_peer(transport, i)?;
            peer.writer
                .send(wire::FRAME_HELLO, |buf| {
                    use crate::spill::codec::put_u32;
                    put_u32(buf, wire::MAGIC);
                    put_u32(buf, wire::VERSION);
                    put_u32(buf, i as u32);
                    put_u32(buf, wpr as u32);
                    wire::put_config(buf, &rc);
                })
                .map_err(|e| peer.diagnose(i, &e))?;
            peers.push(peer);
        }

        Ok(DistCorrelator {
            core,
            peers,
            workers_per_router: wpr,
            pending: vec![Vec::with_capacity(BATCH_RECORDS); total],
            encs: (0..routers).map(|_| wire::StrEnc::default()).collect(),
            spill_dirs,
            started: Instant::now(),
            finished: false,
        })
    }

    fn guard(&self) -> Result<(), TraceError> {
        if self.finished {
            Err(TraceError::Finished)
        } else {
            Ok(())
        }
    }

    /// Approximate resident bytes of the reader-side routing state and
    /// undelivered claim batches (worker state is budgeted peer-side).
    pub fn approx_router_bytes(&self) -> usize {
        self.core.approx_bytes()
            + self
                .pending
                .iter()
                .map(|b| b.len() * std::mem::size_of::<ShardMsg>())
                .sum::<usize>()
    }

    fn send_batch(&mut self, shard: usize) -> Result<(), TraceError> {
        let batch = std::mem::replace(&mut self.pending[shard], Vec::with_capacity(BATCH_RECORDS));
        let router = shard / self.workers_per_router;
        let worker = (shard % self.workers_per_router) as u32;
        let enc = &mut self.encs[router];
        let peer = &mut self.peers[router];
        peer.writer
            .send(wire::FRAME_CLAIM, |buf| {
                use crate::spill::codec::put_u32;
                put_u32(buf, worker);
                put_u32(buf, batch.len() as u32);
                for msg in &batch {
                    wire::put_msg(buf, enc, msg);
                }
            })
            .map_err(|e| peer.diagnose(router, &e))
    }

    fn pump_router(&mut self, final_input: bool) -> Result<(), TraceError> {
        // The borrow checker cannot split `self` between the dispatch
        // closure and `core`, so drain routable shards into a local
        // ready-list first, then ship full batches.
        let DistCorrelator { core, pending, .. } = self;
        let mut full: Vec<usize> = Vec::new();
        let mut dispatch = |m: ShardMsg, shard: u32| -> Result<(), TraceError> {
            let shard = shard as usize;
            pending[shard].push(m);
            if pending[shard].len() >= BATCH_RECORDS && !full.contains(&shard) {
                full.push(shard);
            }
            Ok(())
        };
        core.pump(final_input, &mut dispatch)?;
        // Ship in exact BATCH_RECORDS chunks — the same batch
        // boundaries the in-process sharded dispatch produces.
        for shard in full {
            while self.pending[shard].len() >= BATCH_RECORDS {
                let rest = self.pending[shard].split_off(BATCH_RECORDS);
                self.send_batch(shard)?;
                self.pending[shard] = rest;
            }
        }
        Ok(())
    }

    /// Routes one owned raw record into the cluster; see
    /// [`crate::shard::ShardedCorrelator::push`] for ordering rules.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] after [`Self::finish`], or a
    /// [`TraceError::Router`] when a peer died.
    pub fn push(&mut self, rec: RawRecord) -> Result<(), TraceError> {
        self.guard()?;
        self.core.ingest(rec);
        self.pump_router(false)
    }

    /// Parses and routes one TCP_TRACE log line (zero-copy ingest).
    ///
    /// # Errors
    ///
    /// Returns a parse error for a malformed line, and
    /// [`TraceError::Finished`] after [`Self::finish`].
    pub fn push_line(&mut self, line: &str) -> Result<(), TraceError> {
        self.guard()?;
        let r = RawRecordRef::parse_line(line)?;
        self.core.stage_ref(&r);
        self.pump_router(false)
    }

    /// Zero-copy staging without routing (parallel ingest front-end).
    pub(crate) fn stage_ref(&mut self, r: &RawRecordRef<'_>) {
        self.core.stage_ref(r);
    }

    /// Flushes all partial claim batches to the routers.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] after [`Self::finish`].
    pub fn flush(&mut self) -> Result<(), TraceError> {
        self.guard()?;
        for shard in 0..self.pending.len() {
            if !self.pending[shard].is_empty() {
                self.send_batch(shard)?;
            }
        }
        for i in 0..self.peers.len() {
            let peer = &mut self.peers[i];
            peer.writer.flush().map_err(|e| peer.diagnose(i, &e))?;
        }
        Ok(())
    }

    /// Closes the cluster: drains the router, ships remaining claims,
    /// sends `Finish` to every peer, collects all worker outputs in
    /// global shard order and performs the canonical merge. The
    /// coordinator is spent afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] when called twice and
    /// [`TraceError::Router`] when a peer failed.
    pub fn finish(&mut self) -> Result<CorrelationOutput, TraceError> {
        self.guard()?;
        self.pump_router(true)?;
        for shard in 0..self.pending.len() {
            if !self.pending[shard].is_empty() {
                self.send_batch(shard)?;
            }
        }
        self.finished = true;
        for i in 0..self.peers.len() {
            let peer = &mut self.peers[i];
            let sent = peer
                .writer
                .send(wire::FRAME_FINISH, |_| {})
                .and_then(|()| peer.writer.flush());
            sent.map_err(|e| peer.diagnose(i, &e))?;
        }
        // Collect outputs peer by peer, in router order; within a
        // peer, outputs arrive in local worker order — together that
        // is global shard order, which the canonical merge requires.
        let mut outputs = Vec::with_capacity(self.peers.len() * self.workers_per_router);
        let mut buf = Vec::new();
        for i in 0..self.peers.len() {
            for expected in 0..self.workers_per_router {
                let peer = &mut self.peers[i];
                let frame = wire::read_frame(&mut peer.reader, &mut buf);
                let ty = match frame {
                    Ok(Some(ty)) => ty,
                    Ok(None) => {
                        let e = io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed early");
                        return Err(peer.diagnose(i, &e));
                    }
                    Err(e) => return Err(peer.diagnose(i, &e)),
                };
                match ty {
                    wire::FRAME_OUTPUT => {
                        let mut d = crate::spill::codec::Dec::new(&buf);
                        let (worker, out) = wire::get_output(&mut d);
                        if worker as usize != expected || !d.is_empty() {
                            return Err(TraceError::router(
                                i,
                                format!("malformed output frame (worker {worker})"),
                            ));
                        }
                        outputs.push(out);
                    }
                    wire::FRAME_ERROR => {
                        let mut d = crate::spill::codec::Dec::new(&buf);
                        let msg = d.str().to_owned();
                        self.peers[i].failed = true;
                        return Err(TraceError::router(i, msg));
                    }
                    ty => {
                        return Err(TraceError::router(
                            i,
                            format!("unexpected frame type {ty} in output stream"),
                        ))
                    }
                }
            }
        }
        // Reap cleanly: a spawned child should now exit zero; a
        // nonzero exit after successful outputs still fails the run
        // (its spill cleanup is unverified).
        for (i, peer) in self.peers.iter_mut().enumerate() {
            if let PeerKind::Child { child, stderr } = &mut peer.kind {
                peer.failed = true; // reaped here either way
                match child.wait() {
                    Ok(s) if s.success() => {}
                    Ok(s) => {
                        let tail = stderr.get();
                        return Err(TraceError::router(
                            i,
                            format!("router process exited with {s}; stderr: {}", tail.trim()),
                        ));
                    }
                    Err(e) => {
                        return Err(TraceError::router(i, format!("cannot reap router: {e}")))
                    }
                }
            }
            if let PeerKind::Thread(handle) = &mut peer.kind {
                match handle.take().map(|h| h.join()) {
                    Some(Ok(Ok(()))) | None => {}
                    Some(Ok(Err(e))) => return Err(TraceError::router(i, e.to_string())),
                    Some(Err(_)) => return Err(TraceError::router(i, "router thread panicked")),
                }
            }
        }
        self.cleanup_spill_dirs();
        Ok(self.core.merge(outputs, self.started))
    }

    fn cleanup_spill_dirs(&mut self) {
        for dir in self.spill_dirs.drain(..) {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

impl Drop for DistCorrelator {
    fn drop(&mut self) {
        // Hang up, kill and reap abandoned peers so nothing blocks or
        // leaks; then remove the per-router spill namespaces.
        for peer in &mut self.peers {
            let _ = peer.writer.flush();
        }
        for peer in self.peers.drain(..) {
            let Peer {
                writer,
                reader,
                kind,
                failed,
            } = peer;
            drop(writer);
            drop(reader);
            match kind {
                PeerKind::Thread(Some(handle)) => {
                    let _ = handle.join();
                }
                PeerKind::Thread(None) => {}
                PeerKind::Child { mut child, .. } => {
                    if !failed {
                        let _ = child.kill();
                    }
                    let _ = child.wait();
                }
                PeerKind::Tcp { .. } => {}
            }
        }
        self.cleanup_spill_dirs();
    }
}

/// Establishes one peer connection for the given transport.
fn connect_peer(transport: &RouterTransport, index: usize) -> Result<Peer, TraceError> {
    match transport {
        RouterTransport::InProcess => {
            let (coord_w, router_r) = pipe();
            let (router_w, coord_r) = pipe();
            let handle = std::thread::spawn(move || serve_router(router_r, router_w));
            Ok(Peer {
                writer: wire::FrameWriter::new(Box::new(coord_w)),
                reader: io::BufReader::new(Box::new(coord_r) as Box<dyn Read + Send>),
                kind: PeerKind::Thread(Some(handle)),
                failed: false,
            })
        }
        RouterTransport::Spawn { exe } => spawn_child_peer(exe, index),
        RouterTransport::Connect { addrs } => {
            let addr = &addrs[index];
            let stream = std::net::TcpStream::connect(addr)
                .map_err(|e| TraceError::router(index, format!("cannot connect to {addr}: {e}")))?;
            let _ = stream.set_nodelay(true);
            let read_half = stream.try_clone().map_err(|e| {
                TraceError::router(index, format!("cannot clone socket to {addr}: {e}"))
            })?;
            Ok(Peer {
                writer: wire::FrameWriter::new(Box::new(io::BufWriter::new(stream))),
                reader: io::BufReader::new(Box::new(read_half) as Box<dyn Read + Send>),
                kind: PeerKind::Tcp { addr: addr.clone() },
                failed: false,
            })
        }
    }
}

/// Spawns `exe router --stdio` bridged over a Unix socketpair: both
/// the child's stdin and stdout are ends of the same bidirectional
/// socket, so the child talks the protocol through plain
/// `stdin()`/`stdout()` without any fd juggling.
#[cfg(unix)]
fn spawn_child_peer(exe: &std::path::Path, index: usize) -> Result<Peer, TraceError> {
    use std::os::fd::OwnedFd;
    use std::os::unix::net::UnixStream;
    let err = |what: &str, e: io::Error| TraceError::router(index, format!("{what}: {e}"));
    let (mine, theirs) = UnixStream::pair().map_err(|e| err("cannot create socketpair", e))?;
    let theirs_out = theirs
        .try_clone()
        .map_err(|e| err("cannot clone socketpair", e))?;
    let mut child = std::process::Command::new(exe)
        .args(["router", "--stdio"])
        .stdin(std::process::Stdio::from(OwnedFd::from(theirs)))
        .stdout(std::process::Stdio::from(OwnedFd::from(theirs_out)))
        .stderr(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| err(&format!("cannot spawn {}", exe.display()), e))?;
    let stderr = StderrTail::capture(child.stderr.take().expect("piped stderr"));
    let read_half = mine
        .try_clone()
        .map_err(|e| err("cannot clone socketpair", e))?;
    Ok(Peer {
        writer: wire::FrameWriter::new(Box::new(io::BufWriter::new(mine))),
        reader: io::BufReader::new(Box::new(read_half) as Box<dyn Read + Send>),
        kind: PeerKind::Child { child, stderr },
        failed: false,
    })
}

/// Non-Unix fallback: plain stdin/stdout pipes (same wire protocol,
/// two unidirectional pipes instead of one socketpair).
#[cfg(not(unix))]
fn spawn_child_peer(exe: &std::path::Path, index: usize) -> Result<Peer, TraceError> {
    let err = |what: &str, e: io::Error| TraceError::router(index, format!("{what}: {e}"));
    let mut child = std::process::Command::new(exe)
        .args(["router", "--stdio"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| err(&format!("cannot spawn {}", exe.display()), e))?;
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    let stderr = StderrTail::capture(child.stderr.take().expect("piped stderr"));
    Ok(Peer {
        writer: wire::FrameWriter::new(Box::new(io::BufWriter::new(stdin))),
        reader: io::BufReader::new(Box::new(stdout) as Box<dyn Read + Send>),
        kind: PeerKind::Child { child, stderr },
        failed: false,
    })
}

/// Batch convenience: correlates a complete record set through the
/// distributed pipeline.
///
/// # Errors
///
/// Returns a configuration error for an invalid config/topology and
/// [`TraceError::Router`] when a peer failed.
pub(crate) fn correlate(
    config: CorrelatorConfig,
    routers: usize,
    workers_per_router: usize,
    transport: &RouterTransport,
    records: Vec<RawRecord>,
) -> Result<CorrelationOutput, TraceError> {
    let mut dc = DistCorrelator::new(config, routers, workers_per_router, transport)?;
    for rec in records {
        dc.core.ingest(rec);
    }
    dc.finish()
}

/// Batch convenience over a TCP_TRACE text log (zero-copy ingest).
///
/// # Errors
///
/// Returns the first parse error, a configuration error, or
/// [`TraceError::Router`] when a peer failed.
pub(crate) fn correlate_text(
    config: CorrelatorConfig,
    routers: usize,
    workers_per_router: usize,
    transport: &RouterTransport,
    text: &str,
) -> Result<CorrelationOutput, TraceError> {
    let mut dc = DistCorrelator::new(config, routers, workers_per_router, transport)?;
    for r in parse_log_iter(text) {
        dc.core.stage_ref(&r?);
    }
    dc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPointSpec;
    use crate::activity::{Activity, ActivityType, Channel, ContextId, LocalTime, Nanos};
    use crate::shard::ShardedCorrelator;

    fn access() -> AccessPointSpec {
        AccessPointSpec::new(
            [80],
            [
                "10.0.0.1".parse().unwrap(),
                "10.0.0.2".parse().unwrap(),
                "10.0.0.3".parse().unwrap(),
            ],
        )
    }

    /// Interleaved three-tier requests from several clients plus
    /// untraced-peer noise, enough sessions to spread across shards.
    fn cluster_log(clients: usize) -> String {
        let mut log = String::new();
        for c in 0..clients as u64 {
            let base = c * 250;
            let port = 4001 + c;
            let tid = 7 + c;
            for line in [
                format!(
                    "{} web httpd 7 {tid} RECEIVE 192.168.0.9:{}-10.0.0.1:80 120",
                    1000 + base,
                    5000 + c
                ),
                format!(
                    "{} web httpd 7 {tid} SEND 10.0.0.1:{port}-10.0.0.2:8009 64",
                    2000 + base
                ),
                format!(
                    "{} app java 9 {} RECEIVE 10.0.0.1:{port}-10.0.0.2:8009 64",
                    500_900 + base,
                    21 + c
                ),
                format!(
                    "{} app java 9 {} SEND 10.0.0.2:8009-10.0.0.1:{port} 256",
                    504_000 + base,
                    21 + c
                ),
                format!(
                    "{} web httpd 7 {tid} RECEIVE 10.0.0.2:8009-10.0.0.1:{port} 256",
                    4500 + base
                ),
                format!(
                    "{} web httpd 7 {tid} SEND 10.0.0.1:80-192.168.0.9:{} 512",
                    5000 + base,
                    5000 + c
                ),
            ] {
                log.push_str(&line);
                log.push('\n');
            }
        }
        log
    }

    fn render(out: &CorrelationOutput) -> String {
        // Wall time is the one legitimately nondeterministic metric.
        let mut m = out.metrics.clone();
        m.wall = std::time::Duration::ZERO;
        format!("{:?}|{:?}|{m:?}", out.cags, out.unfinished)
    }

    fn sharded_reference(shards: usize, text: &str) -> String {
        let cfg = CorrelatorConfig::new(access());
        render(&ShardedCorrelator::correlate_text(cfg, shards, text).unwrap())
    }

    #[test]
    fn in_process_cluster_matches_sharded_bytes() {
        let log = cluster_log(6);
        for (routers, wpr) in [(1, 1), (1, 4), (2, 2), (4, 1), (3, 2)] {
            let cfg = CorrelatorConfig::new(access());
            let out = correlate_text(cfg, routers, wpr, &RouterTransport::InProcess, &log).unwrap();
            assert_eq!(
                render(&out),
                sharded_reference(routers * wpr, &log),
                "routers={routers} wpr={wpr}"
            );
        }
    }

    #[test]
    fn tcp_cluster_matches_sharded_bytes() {
        let log = cluster_log(5);
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..2 {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            addrs.push(l.local_addr().unwrap().to_string());
            handles.push(std::thread::spawn(move || {
                let (stream, _) = l.accept().unwrap();
                let r = stream.try_clone().unwrap();
                serve_router(r, stream)
            }));
        }
        let cfg = CorrelatorConfig::new(access());
        let out = correlate_text(cfg, 2, 2, &RouterTransport::Connect { addrs }, &log).unwrap();
        assert_eq!(render(&out), sharded_reference(4, &log));
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn connect_to_dead_address_is_a_clear_router_error() {
        // Bind-then-drop gives a port with nothing listening.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let cfg = CorrelatorConfig::new(access());
        let err = DistCorrelator::new(cfg, 1, 1, &RouterTransport::Connect { addrs: vec![addr] })
            .expect_err("connection must fail");
        match err {
            TraceError::Router { router: 0, .. } => {}
            other => panic!("expected Router error, got {other:?}"),
        }
    }

    #[cfg(unix)]
    #[test]
    fn child_crash_is_diagnosed_not_hung() {
        // `false` accepts our `router --stdio` args, exits 1 without
        // speaking the protocol: the coordinator must turn the EOF /
        // broken pipe into a Router error carrying the exit status.
        let cfg = CorrelatorConfig::new(access());
        let transport = RouterTransport::Spawn {
            exe: PathBuf::from("/bin/false"),
        };
        let err = match DistCorrelator::new(cfg, 1, 1, &transport) {
            Err(e) => e,
            Ok(mut dc) => {
                let mut last = dc.flush().err();
                if last.is_none() {
                    last = dc.finish().err();
                }
                last.expect("a crashed router must fail the run")
            }
        };
        match &err {
            TraceError::Router { router: 0, reason } => {
                assert!(
                    reason.contains("exited") || reason.contains("unreachable"),
                    "reason should carry the child's fate: {reason}"
                );
            }
            other => panic!("expected Router error, got {other:?}"),
        }
    }

    #[test]
    fn spawn_with_missing_exe_fails_fast() {
        let cfg = CorrelatorConfig::new(access());
        let transport = RouterTransport::Spawn {
            exe: PathBuf::from("/nonexistent/pt-router-binary"),
        };
        let err = DistCorrelator::new(cfg, 1, 1, &transport).expect_err("spawn must fail");
        assert!(
            matches!(err, TraceError::Router { router: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn spill_dirs_are_namespaced_and_cleaned() {
        let base = std::env::temp_dir().join(format!("pt-dist-test-spill-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        // A foreign process's live spill file in the shared base must
        // survive the distributed drain untouched.
        let foreign = base.join("pt-spill-999999-0.bin");
        std::fs::write(&foreign, b"other process's live state").unwrap();

        let log = cluster_log(6);
        let mut cfg = CorrelatorConfig::new(access());
        cfg.memory_budget = Some(1); // force constant spilling
        cfg.spill_dir = Some(base.clone());
        let out = correlate_text(cfg, 2, 2, &RouterTransport::InProcess, &log).unwrap();
        assert_eq!(out.cags.len(), 6);

        let leftovers: Vec<String> = std::fs::read_dir(&base)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            leftovers,
            vec!["pt-spill-999999-0.bin".to_string()],
            "per-router dirs must be gone, the foreign file untouched"
        );
        std::fs::remove_file(&foreign).unwrap();
        std::fs::remove_dir(&base).unwrap();
    }

    #[test]
    fn distributed_spill_matches_unbounded_output() {
        // Many cold single-record sessions: under a tight budget the
        // workers must page CAGs to their per-router spill dirs and
        // still return every one at finish — identical to unbounded.
        let mut log = String::new();
        for i in 0..800u64 {
            log.push_str(&format!(
                "{} web httpd 7 7 RECEIVE 192.168.0.9:{}-10.0.0.1:80 100\n",
                i * 1_000_000,
                5_000 + i,
            ));
        }
        let unbounded = {
            let cfg = CorrelatorConfig::new(access());
            correlate_text(cfg, 2, 2, &RouterTransport::InProcess, &log).unwrap()
        };
        let base =
            std::env::temp_dir().join(format!("pt-dist-test-spill-eq-{}", std::process::id()));
        let mut cfg = CorrelatorConfig::new(access());
        cfg.memory_budget = Some(32 * 1024);
        cfg.mem_sample_every = 8;
        cfg.spill_dir = Some(base.clone());
        let spilled = correlate_text(cfg, 2, 2, &RouterTransport::InProcess, &log).unwrap();
        assert_eq!(
            format!("{:?}|{:?}", unbounded.cags, unbounded.unfinished),
            format!("{:?}|{:?}", spilled.cags, spilled.unfinished)
        );
        assert!(spilled.metrics.engine.spilled_cags > 0, "nothing spilled");
        assert_eq!(spilled.unfinished.len(), 800);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn claim_interning_roundtrips_and_amortizes() {
        let ctx = ContextId::new("web-frontend-01", "httpd", 7, 7);
        let channel = Channel::new(
            "10.0.0.1:4001".parse().unwrap(),
            "10.0.0.2:8009".parse().unwrap(),
        );
        let act = |ts: u64| {
            ShardMsg::Act(Activity {
                ty: ActivityType::Send,
                ts: LocalTime(ts),
                ctx: ctx.clone(),
                channel,
                size: 64,
                tag: 3,
                seq: Some(9000),
            })
        };
        let mut enc = wire::StrEnc::default();
        let mut first = Vec::new();
        wire::put_msg(&mut first, &mut enc, &act(1));
        let mut second = Vec::new();
        wire::put_msg(&mut second, &mut enc, &act(2));
        assert!(
            second.len() < first.len(),
            "second occurrence must use table ids ({} vs {})",
            second.len(),
            first.len()
        );
        let mut forget = Vec::new();
        wire::put_msg(&mut forget, &mut enc, &ShardMsg::ForgetCtx(ctx.clone()));

        let mut dec = wire::StrDec::default();
        for (bytes, want) in [(&first, act(1)), (&second, act(2))] {
            let mut d = crate::spill::codec::Dec::new(bytes);
            let got = wire::get_msg(&mut d, &mut dec).unwrap();
            assert_eq!(format!("{got:?}"), format!("{want:?}"));
            assert!(d.is_empty());
        }
        let mut d = crate::spill::codec::Dec::new(&forget);
        match wire::get_msg(&mut d, &mut dec).unwrap() {
            ShardMsg::ForgetCtx(c) => assert_eq!(c, ctx),
            other => panic!("wrong msg: {other:?}"),
        }
    }

    #[test]
    fn config_survives_the_wire_exhaustively() {
        let mut cfg = CorrelatorConfig::new(access());
        cfg.ranker.window = Nanos::from_millis(7);
        cfg.ranker.window_policy = crate::ranker::WindowPolicy::Adaptive {
            slack: 3,
            min: Nanos(1_000),
            max: Nanos(9_000_000),
        };
        cfg.ranker.swap = false;
        cfg.ranker.fetch_boost = 9;
        cfg.ranker.noise_discard = false;
        cfg.ranker.buffer_cap_bytes = Some(12_345);
        cfg.engine.merge_segments = false;
        cfg.engine.pending_cap = 77;
        cfg.mem_sample_every = 17;
        cfg.memory_budget = Some(1 << 22);
        cfg.spill_dir = Some(PathBuf::from("/tmp/pt-dist-wire-test"));
        cfg.shed_on_budget = true;
        cfg.max_seal_lag = Some(33);
        cfg.channel_idle_horizon = Some(44);
        cfg.lane_settle_depth = Some(55);
        cfg.orphan_parity = true;

        let mut buf = Vec::new();
        wire::put_config(&mut buf, &cfg);
        let mut d = crate::spill::codec::Dec::new(&buf);
        let back = wire::get_config(&mut d);
        assert!(d.is_empty());
        // Filters are deliberately not shipped (workers see
        // pre-filtered activities); everything else must survive.
        let strip = |c: &CorrelatorConfig| {
            let mut c = c.clone();
            c.filters = crate::filter::FilterSet::new();
            format!("{c:?}")
        };
        assert_eq!(strip(&cfg), strip(&back));
    }

    #[test]
    fn output_frame_roundtrips() {
        let log = cluster_log(3);
        let cfg = CorrelatorConfig::new(access());
        let out = ShardedCorrelator::correlate_text(cfg, 2, &log).unwrap();
        let mut buf = Vec::new();
        wire::put_output(&mut buf, 5, &out);
        let mut d = crate::spill::codec::Dec::new(&buf);
        let (worker, back) = wire::get_output(&mut d);
        assert!(d.is_empty());
        assert_eq!(worker, 5);
        assert_eq!(render(&out), render(&back));
        assert_eq!(out.metrics.wall, back.metrics.wall);
    }

    #[test]
    fn frame_reader_rejects_truncation_and_accepts_clean_eof() {
        let mut buf = Vec::new();
        // Clean EOF before any header byte.
        assert_eq!(
            wire::read_frame(&mut io::Cursor::new(&[][..]), &mut buf).unwrap(),
            None
        );
        // EOF mid-header and mid-payload are hard errors.
        let mut full = vec![wire::FRAME_CLAIM];
        full.extend_from_slice(&4u32.to_le_bytes());
        full.extend_from_slice(&[1, 2, 3, 4]);
        for cut in [1, 3, full.len() - 1] {
            let err = wire::read_frame(&mut io::Cursor::new(&full[..cut]), &mut buf)
                .expect_err("truncated frame must error");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut={cut}");
        }
        let ty = wire::read_frame(&mut io::Cursor::new(&full[..]), &mut buf)
            .unwrap()
            .unwrap();
        assert_eq!(ty, wire::FRAME_CLAIM);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn session_router_owns_straddling_sessions() {
        // One session whose records interleave with five others: every
        // vertex of each session must land in exactly one worker's
        // output (no session split across routers), which the identity
        // with the single-reader sharded merge already guarantees —
        // here we additionally pin the claim counts.
        let log = cluster_log(6);
        let cfg = CorrelatorConfig::new(access());
        let out = correlate_text(cfg, 3, 1, &RouterTransport::InProcess, &log).unwrap();
        assert_eq!(out.cags.len(), 6);
        for cag in &out.cags {
            cag.validate().expect("valid CAG");
            assert_eq!(cag.vertices.len(), 6);
        }
    }
}
