//! The PreciseTracer facade: configuration and the streaming-first
//! correlation pipeline.
//!
//! [`StreamingCorrelator`] is the one true correlation path: records are
//! pushed incrementally (`push` → `poll` → `finish`), candidates flow
//! through the [`crate::ranker::Ranker`]/[`crate::engine::Engine`] loop,
//! and completed CAGs stream out with bounded memory. The offline
//! [`Correlator`] — the paper's evaluation setup ("all experiments are
//! done offline") — is a thin drain over the streaming path: it groups a
//! complete record set per node, sorts each node by local time (the
//! "first round" sort), pushes everything and finishes. Batch and online
//! correlation therefore can never diverge.
//!
//! Sealed CAGs are extracted at fixed candidate-count boundaries (every
//! [`CorrelatorConfig::mem_sample_every`] candidates), **not** at poll
//! boundaries, so emission is a function of the candidate sequence
//! alone, never of poll cadence. The candidate sequence itself is
//! arrival-independent whenever ranking starts with the input staged
//! (push everything, then poll/finish — what the batch drain does):
//! that mode is byte-identical to batch for any log. Polling *between*
//! pushes of overlapping multi-host traffic can reorder emission —
//! an online ranker cannot see records that have not arrived — but the
//! produced CAGs are the same (pinned by the streaming property tests).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use crate::access::{AccessPointSpec, Classifier};
use crate::activity::{Activity, Nanos};
use crate::cag::Cag;
use crate::engine::Engine;
use crate::error::TraceError;
use crate::filter::FilterSet;
use crate::metrics::CorrelatorMetrics;
use crate::ranker::{RankStep, Ranker};
use crate::raw::{RangeDedup, RawRecord};

pub use crate::engine::EngineOptions;
pub use crate::ranker::{RankerOptions, WindowPolicy};

/// Full correlator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatorConfig {
    /// Access points: frontend ports + internal IPs (§3.1).
    pub access: AccessPointSpec,
    /// Attribute-based noise filters (§4.3 way 1).
    pub filters: FilterSet,
    /// Ranker options, including the sliding time window.
    pub ranker: RankerOptions,
    /// Engine options, including ablation switches.
    pub engine: EngineOptions,
    /// Sample the memory gauge (and extract sealed CAGs / enforce the
    /// memory budget) once every this many candidates.
    pub mem_sample_every: u64,
    /// Explicit resident-memory budget in bytes for the correlation
    /// state (window buffers + engine maps, per `approx_bytes`). When
    /// exceeded at a sampling point, cold state is paged out to the
    /// spill tier (the default — recall is unaffected, see
    /// [`CorrelatorConfig::spill_dir`]) or, under
    /// [`CorrelatorConfig::shed_on_budget`], the stalest unfinished
    /// CAGs are deterministically evicted until the state fits again;
    /// both are surfaced in [`crate::engine::EngineCounters`]. `None`
    /// disables budget enforcement.
    pub memory_budget: Option<usize>,
    /// Directory for the spill tier's temp file (deleted on drop).
    /// `None` uses the platform temp directory. Only consulted when a
    /// memory budget is set and `shed_on_budget` is off — the spill
    /// tier pages cold unfinished CAGs, orphan chains and range-dedup
    /// coverage to disk and faults them back on touch, so a budgeted
    /// run stays byte-identical to an unbounded one.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Revert to the pre-spill budget policy: shed (drop) the stalest
    /// state instead of spilling it. Bounds memory without any disk
    /// I/O, at the cost of recall — every shed CAG is a request the
    /// trace forgets.
    pub shed_on_budget: bool,
    /// Sealing-latency bound (SLO) for streaming consumers: a finished
    /// CAG normally leaves the engine only once its context moves on
    /// (so trailing END chunks can still amend it), which under
    /// keep-alive lulls can lag arbitrarily. With `Some(lag)`, any
    /// finished CAG older than `lag` delivered candidates is
    /// force-sealed at the next sampling boundary, surfaced in
    /// [`crate::engine::EngineCounters::forced_seals`]. `None` (the
    /// default) waits indefinitely — the only mode whose emission is
    /// timing-independent, so goldens use it.
    pub max_seal_lag: Option<u64>,
    /// Sharded mode only: evict the session router's per-channel
    /// claim/role entries once a channel has been idle for this many
    /// staged records (a record-count horizon, so it needs no clock).
    /// Only fully drained channels (no queued claims, no staged sends,
    /// no waiting receives) are evicted, so routing stays correct; an
    /// evicted channel merely forgets its last-shard drift fallback and
    /// its shared-role history, both of which rebuild on the next
    /// activity. Defaults to
    /// [`DEFAULT_CHANNEL_IDLE_HORIZON`] so endless streams stay bounded
    /// out of the box; `None` (set via `with_channel_idle_horizon(0)`)
    /// never evicts.
    pub channel_idle_horizon: Option<u64>,
    /// Sharded mode only: bounded-age settle rule for deferred-receive
    /// and noise lanes. A lane whose head receive cannot be routed yet
    /// (its channel's send bytes are still in flight on another lane)
    /// normally parks until the matching send stages — which on a
    /// stream that never delivers that send (a dead peer, a dropped
    /// capture) would buffer the lane forever. Once a parked lane has
    /// buffered this many records behind its undecidable head, the head
    /// is settled as if the stream had ended: routed on the
    /// drift/affinity fallback or discarded as noise, and counted in
    /// [`crate::ranker::RankerCounters::aged_settles`]. Defaults to
    /// [`DEFAULT_LANE_SETTLE_DEPTH`]; `None` (set via
    /// `with_lane_settle_depth(0)`) parks indefinitely, the pre-serve
    /// finish-only behavior.
    pub lane_settle_depth: Option<u64>,
    /// Sharded mode only: ship orphan-chain records (noise chatter the
    /// batch engine absorbs into never-emitted orphan chains) to the
    /// workers instead of dropping them reader-side. Dropping them —
    /// the default — keeps them off the worker hot path and counts
    /// them in [`crate::metrics::CorrelatorMetrics::orphan_dropped`];
    /// enabling parity restores per-worker engine counters (orphan
    /// merges, unmatched receives) identical to a single-shard run at
    /// the cost of shipping noise.
    pub orphan_parity: bool,
}

/// Default [`CorrelatorConfig::channel_idle_horizon`]: a channel whose
/// claims and roles have been fully drained for this many staged
/// records is forgotten. Conservative — orders of magnitude beyond any
/// real keep-alive lull at typical record rates, so reconnecting
/// channels keep their drift fallback, while abandoned channels stop
/// accumulating.
pub const DEFAULT_CHANNEL_IDLE_HORIZON: u64 = 65_536;

/// Default [`CorrelatorConfig::lane_settle_depth`]: a parked lane that
/// buffers this many records behind an undecidable head receive has its
/// head force-settled. Conservative — a healthy lane clears its head as
/// soon as the matching send stages, which is bounded by the capture's
/// reordering skew, not by traffic volume.
pub const DEFAULT_LANE_SETTLE_DEPTH: u64 = 65_536;

impl CorrelatorConfig {
    /// A default configuration for a service with the given access spec.
    pub fn new(access: AccessPointSpec) -> Self {
        CorrelatorConfig {
            access,
            filters: FilterSet::new(),
            ranker: RankerOptions::default(),
            engine: EngineOptions::default(),
            mem_sample_every: 64,
            memory_budget: None,
            spill_dir: None,
            shed_on_budget: false,
            max_seal_lag: None,
            channel_idle_horizon: Some(DEFAULT_CHANNEL_IDLE_HORIZON),
            lane_settle_depth: Some(DEFAULT_LANE_SETTLE_DEPTH),
            orphan_parity: false,
        }
    }

    /// Sets the sliding time window.
    pub fn with_window(mut self, window: Nanos) -> Self {
        self.ranker.window = window;
        self
    }

    /// Sets the window policy (static knob vs adaptive latency
    /// tracking).
    pub fn with_window_policy(mut self, policy: WindowPolicy) -> Self {
        self.ranker.window_policy = policy;
        self
    }

    /// Enables adaptive windowing with the default `p99 × 4` policy
    /// clamped to `[1ms, 10s]`.
    pub fn with_adaptive_window(self) -> Self {
        self.with_window_policy(WindowPolicy::adaptive_default())
    }

    /// Sets the explicit resident-memory budget in bytes.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Sets the spill tier's directory (see
    /// [`CorrelatorConfig::spill_dir`]).
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Sheds state under budget pressure instead of spilling it (see
    /// [`CorrelatorConfig::shed_on_budget`]).
    pub fn with_shed_on_budget(mut self) -> Self {
        self.shed_on_budget = true;
        self
    }

    /// Bounds the sealing latency of finished CAGs to `lag` delivered
    /// candidates (see [`CorrelatorConfig::max_seal_lag`]).
    pub fn with_max_seal_lag(mut self, lag: u64) -> Self {
        self.max_seal_lag = Some(lag);
        self
    }

    /// Evicts idle per-channel router state after `records` staged
    /// records; `0` disables eviction entirely (see
    /// [`CorrelatorConfig::channel_idle_horizon`]).
    pub fn with_channel_idle_horizon(mut self, records: u64) -> Self {
        self.channel_idle_horizon = (records != 0).then_some(records);
        self
    }

    /// Force-settles a parked lane's head receive once `depth` records
    /// have buffered behind it; `0` parks indefinitely (see
    /// [`CorrelatorConfig::lane_settle_depth`]).
    pub fn with_lane_settle_depth(mut self, depth: u64) -> Self {
        self.lane_settle_depth = (depth != 0).then_some(depth);
        self
    }

    /// Ships sharded orphan-chain records to the workers instead of
    /// dropping them reader-side (see
    /// [`CorrelatorConfig::orphan_parity`]).
    pub fn with_orphan_parity(mut self) -> Self {
        self.orphan_parity = true;
        self
    }

    /// Sets the attribute filters.
    pub fn with_filters(mut self, filters: FilterSet) -> Self {
        self.filters = filters;
        self
    }

    /// Sets the ranker options wholesale.
    pub fn with_ranker(mut self, ranker: RankerOptions) -> Self {
        self.ranker = ranker;
        self
    }

    /// Sets the engine options wholesale.
    pub fn with_engine(mut self, engine: EngineOptions) -> Self {
        self.engine = engine;
        self
    }

    /// Validates the window settings alone (used by harnesses that feed
    /// pre-classified activities and need no access points).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Config`] when the static window is zero or
    /// the adaptive clamp bounds are degenerate.
    pub fn validate_window(&self) -> Result<(), TraceError> {
        match self.ranker.window_policy {
            WindowPolicy::Static => {
                if self.ranker.window == Nanos::ZERO {
                    return Err(TraceError::config("sliding time window must be > 0"));
                }
            }
            WindowPolicy::Adaptive { slack, min, max } => {
                if min == Nanos::ZERO {
                    return Err(TraceError::config("adaptive window min must be > 0"));
                }
                if max < min {
                    return Err(TraceError::config("adaptive window max must be >= min"));
                }
                if slack == 0 {
                    return Err(TraceError::config("adaptive window slack must be > 0"));
                }
            }
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Config`] when the window is zero or no
    /// access point is configured.
    pub fn validate(&self) -> Result<(), TraceError> {
        self.validate_window()?;
        if self.access.is_empty() {
            return Err(TraceError::config(
                "no frontend port configured; no request would ever BEGIN",
            ));
        }
        Ok(())
    }
}

/// The result of a correlation run.
#[derive(Debug, Clone, Default)]
pub struct CorrelationOutput {
    /// Completed causal paths, in completion order.
    pub cags: Vec<Cag>,
    /// Deformed paths still open when input ended (lost activities).
    pub unfinished: Vec<Cag>,
    /// Counters, memory gauge and wall time.
    pub metrics: CorrelatorMetrics,
    /// The first few activities discarded by `is_noise` (diagnostics;
    /// the full count is in `metrics.ranker.noise_discards`).
    pub noise_samples: Vec<Activity>,
}

impl CorrelationOutput {
    /// Renumbers and reorders CAGs into the canonical root order the
    /// sharded merge uses (sort key: root BEGIN timestamp, context,
    /// channel, size, vertex count — see `ShardedCorrelator::merge`).
    ///
    /// [`Pipeline::run`](crate::pipeline::Pipeline::run) applies this
    /// to batch and streaming results so every mode emits the same
    /// bytes; incremental sessions keep emission order (ids are fixed
    /// the moment a CAG is polled) and may call this on a collected
    /// output to compare against a batch run.
    pub fn canonicalize(&mut self) {
        canonicalize_cag_ids(self);
    }
}

/// How many noise victims are kept for diagnostics.
const NOISE_SAMPLE_CAP: usize = 32;

/// Offline correlator (paper §5 operating mode) — the engine behind
/// [`crate::pipeline::Mode::Batch`]; use [`crate::pipeline::Pipeline`].
#[derive(Debug)]
pub(crate) struct Correlator {
    config: CorrelatorConfig,
}

/// Renumbers and reorders batch CAGs into the canonical root order the
/// sharded merge uses (sort key: root BEGIN timestamp, context,
/// channel, size, vertex count — see `ShardedCorrelator::merge`). On
/// well-ordered corpora the engine already seals in root order and this
/// is the identity; on gap-damaged corpora lost records shuffle
/// BEGIN-delivery order, and without canonicalization batch ids and
/// emission order deviate from every sharded run. With it, batch output
/// is *byte*-identical to sharded output for every corpus.
fn canonicalize_cag_ids(out: &mut CorrelationOutput) {
    let key = |c: &crate::cag::Cag| {
        let r = &c.vertices[0];
        (r.ts, r.ctx.clone(), r.channel, r.size, c.vertices.len())
    };
    // The sharded merge ranks the union [cags..., unfinished...]
    // with a stable sort and assigns ids by rank; mirror that exactly.
    let keys: Vec<_> = out
        .cags
        .iter()
        .chain(out.unfinished.iter())
        .map(key)
        .collect();
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
    let mut ids = vec![0u64; keys.len()];
    for (rank, &i) in order.iter().enumerate() {
        ids[i] = rank as u64;
    }
    for (i, c) in out
        .cags
        .iter_mut()
        .chain(out.unfinished.iter_mut())
        .enumerate()
    {
        c.id = ids[i];
    }
    // Emission order follows the ids (ranks are unique, so this is the
    // same stable order the sharded merge emits).
    out.cags.sort_by_key(|c| c.id);
    out.unfinished.sort_by_key(|c| c.id);
}

impl Correlator {
    /// Creates a correlator with the given configuration.
    pub fn new(config: CorrelatorConfig) -> Self {
        Correlator { config }
    }

    /// Correlates a complete set of raw records into CAGs by draining
    /// them through the streaming path (push → finish).
    ///
    /// Records may arrive in any order; they are grouped by hostname and
    /// sorted by local timestamp per node (the paper's "first round"
    /// sort) before being pushed, then every host is closed and the
    /// stream finished. There is no batch-specific correlation logic:
    /// whatever the streaming path produces is the batch result.
    ///
    /// # Errors
    ///
    /// Returns a configuration error when [`CorrelatorConfig::validate`]
    /// fails.
    pub fn correlate(&self, records: Vec<RawRecord>) -> Result<CorrelationOutput, TraceError> {
        let mut sc = StreamingCorrelator::new(self.config.clone())?;
        // Group per node; BTreeMap gives deterministic host order.
        let mut streams: BTreeMap<Arc<str>, Vec<RawRecord>> = BTreeMap::new();
        for rec in records {
            streams
                .entry(Arc::clone(&rec.hostname))
                .or_default()
                .push(rec);
        }
        for (host, mut recs) in streams {
            // Step 1 (§4): per-node sort by local timestamps.
            recs.sort_by_key(|r| r.ts);
            for rec in recs {
                sc.push(rec)?;
            }
            sc.close_host(&host)?;
        }
        let mut out = sc.finish()?;
        canonicalize_cag_ids(&mut out);
        Ok(out)
    }

    /// Correlates pre-classified activity streams (one per host, each
    /// sorted by local time) through the same streaming path. Used by
    /// harnesses that synthesize activities directly.
    ///
    /// # Errors
    ///
    /// Returns a configuration error when the window settings are
    /// invalid.
    pub fn correlate_activities(
        &self,
        streams: Vec<(Arc<str>, Vec<Activity>)>,
    ) -> Result<CorrelationOutput, TraceError> {
        let mut sc = StreamingCorrelator::for_activities(self.config.clone())?;
        let mut sorted = streams;
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for (host, mut acts) in sorted {
            acts.sort_by_key(|a| a.ts);
            for act in acts {
                sc.push_activity(act)?;
            }
            sc.close_host(&host)?;
        }
        sc.finish()
    }
}

/// Online correlation: push records as they arrive, poll finished CAGs.
///
/// This is the **primary** correlation path; [`Correlator::correlate`]
/// is a thin batch drain over it. Sealed CAGs leave the engine at fixed
/// candidate-count boundaries, so poll cadence never affects emission;
/// pushing the whole input before the first poll reproduces the batch
/// output byte-for-byte, and interleaved polling yields the same CAGs
/// (possibly emitted in a different order — see the module docs).
///
/// After [`StreamingCorrelator::finish`] the correlator is spent:
/// every further `push`/`poll`/`close_host`/`finish` returns
/// [`TraceError::Finished`].
///
/// This is the engine behind [`crate::pipeline::Mode::Streaming`];
/// callers reach it through [`crate::pipeline::Pipeline::session`]
/// (push/poll/finish map one-to-one).
#[derive(Debug)]
pub(crate) struct StreamingCorrelator {
    classifier: Classifier,
    filters: FilterSet,
    ranker: Ranker,
    engine: Engine,
    /// Ingest-stage duplicate-range elimination: v2 `seq=` offset
    /// arithmetic, v1 `retrans` marker fallback.
    range_dedup: RangeDedup,
    metrics: CorrelatorMetrics,
    /// Spill tier backing file (present iff a memory budget is set and
    /// shedding was not requested); shared with the engine.
    spill_file: Option<Arc<crate::spill::SpillFile>>,
    /// Range-dedup coverage entries currently paged out, by key.
    spilled_dedup: crate::fasthash::FxHashMap<
        (crate::activity::Channel, crate::raw::RawOp),
        crate::spill::PageExtent,
    >,
    mem_sample_every: u64,
    memory_budget: Option<usize>,
    max_seal_lag: Option<u64>,
    since_sample: u64,
    started: Instant,
    noise_samples: Vec<Activity>,
    /// Sealed CAGs extracted at sampling boundaries, awaiting the next
    /// `poll`/`finish`.
    ready: Vec<Cag>,
    /// Direct-delivery mode: activities pushed are already valid
    /// candidates (ordered and matched by an upstream ranker-equivalent
    /// such as the sharded router) and go straight to the engine; the
    /// in-process ranker is bypassed entirely.
    direct: bool,
    /// Context count after the last budget-pressure context GC, so the
    /// O(contexts) sweep only reruns once enough new entries piled up.
    last_prune_contexts: usize,
    /// `PT_BUDGET_DEBUG` was set: trace budget pressure to stderr.
    debug_budget: bool,
    /// Set by `finish`; all further calls return `TraceError::Finished`.
    finished: bool,
}

impl StreamingCorrelator {
    /// Creates a streaming correlator.
    ///
    /// # Errors
    ///
    /// Returns a configuration error when [`CorrelatorConfig::validate`]
    /// fails.
    pub fn new(config: CorrelatorConfig) -> Result<Self, TraceError> {
        config.validate()?;
        Self::build(config)
    }

    /// Creates a streaming correlator for pre-classified activities
    /// (window validation only; no access points needed because
    /// `push_activity` never classifies).
    pub(crate) fn for_activities(config: CorrelatorConfig) -> Result<Self, TraceError> {
        config.validate_window()?;
        Self::build(config)
    }

    /// Creates a **direct-delivery** correlator: pushed activities are
    /// already valid candidates — causally ordered per execution
    /// entity, each RECEIVE fully covered by previously pushed SENDs,
    /// noise removed — as produced by the sharded session router, so
    /// they go straight to the engine without per-instance ranking.
    /// Sampling, sealing, the memory budget and the context GC behave
    /// exactly as in ranked mode.
    pub(crate) fn direct_for_activities(config: CorrelatorConfig) -> Result<Self, TraceError> {
        config.validate_window()?;
        let mut sc = Self::build(config)?;
        sc.direct = true;
        Ok(sc)
    }

    fn build(config: CorrelatorConfig) -> Result<Self, TraceError> {
        let mut ranker_opts = config.ranker;
        let spill_mode = config.memory_budget.is_some() && !config.shed_on_budget;
        // In shedding mode the budget backstops the window buffers too:
        // stuck-state boosts must not fetch past it. In spill mode the
        // ranker stays uncapped — capping it would change candidate
        // selection, and the whole point of spilling is that a budgeted
        // run makes exactly the decisions an unbounded run makes.
        if ranker_opts.buffer_cap_bytes.is_none() && !spill_mode {
            ranker_opts.buffer_cap_bytes = config.memory_budget;
        }
        let mut ranker = Ranker::new(ranker_opts);
        // Under the adaptive policy the budget additionally caps the
        // window itself — window buffers cannot spill, so their ceiling
        // must scale with what the budget can hold.
        ranker.set_adaptive_budget(config.memory_budget);
        let mut engine = Engine::new(config.engine.clone());
        let mut spill_file = None;
        if spill_mode {
            let dir = config.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
            let file = Arc::new(crate::spill::SpillFile::create(&dir).map_err(|e| {
                TraceError::config(format!(
                    "cannot create spill file in {}: {e}",
                    dir.display()
                ))
            })?);
            engine.enable_spill(Arc::clone(&file));
            spill_file = Some(file);
        }
        Ok(StreamingCorrelator {
            classifier: Classifier::new(config.access.clone()),
            filters: config.filters.clone(),
            ranker,
            engine,
            range_dedup: RangeDedup::new(),
            metrics: CorrelatorMetrics::default(),
            spill_file,
            spilled_dedup: crate::fasthash::FxHashMap::default(),
            mem_sample_every: config.mem_sample_every,
            memory_budget: config.memory_budget,
            max_seal_lag: config.max_seal_lag,
            since_sample: 0,
            started: Instant::now(),
            noise_samples: Vec::new(),
            ready: Vec::new(),
            direct: false,
            last_prune_contexts: 0,
            debug_budget: std::env::var_os("PT_BUDGET_DEBUG").is_some(),
            finished: false,
        })
    }

    fn guard(&self) -> Result<(), TraceError> {
        if self.finished {
            Err(TraceError::Finished)
        } else {
            Ok(())
        }
    }

    /// Pushes one raw record (routed to its node's queue).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] after [`Self::finish`].
    pub fn push(&mut self, mut rec: RawRecord) -> Result<(), TraceError> {
        self.guard()?;
        self.metrics.records_in += 1;
        // Fault the channel's spilled dedup coverage back before the
        // decision — a spilled entry is live state, and deciding
        // without it would re-admit duplicate ranges.
        if rec.seq.is_some() && !self.spilled_dedup.is_empty() {
            let key = (rec.channel(), rec.op);
            if let Some(ext) = self.spilled_dedup.remove(&key) {
                let file = self
                    .spill_file
                    .as_ref()
                    .expect("spilled entries imply a file");
                self.range_dedup.restore_entry(key, &file.get(ext));
                self.metrics.spill_dedup_faults += 1;
            }
        }
        match self.range_dedup.decide_owned(&rec) {
            // A duplicate byte range (v2 `seq=` arithmetic, or the v1
            // `retrans` marker): the kernel already delivered these
            // bytes; admitting the record would break Rule 1's byte
            // exactness on the channel.
            crate::raw::IngestDecision::Drop => {
                self.metrics.retrans_dropped += 1;
                return Ok(());
            }
            crate::raw::IngestDecision::Admit(size) => rec.size = size,
        }
        let act = self.classifier.classify(&rec);
        if !self.filters.admits(&act) {
            self.metrics.filtered_out += 1;
            return Ok(());
        }
        self.ranker.push(act);
        Ok(())
    }

    /// Pushes one pre-classified activity (no access-point
    /// classification; attribute filters still apply).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] after [`Self::finish`].
    pub fn push_activity(&mut self, act: Activity) -> Result<(), TraceError> {
        self.guard()?;
        self.metrics.records_in += 1;
        if !self.filters.admits(&act) {
            self.metrics.filtered_out += 1;
            return Ok(());
        }
        if self.direct {
            // Already a valid candidate: deliver without ranking.
            self.engine.deliver(act);
            self.since_sample += 1;
            if self.since_sample >= self.mem_sample_every.max(1) {
                self.since_sample = 0;
                self.sample();
            }
            return Ok(());
        }
        self.ranker.push(act);
        Ok(())
    }

    /// Drops the engine's context binding for `ctx`. Used by the
    /// sharded reader when an execution entity's records migrate to a
    /// different shard: the batch engine would have re-bound the
    /// entity's `cmap` entry there, so a binding left behind here is
    /// stale and must not resolve for later records.
    pub(crate) fn forget_ctx(&mut self, ctx: &crate::activity::ContextId) {
        self.engine.forget_ctx(ctx);
    }

    /// Declares a node's stream complete. Returns `Ok(false)` when the
    /// host is unknown (no record of it was ever pushed) — a no-op, not
    /// an error, because a host's records may legitimately all have been
    /// filtered out.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] after [`Self::finish`].
    pub fn close_host(&mut self, host: &str) -> Result<bool, TraceError> {
        self.guard()?;
        Ok(self.ranker.close_host(host))
    }

    /// Runs the correlation loop until more input is needed, returning
    /// the CAGs sealed at sampling boundaries in the meantime.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] after [`Self::finish`].
    pub fn poll(&mut self) -> Result<Vec<Cag>, TraceError> {
        self.guard()?;
        self.pump();
        Ok(std::mem::take(&mut self.ready))
    }

    /// Drives the ranker/engine loop until it needs input or the
    /// sources are exhausted. Sealed CAGs are extracted — and the memory
    /// budget enforced — only at candidate-count sampling boundaries, so
    /// the emitted sequence does not depend on poll cadence.
    fn pump(&mut self) {
        loop {
            match self.ranker.rank(&self.engine) {
                RankStep::Candidate(a) => {
                    self.engine.deliver(a);
                    self.since_sample += 1;
                    if self.since_sample >= self.mem_sample_every.max(1) {
                        self.since_sample = 0;
                        self.sample();
                    }
                }
                RankStep::Noise(a) => {
                    if self.noise_samples.len() < NOISE_SAMPLE_CAP {
                        self.noise_samples.push(a);
                    }
                }
                RankStep::NeedInput | RankStep::Exhausted => break,
            }
        }
    }

    /// How many new `cmap` entries accumulate between periodic
    /// stale-context sweeps (each sweep is O(contexts)).
    const CMAP_GC_GROWTH: usize = 1_024;

    /// One sampling boundary: extract sealed CAGs (completed paths
    /// stream out, so the memory gauge measures the *working* state the
    /// window bounds), enforce the memory budget, update the gauge.
    fn sample(&mut self) {
        let sealed = self.engine.take_sealed(self.max_seal_lag);
        self.metrics.cags_finished += sealed.len() as u64;
        self.ready.extend(sealed);
        if self.memory_budget.is_none()
            && self.engine.context_count() >= self.last_prune_contexts + Self::CMAP_GC_GROWTH
        {
            // Periodic context GC outside budget mode: endless-input
            // runs without a budget must not grow dead cmap entries
            // (behavior-neutral — only Stale entries are dropped —
            // and surfaced in `EngineCounters::pruned_contexts`).
            self.engine.prune_stale_contexts();
            self.last_prune_contexts = self.engine.context_count();
        }
        if let Some(budget) = self.memory_budget {
            if self.engine.spill_enabled() {
                self.spill_to_budget(budget);
            } else {
                self.shed_to_budget(budget);
            }
        }
        let cur = self.ranker.approx_bytes() + self.engine.approx_bytes();
        if self.debug_budget && cur > self.metrics.peak_bytes {
            eprintln!(
                "peak -> {cur} (ranker={} engine={:?})",
                self.ranker.approx_bytes(),
                self.engine.approx_breakdown()
            );
        }
        self.metrics.peak_bytes = self.metrics.peak_bytes.max(cur);
    }

    /// Budget enforcement, spill flavor: page cold state out (unfinished
    /// CAGs, orphan chains, then range-dedup coverage) until resident
    /// state fits. Nothing is dropped — output stays byte-identical to
    /// an unbounded run; only faults pay latency.
    fn spill_to_budget(&mut self, budget: usize) {
        while self.ranker.approx_bytes()
            + self.engine.approx_bytes()
            + self.range_dedup.approx_bytes()
            > budget
        {
            if self.engine.spill_one() {
                continue;
            }
            if self.spill_dedup_one() {
                continue;
            }
            // The resident floor (window buffers, mmap/cmap) remains;
            // reclaim dead contexts, then accept being over.
            if self.engine.context_count() >= self.last_prune_contexts + Self::CMAP_GC_GROWTH {
                self.engine.prune_stale_contexts();
                self.last_prune_contexts = self.engine.context_count();
            }
            if self.debug_budget {
                eprintln!(
                    "over budget after spill: ranker={} engine={:?} dedup={}",
                    self.ranker.approx_bytes(),
                    self.engine.approx_breakdown(),
                    self.range_dedup.approx_bytes()
                );
            }
            break;
        }
        // New sampling boundary: the CAGs touched by the next batch of
        // candidates are the working set and stay pinned.
        self.engine.spill_checkpoint();
    }

    /// Pages the coldest range-dedup coverage entry out to the spill
    /// file. Returns `false` when no coverage remains resident.
    fn spill_dedup_one(&mut self) -> bool {
        let Some(file) = self.spill_file.as_ref() else {
            return false;
        };
        let Some((key, bytes)) = self.range_dedup.take_coldest_entry() else {
            return false;
        };
        let ext = file.put(bytes);
        self.spilled_dedup.insert(key, ext);
        self.metrics.spilled_dedup_entries += 1;
        true
    }

    /// Budget enforcement, shedding flavor (`--shed-on-budget`): drop
    /// the stalest state until resident state fits.
    fn shed_to_budget(&mut self, budget: usize) {
        while self.ranker.approx_bytes() + self.engine.approx_bytes() > budget {
            // Deterministic shedding: stalest unfinished CAG, then
            // oldest orphans/pendings; counted, never silent.
            if !self.engine.shed_one() {
                // Nothing evictable left; reclaim dead context-map
                // entries, but only once enough piled up since the
                // last sweep (the sweep is O(contexts)).
                if self.engine.context_count() >= self.last_prune_contexts + Self::CMAP_GC_GROWTH {
                    self.engine.prune_stale_contexts();
                    self.last_prune_contexts = self.engine.context_count();
                }
                if self.debug_budget {
                    eprintln!(
                        "over budget after shed: ranker={} engine={:?}",
                        self.ranker.approx_bytes(),
                        self.engine.approx_breakdown()
                    );
                }
                break;
            }
        }
    }

    /// Current approximate resident bytes (window buffers + engine
    /// state + the v2 range-dedup coverage, which is empty on v1
    /// streams) — the online-memory guarantee of the streaming mode.
    pub fn approx_bytes(&self) -> usize {
        self.ranker.approx_bytes() + self.engine.approx_bytes() + self.range_dedup.approx_bytes()
    }

    /// Live spill-tier counters `(objects spilled so far, faults so
    /// far)` across CAGs, orphan chains and dedup coverage — `(0, 0)`
    /// when the spill tier is off. For KPI streams; the final metrics
    /// carry the full breakdown.
    pub fn spill_counters(&self) -> (u64, u64) {
        let e = self.engine.counters();
        (
            e.spilled_cags + e.spilled_orphans + self.metrics.spilled_dedup_entries,
            e.spill_faults + self.metrics.spill_dedup_faults,
        )
    }

    /// The current base sliding window (static, or the latest adaptive
    /// estimate).
    #[cfg(test)]
    pub fn current_window(&self) -> Nanos {
        self.ranker.current_window()
    }

    /// Closes all streams, drains everything and returns the final
    /// output (remaining finished CAGs plus deformed paths). The
    /// correlator is spent afterwards: every further call returns
    /// [`TraceError::Finished`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Finished`] when called twice.
    pub fn finish(&mut self) -> Result<CorrelationOutput, TraceError> {
        self.guard()?;
        self.finished = true;
        self.ranker.close_all();
        self.pump();
        let mut cags = std::mem::take(&mut self.ready);
        // Flush CAGs still held for potential trailing-END amendment.
        let flushed = self.engine.take_finished();
        self.metrics.cags_finished += flushed.len() as u64;
        cags.extend(flushed);
        let unfinished = self.engine.take_unfinished();
        self.metrics.seq_dedup_ranges = self.range_dedup.seq_dedup_ranges;
        self.metrics.v2_records = self.range_dedup.v2_records;
        self.metrics.seq_gaps = self.range_dedup.seq_gaps;
        let mut metrics = std::mem::take(&mut self.metrics);
        metrics.wall = self.started.elapsed();
        metrics.final_bytes = self.ranker.approx_bytes() + self.engine.approx_bytes();
        metrics.peak_bytes = metrics.peak_bytes.max(metrics.final_bytes);
        // Deformed paths = those still open at end of input plus those
        // the memory budget evicted along the way (the evicted ones are
        // dropped, not returned — holding them would defeat the budget
        // — but they must not vanish from the count).
        metrics.cags_unfinished =
            unfinished.len() as u64 + self.engine.counters().budget_evicted_cags;
        metrics.ranker = *self.ranker.counters();
        metrics.engine = *self.engine.counters();
        if let Some(file) = &self.spill_file {
            let st = file.stats();
            metrics.spill_pages_written = st.pages_written;
            metrics.spill_pages_read = st.pages_read;
            metrics.spill_queue_hits = st.queue_hits;
        }
        if self.direct {
            // No in-process ranker ran; candidate selection happened
            // upstream (one candidate per delivered activity).
            metrics.ranker.enqueued = metrics.engine.delivered;
            metrics.ranker.candidates = metrics.engine.delivered;
        }
        Ok(CorrelationOutput {
            cags,
            unfinished,
            metrics,
            noise_samples: std::mem::take(&mut self.noise_samples),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::parse_log;

    fn access() -> AccessPointSpec {
        AccessPointSpec::new(
            [80],
            [
                "10.0.0.1".parse().unwrap(),
                "10.0.0.2".parse().unwrap(),
                "10.0.0.3".parse().unwrap(),
            ],
        )
    }

    /// A full three-tier request in TCP_TRACE format, interleaved across
    /// nodes with skewed clocks.
    fn three_tier_log() -> &'static str {
        "\
        1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120\n\
        2000 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:8009 64\n\
        500900 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:8009 64\n\
        501500 app java 9 21 SEND 10.0.0.2:4101-10.0.0.3:3306 32\n\
        901900 db mysqld 5 55 RECEIVE 10.0.0.2:4101-10.0.0.3:3306 32\n\
        903000 db mysqld 5 55 SEND 10.0.0.3:3306-10.0.0.2:4101 800\n\
        503600 app java 9 21 RECEIVE 10.0.0.3:3306-10.0.0.2:4101 800\n\
        504000 app java 9 21 SEND 10.0.0.2:8009-10.0.0.1:4001 256\n\
        4500 web httpd 7 7 RECEIVE 10.0.0.2:8009-10.0.0.1:4001 256\n\
        5000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512\n\
        "
    }

    #[test]
    fn offline_three_tier_roundtrip() {
        let records = parse_log(three_tier_log()).unwrap();
        let out = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(records)
            .unwrap();
        assert_eq!(out.cags.len(), 1);
        assert!(out.unfinished.is_empty());
        let cag = &out.cags[0];
        cag.validate().expect("valid");
        assert_eq!(cag.vertices.len(), 10);
        assert_eq!(out.metrics.cags_finished, 1);
        assert_eq!(out.metrics.ranker.noise_discards, 0);
    }

    #[test]
    fn rejects_zero_window() {
        let cfg = CorrelatorConfig::new(access()).with_window(Nanos::ZERO);
        assert!(Correlator::new(cfg).correlate(Vec::new()).is_err());
    }

    #[test]
    fn rejects_missing_access_points() {
        let cfg = CorrelatorConfig::new(AccessPointSpec::default());
        assert!(Correlator::new(cfg).correlate(Vec::new()).is_err());
    }

    #[test]
    fn unsorted_input_is_sorted_per_node() {
        let mut records = parse_log(three_tier_log()).unwrap();
        records.reverse();
        let out = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(records)
            .unwrap();
        assert_eq!(out.cags.len(), 1);
        out.cags[0].validate().expect("valid");
    }

    #[test]
    fn tiny_window_still_correct_under_skew() {
        // Window 1ns, node clocks skewed by ~0.5ms and ~0.9ms: the window
        // is per-node local time, so correctness is unaffected (§4.1).
        let records = parse_log(three_tier_log()).unwrap();
        let cfg = CorrelatorConfig::new(access()).with_window(Nanos(1));
        let out = Correlator::new(cfg).correlate(records).unwrap();
        assert_eq!(out.cags.len(), 1);
        out.cags[0].validate().expect("valid");
    }

    #[test]
    fn noise_from_untraced_peer_is_discarded() {
        let mut log = three_tier_log().to_owned();
        // A MySQL client on an untraced host talks to the database; the
        // mysqld-side receive has no matching traced send.
        log.push_str("902000 db mysqld 5 77 RECEIVE 172.16.9.9:6000-10.0.0.3:3306 48\n");
        log.push_str("902500 db mysqld 5 77 SEND 10.0.0.3:3306-172.16.9.9:6000 99\n");
        let out = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(parse_log(&log).unwrap())
            .unwrap();
        assert_eq!(out.cags.len(), 1);
        assert_eq!(out.cags[0].vertices.len(), 10);
        assert_eq!(out.metrics.ranker.noise_discards, 1);
        assert_eq!(out.metrics.engine.orphan_vertices, 1);
        // The real path is untouched by the noise.
        assert_eq!(out.metrics.cags_unfinished, 0);
    }

    #[test]
    fn attribute_filter_removes_program_noise() {
        let mut log = three_tier_log().to_owned();
        log.push_str("600 web sshd 99 99 RECEIVE 172.16.9.9:7000-10.0.0.1:22 500\n");
        log.push_str("700 web sshd 99 99 SEND 10.0.0.1:22-172.16.9.9:7000 500\n");
        let cfg =
            CorrelatorConfig::new(access()).with_filters(FilterSet::new().drop_program("sshd"));
        let out = Correlator::new(cfg)
            .correlate(parse_log(&log).unwrap())
            .unwrap();
        assert_eq!(out.metrics.filtered_out, 2);
        assert_eq!(out.cags.len(), 1);
    }

    #[test]
    fn lost_end_yields_unfinished_cag() {
        let log: String = three_tier_log()
            .lines()
            .filter(|l| !l.contains("10.0.0.1:80-192.168.0.9:5000"))
            .map(|l| format!("{l}\n"))
            .collect();
        let out = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(parse_log(&log).unwrap())
            .unwrap();
        assert_eq!(out.cags.len(), 0);
        assert_eq!(out.unfinished.len(), 1);
        assert_eq!(out.unfinished[0].vertices.len(), 9);
    }

    #[test]
    fn streaming_matches_offline() {
        let records = parse_log(three_tier_log()).unwrap();
        let offline = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(records.clone())
            .unwrap();
        let mut sc = StreamingCorrelator::new(CorrelatorConfig::new(access())).unwrap();
        let mut streamed = Vec::new();
        for r in records {
            sc.push(r).unwrap();
            streamed.extend(sc.poll().unwrap());
        }
        let done = sc.finish().unwrap();
        streamed.extend(done.cags);
        assert_eq!(streamed.len(), offline.cags.len());
        assert_eq!(streamed[0].sorted_tags(), offline.cags[0].sorted_tags());
        assert_eq!(streamed[0].vertices.len(), offline.cags[0].vertices.len());
    }

    #[test]
    fn streaming_memory_stays_bounded() {
        // Push many sequential requests; with a 10ms window the resident
        // set must not grow with the request count.
        let access = AccessPointSpec::new([80], ["10.0.0.1".parse().unwrap()]);
        let mut sc = StreamingCorrelator::new(CorrelatorConfig::new(access)).unwrap();
        let mut peak = 0usize;
        for i in 0..1_000u64 {
            let t0 = i * 1_000_000;
            sc.push(
                format!(
                    "{} web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 100",
                    t0
                )
                .parse()
                .unwrap(),
            )
            .unwrap();
            sc.push(
                format!(
                    "{} web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 200",
                    t0 + 500
                )
                .parse()
                .unwrap(),
            )
            .unwrap();
            let _ = sc.poll().unwrap();
            peak = peak.max(sc.approx_bytes());
        }
        let out = sc.finish().unwrap();
        assert_eq!(out.metrics.records_in, 2_000);
        assert!(peak < 64 * 1024, "resident {peak} bytes should stay small");
    }

    #[test]
    fn poll_cadence_does_not_change_output() {
        // The tentpole guarantee: any chunking of the same input yields
        // byte-identical results. Compare per-record polling against one
        // big push with a single finish.
        let records = parse_log(three_tier_log()).unwrap();
        let batch = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(records.clone())
            .unwrap();
        let mut sc = StreamingCorrelator::new(CorrelatorConfig::new(access())).unwrap();
        let mut streamed = Vec::new();
        for r in records {
            sc.push(r).unwrap();
            streamed.extend(sc.poll().unwrap());
        }
        let done = sc.finish().unwrap();
        streamed.extend(done.cags);
        let fmt = |cags: &[Cag]| {
            cags.iter()
                .map(|c| format!("{}:{:?}", c.id, c.sorted_tags()))
                .collect::<Vec<_>>()
        };
        assert_eq!(fmt(&streamed), fmt(&batch.cags));
        assert_eq!(done.unfinished.len(), batch.unfinished.len());
    }

    #[test]
    fn api_after_finish_returns_finished_error() {
        let mut sc = StreamingCorrelator::new(CorrelatorConfig::new(access())).unwrap();
        sc.push(
            "1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120"
                .parse()
                .unwrap(),
        )
        .unwrap();
        let out = sc.finish().unwrap();
        assert_eq!(out.metrics.records_in, 1);
        // Every entry point is consistently poisoned — no consume-by-move
        // footgun, no panic.
        let rec: RawRecord = "2000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512"
            .parse()
            .unwrap();
        assert_eq!(sc.push(rec), Err(TraceError::Finished));
        assert_eq!(sc.poll(), Err(TraceError::Finished));
        assert_eq!(sc.close_host("web"), Err(TraceError::Finished));
        assert!(matches!(sc.finish(), Err(TraceError::Finished)));
    }

    #[test]
    fn close_host_on_unknown_host_is_a_noop() {
        let mut sc = StreamingCorrelator::new(CorrelatorConfig::new(access())).unwrap();
        assert_eq!(sc.close_host("nonexistent"), Ok(false));
        sc.push(
            "1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120"
                .parse()
                .unwrap(),
        )
        .unwrap();
        assert_eq!(sc.close_host("web"), Ok(true));
        assert_eq!(sc.close_host("still-unknown"), Ok(false));
        // Closing an unknown host must not fabricate an empty open queue
        // that would wedge the drain.
        let out = sc.finish().unwrap();
        assert_eq!(out.metrics.records_in, 1);
    }

    #[test]
    fn memory_budget_evicts_stalest_unfinished_cags() {
        // Open many never-ending requests (BEGIN, no END): unfinished
        // CAGs accumulate until the budget forces deterministic eviction
        // of the oldest ones, surfaced in the engine counters. Uses the
        // explicit shedding policy; the default pages out to the spill
        // tier instead (covered by the spill tests below).
        let access = AccessPointSpec::new([80], ["10.0.0.1".parse().unwrap()]);
        let mut cfg = CorrelatorConfig::new(access)
            .with_memory_budget(8 * 1024)
            .with_shed_on_budget();
        cfg.mem_sample_every = 8;
        let mut sc = StreamingCorrelator::new(cfg).unwrap();
        for i in 0..2_000u64 {
            sc.push(
                format!(
                    "{} web httpd 7 7 RECEIVE 192.168.0.9:{}-10.0.0.1:80 100",
                    i * 1_000_000,
                    5_000 + (i % 50_000),
                )
                .parse()
                .unwrap(),
            )
            .unwrap();
            let _ = sc.poll().unwrap();
        }
        assert!(
            sc.approx_bytes() <= 8 * 1024,
            "resident {} bytes exceeds the 8 KiB budget",
            sc.approx_bytes()
        );
        let out = sc.finish().unwrap();
        assert!(
            out.metrics.engine.budget_evicted_cags > 0,
            "evictions must be surfaced in the counters: {:?}",
            out.metrics.engine
        );
        assert!(out.metrics.peak_bytes <= 8 * 1024 + 4 * 1024);
    }

    #[test]
    fn without_budget_the_same_load_grows_past_it() {
        // Sanity check for the test above: the eviction is what keeps
        // the resident set under the budget.
        let access = AccessPointSpec::new([80], ["10.0.0.1".parse().unwrap()]);
        let mut cfg = CorrelatorConfig::new(access);
        cfg.mem_sample_every = 8;
        let mut sc = StreamingCorrelator::new(cfg).unwrap();
        for i in 0..2_000u64 {
            sc.push(
                format!(
                    "{} web httpd 7 7 RECEIVE 192.168.0.9:{}-10.0.0.1:80 100",
                    i * 1_000_000,
                    5_000 + (i % 50_000),
                )
                .parse()
                .unwrap(),
            )
            .unwrap();
            let _ = sc.poll().unwrap();
        }
        assert!(sc.approx_bytes() > 8 * 1024);
        let out = sc.finish().unwrap();
        assert_eq!(out.metrics.engine.budget_evicted_cags, 0);
    }

    #[test]
    fn spill_tier_bounds_memory_without_losing_recall() {
        // Same never-ending load as the shedding test, but under the
        // default budget policy: cold CAGs page out to the spill file
        // instead of being dropped, and every one of them comes back as
        // a deformed path at finish — bounded memory, recall 1.00.
        let access = AccessPointSpec::new([80], ["10.0.0.1".parse().unwrap()]);
        let mut cfg = CorrelatorConfig::new(access).with_memory_budget(8 * 1024);
        cfg.mem_sample_every = 8;
        let mut sc = StreamingCorrelator::new(cfg).unwrap();
        for i in 0..2_000u64 {
            sc.push(
                format!(
                    "{} web httpd 7 7 RECEIVE 192.168.0.9:{}-10.0.0.1:80 100",
                    i * 1_000_000,
                    5_000 + (i % 50_000),
                )
                .parse()
                .unwrap(),
            )
            .unwrap();
            let _ = sc.poll().unwrap();
        }
        assert!(
            sc.approx_bytes() <= 16 * 1024,
            "resident {} bytes far exceeds the 8 KiB budget",
            sc.approx_bytes()
        );
        let out = sc.finish().unwrap();
        assert_eq!(out.metrics.engine.budget_evicted_cags, 0);
        assert!(out.metrics.engine.spilled_cags > 0, "nothing spilled");
        assert!(out.metrics.engine.spill_faults > 0, "nothing faulted");
        assert_eq!(out.unfinished.len(), 2_000, "spill must not cost recall");
        assert_eq!(out.metrics.cags_unfinished, 2_000);
    }

    #[test]
    fn adaptive_window_tracks_observed_latency() {
        // 2000 two-tier requests with ~2ms backend round trips: the
        // adaptive window must record RTT samples, recompute itself, and
        // stay within its clamp bounds while correlating perfectly.
        let access = AccessPointSpec::new(
            [80],
            ["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap()],
        );
        let cfg = CorrelatorConfig::new(access).with_adaptive_window();
        let mut sc = StreamingCorrelator::new(cfg).unwrap();
        for i in 0..2_000u64 {
            let t0 = i * 10_000_000;
            for line in [
                format!(
                    "{} web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 100",
                    t0
                ),
                format!(
                    "{} web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:9000 64",
                    t0 + 100_000
                ),
                format!(
                    "{} app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 64",
                    t0 + 200_000
                ),
                format!(
                    "{} app java 9 21 SEND 10.0.0.2:9000-10.0.0.1:4001 256",
                    t0 + 1_900_000
                ),
                format!(
                    "{} web httpd 7 7 RECEIVE 10.0.0.2:9000-10.0.0.1:4001 256",
                    t0 + 2_100_000
                ),
                format!(
                    "{} web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512",
                    t0 + 2_200_000
                ),
            ] {
                sc.push(line.parse().unwrap()).unwrap();
            }
            let _ = sc.poll().unwrap();
        }
        let w = sc.current_window();
        let out = sc.finish().unwrap();
        assert!(
            out.metrics.ranker.window_updates > 0,
            "window never adapted"
        );
        assert!(out.metrics.ranker.rtt_samples > 1_000);
        assert!(
            w >= Nanos::from_millis(1) && w <= Nanos::from_secs(10),
            "window {w} escaped its clamp"
        );
        assert_eq!(out.metrics.cags_finished, 2_000);
        assert_eq!(out.metrics.cags_unfinished, 0);
    }

    #[test]
    fn memory_budget_clamps_adaptive_window() {
        // The same two-tier corpus correlated twice under the adaptive
        // policy: folding a memory budget in must settle the window at
        // or below the unbudgeted settle (window buffers cannot spill,
        // so their ceiling scales with the budget), count the clamps,
        // and still account for every request.
        let access = AccessPointSpec::new(
            [80],
            ["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap()],
        );
        let run = |budget: Option<usize>| {
            let mut cfg = CorrelatorConfig::new(access.clone()).with_adaptive_window();
            if let Some(b) = budget {
                cfg = cfg.with_memory_budget(b);
            }
            let mut sc = StreamingCorrelator::new(cfg).unwrap();
            for i in 0..2_000u64 {
                let t0 = i * 10_000_000;
                for line in [
                    format!(
                        "{} web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 100",
                        t0
                    ),
                    format!(
                        "{} web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:9000 64",
                        t0 + 100_000
                    ),
                    format!(
                        "{} app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 64",
                        t0 + 200_000
                    ),
                    format!(
                        "{} app java 9 21 SEND 10.0.0.2:9000-10.0.0.1:4001 256",
                        t0 + 1_900_000
                    ),
                    format!(
                        "{} web httpd 7 7 RECEIVE 10.0.0.2:9000-10.0.0.1:4001 256",
                        t0 + 2_100_000
                    ),
                    format!(
                        "{} web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512",
                        t0 + 2_200_000
                    ),
                ] {
                    sc.push(line.parse().unwrap()).unwrap();
                }
                let _ = sc.poll().unwrap();
            }
            let w = sc.current_window();
            (w, sc.finish().unwrap())
        };
        let (free_w, free) = run(None);
        let (tight_w, tight) = run(Some(2 << 10));
        assert_eq!(free.metrics.ranker.window_clamps, 0);
        assert!(
            tight.metrics.ranker.window_clamps > 0,
            "a 2 KiB budget must bind the adaptive window"
        );
        assert!(
            tight_w <= free_w,
            "budgeted window {tight_w} settled above unbudgeted {free_w}"
        );
        assert!(tight.metrics.ranker.adaptive_window_ns > 0);
        assert_eq!(
            tight.metrics.cags_finished + tight.metrics.cags_unfinished,
            2_000,
            "the clamp must not lose requests"
        );
    }

    #[test]
    fn adaptive_config_rejects_degenerate_bounds() {
        let access = AccessPointSpec::new([80], ["10.0.0.1".parse().unwrap()]);
        let bad =
            CorrelatorConfig::new(access.clone()).with_window_policy(WindowPolicy::Adaptive {
                slack: 4,
                min: Nanos::from_millis(10),
                max: Nanos::from_millis(1),
            });
        assert!(StreamingCorrelator::new(bad).is_err());
        let zero_slack = CorrelatorConfig::new(access).with_window_policy(WindowPolicy::Adaptive {
            slack: 0,
            min: Nanos::from_millis(1),
            max: Nanos::from_secs(1),
        });
        assert!(StreamingCorrelator::new(zero_slack).is_err());
    }

    #[test]
    fn max_seal_lag_bounds_streaming_emission_latency() {
        // One request completes, then its web thread goes idle while a
        // long keep-alive lull of other traffic flows. Without the lag
        // bound the sealed CAG only leaves at finish; with it, a poll
        // mid-lull already returns it, counted in forced_seals.
        let access = AccessPointSpec::new([80], ["10.0.0.1".parse().unwrap()]);
        let run = |lag: Option<u64>| {
            let mut cfg = CorrelatorConfig::new(access.clone());
            cfg.mem_sample_every = 8;
            cfg.max_seal_lag = lag;
            let mut sc = StreamingCorrelator::new(cfg).unwrap();
            sc.push(
                "1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120"
                    .parse()
                    .unwrap(),
            )
            .unwrap();
            sc.push(
                "2000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512"
                    .parse()
                    .unwrap(),
            )
            .unwrap();
            // The lull: another client's endless requests.
            let mut early = 0usize;
            for i in 0..200u64 {
                let t = 10_000 + i * 2_000;
                sc.push(
                    format!("{t} web httpd 8 8 RECEIVE 192.168.0.7:6000-10.0.0.1:80 64")
                        .parse()
                        .unwrap(),
                )
                .unwrap();
                sc.push(
                    format!(
                        "{} web httpd 8 8 SEND 10.0.0.1:80-192.168.0.7:6000 64",
                        t + 500
                    )
                    .parse()
                    .unwrap(),
                )
                .unwrap();
                early += sc
                    .poll()
                    .unwrap()
                    .iter()
                    .filter(|c| c.vertices[0].ctx.tid == 7)
                    .count();
            }
            let out = sc.finish().unwrap();
            (early, out.metrics.engine.forced_seals)
        };
        let (early_unbounded, forced_unbounded) = run(None);
        assert_eq!(early_unbounded, 0, "idle ctx must hold its CAG");
        assert_eq!(forced_unbounded, 0);
        let (early_bounded, forced_bounded) = run(Some(16));
        assert_eq!(early_bounded, 1, "lag bound must emit within the SLO");
        assert!(forced_bounded >= 1);
    }

    #[test]
    fn periodic_context_gc_runs_without_memory_budget() {
        // Endless churn: one reused web thread (whose next BEGIN seals
        // the previous CAG) and a fresh backend thread per request.
        // Once a CAG streams out, the backend thread's cmap entry is
        // dead; without a budget, the periodic GC must reclaim them.
        let access = AccessPointSpec::new(
            [80],
            ["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap()],
        );
        let mut cfg = CorrelatorConfig::new(access);
        cfg.mem_sample_every = 16;
        let mut sc = StreamingCorrelator::new(cfg).unwrap();
        for i in 0..4_000u64 {
            let t0 = i * 1_000_000;
            let port = 5_000 + (i % 50_000);
            let tid = 100 + i;
            for line in [
                format!("{t0} web httpd 7 7 RECEIVE 192.168.0.9:{port}-10.0.0.1:80 100"),
                format!(
                    "{} web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:9000 64",
                    t0 + 100
                ),
                format!(
                    "{} app java 9 {tid} RECEIVE 10.0.0.1:4001-10.0.0.2:9000 64",
                    t0 + 200
                ),
                format!(
                    "{} app java 9 {tid} SEND 10.0.0.2:9000-10.0.0.1:4001 32",
                    t0 + 300
                ),
                format!(
                    "{} web httpd 7 7 RECEIVE 10.0.0.2:9000-10.0.0.1:4001 32",
                    t0 + 400
                ),
                format!(
                    "{} web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:{port} 200",
                    t0 + 500
                ),
            ] {
                sc.push(line.parse().unwrap()).unwrap();
            }
            let _ = sc.poll().unwrap();
        }
        let out = sc.finish().unwrap();
        assert_eq!(out.metrics.cags_finished, 4_000);
        assert!(
            out.metrics.engine.pruned_contexts > 0,
            "periodic GC must reclaim dead contexts: {:?}",
            out.metrics.engine
        );
    }

    #[test]
    fn metrics_wall_time_is_measured() {
        let records = parse_log(three_tier_log()).unwrap();
        let out = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(records)
            .unwrap();
        // Wall time is nonzero-ish; just check the field is plumbed.
        assert!(out.metrics.wall.as_nanos() > 0);
    }
}
