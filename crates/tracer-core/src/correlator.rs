//! The PreciseTracer facade: configuration, offline correlation and the
//! streaming (online) variant.
//!
//! The offline [`Correlator`] mirrors the paper's evaluation setup
//! ("all experiments are done offline"): it takes a complete set of raw
//! records, groups them per node, and drives the
//! [`crate::ranker::Ranker`]/[`crate::engine::Engine`]
//! loop to completion. [`StreamingCorrelator`] is the online extension
//! the paper leaves as future work: records are pushed incrementally and
//! finished CAGs are polled out with bounded memory.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use crate::access::{AccessPointSpec, Classifier};
use crate::activity::{Activity, Nanos};
use crate::cag::Cag;
use crate::engine::Engine;
use crate::error::TraceError;
use crate::filter::FilterSet;
use crate::metrics::CorrelatorMetrics;
use crate::ranker::{RankStep, Ranker};
use crate::raw::RawRecord;

pub use crate::engine::EngineOptions;
pub use crate::ranker::RankerOptions;

/// Full correlator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatorConfig {
    /// Access points: frontend ports + internal IPs (§3.1).
    pub access: AccessPointSpec,
    /// Attribute-based noise filters (§4.3 way 1).
    pub filters: FilterSet,
    /// Ranker options, including the sliding time window.
    pub ranker: RankerOptions,
    /// Engine options, including ablation switches.
    pub engine: EngineOptions,
    /// Sample the memory gauge once every this many candidates.
    pub mem_sample_every: u64,
}

impl CorrelatorConfig {
    /// A default configuration for a service with the given access spec.
    pub fn new(access: AccessPointSpec) -> Self {
        CorrelatorConfig {
            access,
            filters: FilterSet::new(),
            ranker: RankerOptions::default(),
            engine: EngineOptions::default(),
            mem_sample_every: 64,
        }
    }

    /// Sets the sliding time window.
    pub fn with_window(mut self, window: Nanos) -> Self {
        self.ranker.window = window;
        self
    }

    /// Sets the attribute filters.
    pub fn with_filters(mut self, filters: FilterSet) -> Self {
        self.filters = filters;
        self
    }

    /// Sets the ranker options wholesale.
    pub fn with_ranker(mut self, ranker: RankerOptions) -> Self {
        self.ranker = ranker;
        self
    }

    /// Sets the engine options wholesale.
    pub fn with_engine(mut self, engine: EngineOptions) -> Self {
        self.engine = engine;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Config`] when the window is zero or no
    /// access point is configured.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.ranker.window == Nanos::ZERO {
            return Err(TraceError::config("sliding time window must be > 0"));
        }
        if self.access.is_empty() {
            return Err(TraceError::config(
                "no frontend port configured; no request would ever BEGIN",
            ));
        }
        Ok(())
    }
}

/// The result of a correlation run.
#[derive(Debug, Clone, Default)]
pub struct CorrelationOutput {
    /// Completed causal paths, in completion order.
    pub cags: Vec<Cag>,
    /// Deformed paths still open when input ended (lost activities).
    pub unfinished: Vec<Cag>,
    /// Counters, memory gauge and wall time.
    pub metrics: CorrelatorMetrics,
    /// The first few activities discarded by `is_noise` (diagnostics;
    /// the full count is in `metrics.ranker.noise_discards`).
    pub noise_samples: Vec<Activity>,
}

/// How many noise victims are kept for diagnostics.
const NOISE_SAMPLE_CAP: usize = 32;

/// Offline correlator (paper §5 operating mode).
#[derive(Debug)]
pub struct Correlator {
    config: CorrelatorConfig,
}

impl Correlator {
    /// Creates a correlator with the given configuration.
    pub fn new(config: CorrelatorConfig) -> Self {
        Correlator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CorrelatorConfig {
        &self.config
    }

    /// Correlates a complete set of raw records into CAGs.
    ///
    /// Records may arrive in any order; they are grouped by hostname and
    /// sorted by local timestamp per node (the paper's "first round"
    /// sort).
    ///
    /// # Errors
    ///
    /// Returns a configuration error when [`CorrelatorConfig::validate`]
    /// fails.
    pub fn correlate(&self, records: Vec<RawRecord>) -> Result<CorrelationOutput, TraceError> {
        self.config.validate()?;
        let classifier = Classifier::new(self.config.access.clone());
        let mut metrics = CorrelatorMetrics {
            records_in: records.len() as u64,
            ..CorrelatorMetrics::default()
        };

        // Group per node; BTreeMap gives deterministic host order.
        let mut streams: BTreeMap<Arc<str>, Vec<Activity>> = BTreeMap::new();
        for rec in &records {
            let act = classifier.classify(rec);
            if !self.config.filters.admits(&act) {
                metrics.filtered_out += 1;
                continue;
            }
            streams
                .entry(Arc::clone(&rec.hostname))
                .or_default()
                .push(act);
        }
        // Step 1 (§4): per-node sort by local timestamps.
        let mut stream_vec: Vec<(Arc<str>, Vec<Activity>)> = Vec::new();
        for (host, mut acts) in streams {
            acts.sort_by_key(|a| a.ts);
            stream_vec.push((host, acts));
        }

        let ranker = Ranker::from_streams(self.config.ranker, stream_vec);
        let engine = Engine::new(self.config.engine.clone());
        let (output, _ranker, _engine) =
            run_loop(ranker, engine, metrics, self.config.mem_sample_every);
        Ok(output)
    }

    /// Correlates pre-classified activity streams (one per host, each
    /// sorted by local time). Used by harnesses that synthesize
    /// activities directly.
    ///
    /// # Errors
    ///
    /// Returns a configuration error when the window is zero.
    pub fn correlate_activities(
        &self,
        streams: Vec<(Arc<str>, Vec<Activity>)>,
    ) -> Result<CorrelationOutput, TraceError> {
        if self.config.ranker.window == Nanos::ZERO {
            return Err(TraceError::config("sliding time window must be > 0"));
        }
        let mut metrics = CorrelatorMetrics::default();
        let mut kept: Vec<(Arc<str>, Vec<Activity>)> = Vec::new();
        for (host, acts) in streams {
            metrics.records_in += acts.len() as u64;
            let mut v: Vec<Activity> = acts
                .into_iter()
                .filter(|a| {
                    let ok = self.config.filters.admits(a);
                    if !ok {
                        metrics.filtered_out += 1;
                    }
                    ok
                })
                .collect();
            v.sort_by_key(|a| a.ts);
            kept.push((host, v));
        }
        let ranker = Ranker::from_streams(self.config.ranker, kept);
        let engine = Engine::new(self.config.engine.clone());
        let (output, _r, _e) = run_loop(ranker, engine, metrics, self.config.mem_sample_every);
        Ok(output)
    }
}

/// Drives ranker and engine to exhaustion; shared by offline and
/// streaming paths.
fn run_loop(
    mut ranker: Ranker,
    mut engine: Engine,
    mut metrics: CorrelatorMetrics,
    sample_every: u64,
) -> (CorrelationOutput, Ranker, Engine) {
    let start = Instant::now();
    let mut since_sample = 0u64;
    let mut noise_samples = Vec::new();
    let mut cags = Vec::new();
    loop {
        match ranker.rank(&engine) {
            RankStep::Candidate(a) => {
                engine.deliver(a);
                since_sample += 1;
                if since_sample >= sample_every.max(1) {
                    since_sample = 0;
                    // Completed paths stream out (the tool writes them to
                    // its output); the memory gauge therefore measures
                    // the *working* state the window bounds: ranker
                    // buffers, index maps and unfinished CAGs.
                    cags.extend(engine.take_sealed());
                    let cur = ranker.approx_bytes() + engine.approx_bytes();
                    metrics.peak_bytes = metrics.peak_bytes.max(cur);
                }
            }
            RankStep::Noise(a) => {
                if noise_samples.len() < NOISE_SAMPLE_CAP {
                    noise_samples.push(a);
                }
            }
            RankStep::NeedInput | RankStep::Exhausted => break,
        }
    }
    metrics.wall = start.elapsed();
    metrics.final_bytes = ranker.approx_bytes() + engine.approx_bytes();
    metrics.peak_bytes = metrics.peak_bytes.max(metrics.final_bytes);
    cags.extend(engine.take_finished());
    let unfinished = engine.take_unfinished();
    metrics.cags_finished = cags.len() as u64;
    metrics.cags_unfinished = unfinished.len() as u64;
    metrics.ranker = *ranker.counters();
    metrics.engine = *engine.counters();
    (
        CorrelationOutput {
            cags,
            unfinished,
            metrics,
            noise_samples,
        },
        ranker,
        engine,
    )
}

/// Online correlation: push records as they arrive, poll finished CAGs.
///
/// # Examples
///
/// ```
/// use tracer_core::prelude::*;
///
/// # fn main() -> Result<(), TraceError> {
/// let access = AccessPointSpec::new([80], ["10.0.0.1".parse().unwrap()]);
/// let mut sc = StreamingCorrelator::new(CorrelatorConfig::new(access))?;
/// sc.push(
///     "1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120"
///         .parse::<RawRecord>()?,
/// );
/// sc.push(
///     "2000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512"
///         .parse::<RawRecord>()?,
/// );
/// let done = sc.finish();
/// assert_eq!(done.cags.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamingCorrelator {
    classifier: Classifier,
    filters: FilterSet,
    ranker: Ranker,
    engine: Engine,
    metrics: CorrelatorMetrics,
    mem_sample_every: u64,
    since_sample: u64,
    started: Instant,
    noise_samples: Vec<Activity>,
}

impl StreamingCorrelator {
    /// Creates a streaming correlator.
    ///
    /// # Errors
    ///
    /// Returns a configuration error when [`CorrelatorConfig::validate`]
    /// fails.
    pub fn new(config: CorrelatorConfig) -> Result<Self, TraceError> {
        config.validate()?;
        Ok(StreamingCorrelator {
            classifier: Classifier::new(config.access.clone()),
            filters: config.filters.clone(),
            ranker: Ranker::new(config.ranker),
            engine: Engine::new(config.engine.clone()),
            metrics: CorrelatorMetrics::default(),
            mem_sample_every: config.mem_sample_every,
            since_sample: 0,
            started: Instant::now(),
            noise_samples: Vec::new(),
        })
    }

    /// Pushes one raw record (routed to its node's queue).
    pub fn push(&mut self, rec: RawRecord) {
        self.metrics.records_in += 1;
        let act = self.classifier.classify(&rec);
        if !self.filters.admits(&act) {
            self.metrics.filtered_out += 1;
            return;
        }
        self.ranker.push(act);
    }

    /// Declares a node's stream complete.
    pub fn close_host(&mut self, host: &str) {
        self.ranker.close_host(host);
    }

    /// Runs the correlation loop until more input is needed, returning
    /// any CAGs completed in the meantime.
    pub fn poll(&mut self) -> Vec<Cag> {
        loop {
            match self.ranker.rank(&self.engine) {
                RankStep::Candidate(a) => {
                    self.engine.deliver(a);
                    self.since_sample += 1;
                    if self.since_sample >= self.mem_sample_every.max(1) {
                        self.since_sample = 0;
                        let cur = self.ranker.approx_bytes() + self.engine.approx_bytes();
                        self.metrics.peak_bytes = self.metrics.peak_bytes.max(cur);
                    }
                }
                RankStep::Noise(a) => {
                    if self.noise_samples.len() < NOISE_SAMPLE_CAP {
                        self.noise_samples.push(a);
                    }
                }
                RankStep::NeedInput | RankStep::Exhausted => break,
            }
        }
        // Only sealed CAGs leave: a just-finished CAG may still receive
        // trailing END segments (chunked responses).
        let cags = self.engine.take_sealed();
        self.metrics.cags_finished += cags.len() as u64;
        cags
    }

    /// Current approximate resident bytes (window buffers + engine
    /// state) — the online-memory guarantee of the streaming mode.
    pub fn approx_bytes(&self) -> usize {
        self.ranker.approx_bytes() + self.engine.approx_bytes()
    }

    /// Closes all streams, drains everything and returns the final
    /// output (finished CAGs from this call only, plus deformed paths).
    pub fn finish(mut self) -> CorrelationOutput {
        self.ranker.close_all();
        let mut cags = self.poll();
        // Flush CAGs still held for potential trailing-END amendment.
        let flushed = self.engine.take_finished();
        self.metrics.cags_finished += flushed.len() as u64;
        cags.extend(flushed);
        let unfinished = self.engine.take_unfinished();
        let mut metrics = self.metrics;
        metrics.wall = self.started.elapsed();
        metrics.final_bytes = self.ranker.approx_bytes() + self.engine.approx_bytes();
        metrics.peak_bytes = metrics.peak_bytes.max(metrics.final_bytes);
        metrics.cags_unfinished = unfinished.len() as u64;
        metrics.ranker = *self.ranker.counters();
        metrics.engine = *self.engine.counters();
        CorrelationOutput {
            cags,
            unfinished,
            metrics,
            noise_samples: self.noise_samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::parse_log;

    fn access() -> AccessPointSpec {
        AccessPointSpec::new(
            [80],
            [
                "10.0.0.1".parse().unwrap(),
                "10.0.0.2".parse().unwrap(),
                "10.0.0.3".parse().unwrap(),
            ],
        )
    }

    /// A full three-tier request in TCP_TRACE format, interleaved across
    /// nodes with skewed clocks.
    fn three_tier_log() -> &'static str {
        "\
        1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120\n\
        2000 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:8009 64\n\
        500900 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:8009 64\n\
        501500 app java 9 21 SEND 10.0.0.2:4101-10.0.0.3:3306 32\n\
        901900 db mysqld 5 55 RECEIVE 10.0.0.2:4101-10.0.0.3:3306 32\n\
        903000 db mysqld 5 55 SEND 10.0.0.3:3306-10.0.0.2:4101 800\n\
        503600 app java 9 21 RECEIVE 10.0.0.3:3306-10.0.0.2:4101 800\n\
        504000 app java 9 21 SEND 10.0.0.2:8009-10.0.0.1:4001 256\n\
        4500 web httpd 7 7 RECEIVE 10.0.0.2:8009-10.0.0.1:4001 256\n\
        5000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512\n\
        "
    }

    #[test]
    fn offline_three_tier_roundtrip() {
        let records = parse_log(three_tier_log()).unwrap();
        let out = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(records)
            .unwrap();
        assert_eq!(out.cags.len(), 1);
        assert!(out.unfinished.is_empty());
        let cag = &out.cags[0];
        cag.validate().expect("valid");
        assert_eq!(cag.vertices.len(), 10);
        assert_eq!(out.metrics.cags_finished, 1);
        assert_eq!(out.metrics.ranker.noise_discards, 0);
    }

    #[test]
    fn rejects_zero_window() {
        let cfg = CorrelatorConfig::new(access()).with_window(Nanos::ZERO);
        assert!(Correlator::new(cfg).correlate(Vec::new()).is_err());
    }

    #[test]
    fn rejects_missing_access_points() {
        let cfg = CorrelatorConfig::new(AccessPointSpec::default());
        assert!(Correlator::new(cfg).correlate(Vec::new()).is_err());
    }

    #[test]
    fn unsorted_input_is_sorted_per_node() {
        let mut records = parse_log(three_tier_log()).unwrap();
        records.reverse();
        let out = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(records)
            .unwrap();
        assert_eq!(out.cags.len(), 1);
        out.cags[0].validate().expect("valid");
    }

    #[test]
    fn tiny_window_still_correct_under_skew() {
        // Window 1ns, node clocks skewed by ~0.5ms and ~0.9ms: the window
        // is per-node local time, so correctness is unaffected (§4.1).
        let records = parse_log(three_tier_log()).unwrap();
        let cfg = CorrelatorConfig::new(access()).with_window(Nanos(1));
        let out = Correlator::new(cfg).correlate(records).unwrap();
        assert_eq!(out.cags.len(), 1);
        out.cags[0].validate().expect("valid");
    }

    #[test]
    fn noise_from_untraced_peer_is_discarded() {
        let mut log = three_tier_log().to_owned();
        // A MySQL client on an untraced host talks to the database; the
        // mysqld-side receive has no matching traced send.
        log.push_str("902000 db mysqld 5 77 RECEIVE 172.16.9.9:6000-10.0.0.3:3306 48\n");
        log.push_str("902500 db mysqld 5 77 SEND 10.0.0.3:3306-172.16.9.9:6000 99\n");
        let out = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(parse_log(&log).unwrap())
            .unwrap();
        assert_eq!(out.cags.len(), 1);
        assert_eq!(out.cags[0].vertices.len(), 10);
        assert_eq!(out.metrics.ranker.noise_discards, 1);
        assert_eq!(out.metrics.engine.orphan_vertices, 1);
        // The real path is untouched by the noise.
        assert_eq!(out.metrics.cags_unfinished, 0);
    }

    #[test]
    fn attribute_filter_removes_program_noise() {
        let mut log = three_tier_log().to_owned();
        log.push_str("600 web sshd 99 99 RECEIVE 172.16.9.9:7000-10.0.0.1:22 500\n");
        log.push_str("700 web sshd 99 99 SEND 10.0.0.1:22-172.16.9.9:7000 500\n");
        let cfg =
            CorrelatorConfig::new(access()).with_filters(FilterSet::new().drop_program("sshd"));
        let out = Correlator::new(cfg)
            .correlate(parse_log(&log).unwrap())
            .unwrap();
        assert_eq!(out.metrics.filtered_out, 2);
        assert_eq!(out.cags.len(), 1);
    }

    #[test]
    fn lost_end_yields_unfinished_cag() {
        let log: String = three_tier_log()
            .lines()
            .filter(|l| !l.contains("10.0.0.1:80-192.168.0.9:5000"))
            .map(|l| format!("{l}\n"))
            .collect();
        let out = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(parse_log(&log).unwrap())
            .unwrap();
        assert_eq!(out.cags.len(), 0);
        assert_eq!(out.unfinished.len(), 1);
        assert_eq!(out.unfinished[0].vertices.len(), 9);
    }

    #[test]
    fn streaming_matches_offline() {
        let records = parse_log(three_tier_log()).unwrap();
        let offline = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(records.clone())
            .unwrap();
        let mut sc = StreamingCorrelator::new(CorrelatorConfig::new(access())).unwrap();
        let mut streamed = Vec::new();
        for r in records {
            sc.push(r);
            streamed.extend(sc.poll());
        }
        let done = sc.finish();
        streamed.extend(done.cags);
        assert_eq!(streamed.len(), offline.cags.len());
        assert_eq!(streamed[0].sorted_tags(), offline.cags[0].sorted_tags());
        assert_eq!(streamed[0].vertices.len(), offline.cags[0].vertices.len());
    }

    #[test]
    fn streaming_memory_stays_bounded() {
        // Push many sequential requests; with a 10ms window the resident
        // set must not grow with the request count.
        let access = AccessPointSpec::new([80], ["10.0.0.1".parse().unwrap()]);
        let mut sc = StreamingCorrelator::new(CorrelatorConfig::new(access)).unwrap();
        let mut peak = 0usize;
        for i in 0..1_000u64 {
            let t0 = i * 1_000_000;
            sc.push(
                format!(
                    "{} web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 100",
                    t0
                )
                .parse()
                .unwrap(),
            );
            sc.push(
                format!(
                    "{} web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 200",
                    t0 + 500
                )
                .parse()
                .unwrap(),
            );
            let _ = sc.poll();
            peak = peak.max(sc.approx_bytes());
        }
        let out = sc.finish();
        assert_eq!(out.metrics.records_in, 2_000);
        assert!(peak < 64 * 1024, "resident {peak} bytes should stay small");
    }

    #[test]
    fn metrics_wall_time_is_measured() {
        let records = parse_log(three_tier_log()).unwrap();
        let out = Correlator::new(CorrelatorConfig::new(access()))
            .correlate(records)
            .unwrap();
        // Wall time is nonzero-ish; just check the field is plumbed.
        assert!(out.metrics.wall.as_nanos() > 0);
    }
}
