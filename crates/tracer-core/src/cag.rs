//! Component activity graphs (§3.2).
//!
//! A CAG is a directed acyclic graph whose vertices are activities and
//! whose edges are *adjacent context relations* (x happened right before
//! y in the same execution entity) or *message relations* (x sent the
//! message that y received). Every vertex has at most two parents, and
//! only a RECEIVE vertex can have two: one context parent and one message
//! parent.
//!
//! Edges are stored as parent links on each vertex, which makes the
//! ≤2-parents invariant structural.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::activity::{ActivityType, Channel, ContextId, LocalTime, Nanos};

/// The kind of a causal edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Adjacent context relation (same execution entity).
    Context,
    /// Message relation (SEND → RECEIVE of the same message).
    Message,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EdgeKind::Context => "context",
            EdgeKind::Message => "message",
        })
    }
}

/// One vertex of a CAG: a (possibly merged) activity.
///
/// Kernel-level segmentation makes SEND/RECEIVE matching an n-to-n
/// relation (§4.2, Fig. 4); the engine merges consecutive same-channel
/// segments into a single vertex, accumulating `size` and `tags`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vertex {
    /// Activity type.
    pub ty: ActivityType,
    /// Timestamp of the first merged segment (local clock).
    pub ts: LocalTime,
    /// Timestamp of the last merged segment (equals `ts` when unmerged).
    pub ts_last: LocalTime,
    /// Execution-entity context.
    pub ctx: ContextId,
    /// Directed channel of the underlying kernel calls.
    pub channel: Channel,
    /// Total bytes across merged segments.
    pub size: u64,
    /// Ground-truth tags of all merged segments (evaluation only).
    pub tags: Vec<u64>,
    /// Context parent (index into `Cag::vertices`).
    pub ctx_parent: Option<usize>,
    /// Message parent (only ever set on RECEIVE vertices).
    pub msg_parent: Option<usize>,
}

impl Vertex {
    /// Number of parents (0, 1 or 2).
    #[inline]
    pub fn parent_count(&self) -> usize {
        usize::from(self.ctx_parent.is_some()) + usize::from(self.msg_parent.is_some())
    }
}

/// A latency component: either processing inside one program (`P2P`) or
/// an interaction between two programs (`P2Q`) — the categories of
/// Figs. 15 and 17 (`httpd2httpd`, `httpd2java`, ...).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Component {
    /// Program on the parent side of the edge.
    pub from: Arc<str>,
    /// Program on the child side of the edge.
    pub to: Arc<str>,
}

impl Component {
    /// Builds a component from two program names.
    pub fn new(from: impl Into<Arc<str>>, to: impl Into<Arc<str>>) -> Self {
        Component {
            from: from.into(),
            to: to.into(),
        }
    }

    /// True for `P2P` components (time spent inside one tier).
    pub fn is_internal(&self) -> bool {
        self.from == self.to
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}2{}", self.from, self.to)
    }
}

/// A causal edge extracted from a CAG, with its latency attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CagEdge {
    /// Parent vertex index.
    pub from: usize,
    /// Child vertex index.
    pub to: usize,
    /// Context or message relation.
    pub kind: EdgeKind,
    /// Latency of the edge: child ts − parent ts, saturated at zero.
    ///
    /// Context edges compare timestamps of the same node and are
    /// accurate; message edges compare timestamps across nodes and
    /// include clock skew (the paper makes the same caveat).
    pub latency: Nanos,
    /// Component the latency is attributed to, e.g. `httpd2httpd`
    /// (context edge inside httpd) or `httpd2java` (message edge).
    pub component: Component,
}

/// A component activity graph: the causal path of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cag {
    /// Correlator-assigned id (monotonically increasing).
    pub id: u64,
    /// Vertices in insertion (causal) order; vertex 0 is the BEGIN root.
    pub vertices: Vec<Vertex>,
    /// Whether an END activity closed this CAG.
    pub finished: bool,
}

impl Cag {
    /// The BEGIN root vertex.
    pub fn root(&self) -> &Vertex {
        &self.vertices[0]
    }

    /// The END vertex, if the CAG is finished.
    pub fn end(&self) -> Option<&Vertex> {
        self.vertices
            .iter()
            .rev()
            .find(|v| v.ty == ActivityType::End)
    }

    /// Total servicing latency: END ts − BEGIN ts.
    ///
    /// Both timestamps come from the frontend node, so the value is
    /// accurate (no cross-node skew).
    pub fn total_latency(&self) -> Option<Nanos> {
        self.end().map(|e| e.ts.saturating_since(self.root().ts))
    }

    /// Iterates over all causal edges with latency attribution.
    pub fn edges(&self) -> impl Iterator<Item = CagEdge> + '_ {
        self.vertices.iter().enumerate().flat_map(move |(i, v)| {
            let ctx = v
                .ctx_parent
                .map(move |p| self.make_edge(p, i, EdgeKind::Context));
            let msg = v
                .msg_parent
                .map(move |p| self.make_edge(p, i, EdgeKind::Message));
            ctx.into_iter().chain(msg)
        })
    }

    fn make_edge(&self, from: usize, to: usize, kind: EdgeKind) -> CagEdge {
        let (p, c) = (&self.vertices[from], &self.vertices[to]);
        let latency = c.ts.saturating_since(p.ts);
        CagEdge {
            from,
            to,
            kind,
            latency,
            component: component_label(p, c, kind),
        }
    }

    /// Edges with non-overlapping latency attribution: context edges
    /// into a two-parent RECEIVE are skipped, because they span the whole
    /// nested downstream call whose time is already attributed to the
    /// interior edges. With this exclusion the per-component latencies of
    /// a linear request path partition the total servicing time — the
    /// quantity behind the latency percentages of Figs. 15 and 17.
    pub fn attributed_edges(&self) -> impl Iterator<Item = CagEdge> + '_ {
        self.edges().filter(move |e| {
            e.kind == EdgeKind::Message || self.vertices[e.to].msg_parent.is_none()
        })
    }

    /// Sum of attributed edge latencies per component.
    pub fn component_latencies(&self) -> BTreeMap<Component, Nanos> {
        let mut map = BTreeMap::new();
        for e in self.attributed_edges() {
            *map.entry(e.component).or_insert(Nanos::ZERO) += e.latency;
        }
        map
    }

    /// All ground-truth tags across all vertices, sorted (evaluation
    /// helper; the algorithm itself never reads tags).
    pub fn sorted_tags(&self) -> Vec<u64> {
        let mut tags: Vec<u64> = self
            .vertices
            .iter()
            .flat_map(|v| v.tags.iter().copied())
            .collect();
        tags.sort_unstable();
        tags
    }

    /// Checks the structural invariants of §3.2:
    ///
    /// 1. parent indices point backwards (acyclicity by construction),
    /// 2. every vertex has ≤ 2 parents,
    /// 3. only RECEIVE vertices have a message parent together with a
    ///    context parent,
    /// 4. message parents are SEND-like, on the same channel,
    /// 5. context parents share the vertex's context,
    /// 6. vertex 0 (and only vertex 0) is a BEGIN in a finished CAG
    ///    rooted at an access point.
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.vertices.is_empty() {
            return Err("empty CAG".into());
        }
        for (i, v) in self.vertices.iter().enumerate() {
            if let Some(p) = v.ctx_parent {
                if p >= i {
                    return Err(format!("vertex {i}: context parent {p} not earlier"));
                }
                let pv = &self.vertices[p];
                if pv.ctx != v.ctx {
                    return Err(format!("vertex {i}: context parent in different context"));
                }
            }
            if let Some(p) = v.msg_parent {
                if p >= i {
                    return Err(format!("vertex {i}: message parent {p} not earlier"));
                }
                if !v.ty.is_receive_like() {
                    return Err(format!("vertex {i}: non-receive has message parent"));
                }
                let pv = &self.vertices[p];
                if !pv.ty.is_send_like() {
                    return Err(format!("vertex {i}: message parent is not a send"));
                }
                if pv.channel != v.channel {
                    return Err(format!("vertex {i}: message parent on different channel"));
                }
            }
            if v.parent_count() == 2 && v.ty != ActivityType::Receive {
                return Err(format!("vertex {i}: two parents on non-RECEIVE"));
            }
            if i == 0 {
                if v.parent_count() != 0 {
                    return Err("root has parents".into());
                }
            } else if v.parent_count() == 0 {
                return Err(format!("vertex {i}: unreachable (no parents)"));
            }
        }
        if self.vertices[0].ty != ActivityType::Begin {
            return Err("root is not BEGIN".into());
        }
        if self.finished && self.end().is_none() {
            return Err("finished CAG without END".into());
        }
        Ok(())
    }
}

/// Component for an edge: `P2P` for a context edge inside program `P`,
/// `P2Q` for a message edge from program `P` to program `Q`.
pub fn component_label(parent: &Vertex, child: &Vertex, _kind: EdgeKind) -> Component {
    Component {
        from: Arc::clone(&parent.ctx.program),
        to: Arc::clone(&child.ctx.program),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Hand-built CAGs for unit tests across modules.
    use super::*;
    use crate::activity::EndpointV4;

    pub fn ep(s: &str) -> EndpointV4 {
        s.parse().unwrap()
    }

    #[allow(clippy::too_many_arguments)]
    pub fn vertex(
        ty: ActivityType,
        ts: u64,
        host: &str,
        prog: &str,
        tid: u32,
        channel: Channel,
        ctx_parent: Option<usize>,
        msg_parent: Option<usize>,
    ) -> Vertex {
        Vertex {
            ty,
            ts: LocalTime::from_nanos(ts),
            ts_last: LocalTime::from_nanos(ts),
            ctx: ContextId::new(host, prog, 1, tid),
            channel,
            size: 100,
            tags: vec![],
            ctx_parent,
            msg_parent,
        }
    }

    /// A minimal two-tier CAG:
    /// BEGIN(web) → SEND(web→app) → RECEIVE(app) → SEND(app→web)
    /// → RECEIVE(web) → END(web), with proper double-parent RECEIVEs.
    pub fn two_tier_cag() -> Cag {
        let client = Channel::new(ep("192.168.0.9:5000"), ep("10.0.0.1:80"));
        let fwd = Channel::new(ep("10.0.0.1:4001"), ep("10.0.0.2:9000"));
        let back = fwd.reversed();
        let vertices = vec![
            vertex(
                ActivityType::Begin,
                1_000,
                "web",
                "httpd",
                7,
                client,
                None,
                None,
            ),
            vertex(
                ActivityType::Send,
                2_000,
                "web",
                "httpd",
                7,
                fwd,
                Some(0),
                None,
            ),
            vertex(
                ActivityType::Receive,
                2_500,
                "app",
                "java",
                21,
                fwd,
                None,
                Some(1),
            ),
            vertex(
                ActivityType::Send,
                4_000,
                "app",
                "java",
                21,
                back,
                Some(2),
                None,
            ),
            vertex(
                ActivityType::Receive,
                4_400,
                "web",
                "httpd",
                7,
                back,
                Some(1),
                Some(3),
            ),
            vertex(
                ActivityType::End,
                5_000,
                "web",
                "httpd",
                7,
                client.reversed(),
                Some(4),
                None,
            ),
        ];
        Cag {
            id: 1,
            vertices,
            finished: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn two_tier_cag_is_valid() {
        let cag = two_tier_cag();
        cag.validate().expect("valid CAG");
    }

    #[test]
    fn total_latency_is_end_minus_begin() {
        let cag = two_tier_cag();
        assert_eq!(cag.total_latency(), Some(Nanos(4_000)));
    }

    #[test]
    fn edges_have_expected_components() {
        let cag = two_tier_cag();
        let comps: Vec<(String, u64)> = cag
            .edges()
            .map(|e| (e.component.to_string(), e.latency.as_nanos()))
            .collect();
        assert!(comps.contains(&("httpd2httpd".into(), 1_000))); // BEGIN→SEND
        assert!(comps.contains(&("httpd2java".into(), 500))); // SEND→RECEIVE
        assert!(comps.contains(&("java2java".into(), 1_500))); // RECEIVE→SEND
        assert!(comps.contains(&("java2httpd".into(), 400))); // SEND→RECEIVE back
                                                              // httpd RECEIVE has both a message parent and a context parent.
        assert_eq!(comps.len(), 6);
    }

    #[test]
    fn component_latencies_aggregate() {
        let cag = two_tier_cag();
        let lat = cag.component_latencies();
        // httpd context edges: BEGIN→SEND (1000) + RECEIVE→END (600); the
        // SEND→RECEIVE context edge (2400) spans the nested java call and
        // is excluded from attribution.
        assert_eq!(lat[&Component::new("httpd", "httpd")], Nanos(1_000 + 600));
        assert_eq!(lat[&Component::new("httpd", "java")], Nanos(500));
    }

    #[test]
    fn attributed_latencies_partition_total() {
        let cag = two_tier_cag();
        let total: u64 = cag
            .component_latencies()
            .values()
            .map(|n| n.as_nanos())
            .sum();
        assert_eq!(Some(Nanos(total)), cag.total_latency());
    }

    #[test]
    fn validate_rejects_two_parents_on_send() {
        let mut cag = two_tier_cag();
        cag.vertices[3].msg_parent = Some(1);
        assert!(cag.validate().is_err());
    }

    #[test]
    fn validate_rejects_forward_parent() {
        let mut cag = two_tier_cag();
        cag.vertices[1].ctx_parent = Some(5);
        assert!(cag.validate().is_err());
    }

    #[test]
    fn validate_rejects_cross_context_ctx_parent() {
        let mut cag = two_tier_cag();
        cag.vertices[3].ctx_parent = Some(1); // java send claiming httpd parent
        assert!(cag.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_begin_root() {
        let mut cag = two_tier_cag();
        cag.vertices[0].ty = ActivityType::Receive;
        assert!(cag.validate().is_err());
    }

    #[test]
    fn validate_rejects_unreachable_vertex() {
        let mut cag = two_tier_cag();
        cag.vertices[1].ctx_parent = None;
        assert!(cag.validate().is_err());
    }

    #[test]
    fn sorted_tags_collects_merged_segments() {
        let mut cag = two_tier_cag();
        cag.vertices[1].tags = vec![5, 3];
        cag.vertices[2].tags = vec![4];
        assert_eq!(cag.sorted_tags(), vec![3, 4, 5]);
    }

    #[test]
    fn end_is_last_end_vertex() {
        let cag = two_tier_cag();
        assert_eq!(cag.end().unwrap().ts, LocalTime::from_nanos(5_000));
    }
}
