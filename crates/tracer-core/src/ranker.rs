//! Candidate selection — the ranker (§4.1, §4.3).
//!
//! Activities logged on different nodes are fetched into per-node queues
//! when their local timestamps fall within a **sliding time window**.
//! Because every queue is ordered by its own node's clock, the window is
//! independent of clock skew: each queue simply holds at most a
//! window's worth of *its own* local time, and the algorithm never
//! compares timestamps across nodes for correctness (§4.1: the window
//! "could be any value larger than 0").
//!
//! The ranker then repeatedly picks a *candidate* among the queue heads:
//!
//! * **Rule 1** — a RECEIVE head whose matching unmatched SEND is already
//!   in the engine's `mmap` is the candidate.
//! * **Rule 2** — otherwise the head with the lowest type priority
//!   (`BEGIN < SEND < END < RECEIVE`) is the candidate.
//!
//! When every head is a RECEIVE and none matches (`Rule 1` failed), the
//! ranker is *stuck*. Two disturbances cause this (§4.3):
//!
//! * **concurrency disturbance** — on multi-processor nodes the matching
//!   SEND can be queued *behind* another head RECEIVE; the ranker swaps
//!   the blocking head with its successor (Fig. 6) until the SEND
//!   surfaces;
//! * **noise** — a RECEIVE from an untraced peer has no matching SEND at
//!   all; after optionally extending the fetch window
//!   ([`RankerOptions::fetch_boost`]) the ranker discards it, which is
//!   exactly the paper's `is_noise` predicate (no match in `mmap`, no
//!   match in the ranker buffer).

use std::collections::{HashMap, VecDeque};
use std::mem::size_of;
use std::sync::Arc;

use crate::activity::{Activity, ActivityType, Nanos};

/// Lets the ranker ask the engine about the `mmap` state (Rule 1 /
/// `is_noise`).
pub trait MatchOracle {
    /// True when `X -m> a` holds for an unmatched SEND `X` already in
    /// the `mmap` — i.e. the front pending send on `a`'s channel has at
    /// least `a.size` unreceived bytes. The byte condition matters with
    /// chunked messages (Fig. 4): popping a RECEIVE whose bytes span a
    /// SEND segment that has not been delivered yet would break the
    /// size-based matching, so such a RECEIVE must wait for Rule 2 to
    /// pop the remaining SEND segments first.
    fn rule1_matches(&self, a: &Activity) -> bool;

    /// True when *any* unmatched send exists on `a`'s channel —
    /// `is_noise` is only true when there is none at all.
    fn has_any_pending(&self, a: &Activity) -> bool;
}

/// A [`MatchOracle`] that never matches; useful for tests and for running
/// the ranker standalone.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOracle;

impl MatchOracle for NoOracle {
    fn rule1_matches(&self, _a: &Activity) -> bool {
        false
    }

    fn has_any_pending(&self, _a: &Activity) -> bool {
        false
    }
}

/// Ranker tunables and ablation switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankerOptions {
    /// Sliding time window (per-node local time span held in the buffer).
    pub window: Nanos,
    /// Enable concurrency-disturbance head swapping (§4.3, Fig. 6).
    /// Disabling is the EXT-2 "no swap" ablation.
    pub swap: bool,
    /// Maximum number of window doublings when stuck, before declaring
    /// the blocking RECEIVE noise. The boosted window must be able to
    /// cover the service's in-flight span (roughly its worst response
    /// time), or matchable receives behind a noise blocker could be
    /// misdeclared noise; 2^16 x window is ample for any practical
    /// window. 0 reproduces the paper's strict buffer-only `is_noise`.
    pub fetch_boost: u32,
    /// Discard unmatched RECEIVEs (`is_noise`). When disabled they are
    /// delivered to the engine, which counts them as unmatched.
    pub noise_discard: bool,
}

impl Default for RankerOptions {
    fn default() -> Self {
        RankerOptions {
            window: Nanos::from_millis(10),
            swap: true,
            fetch_boost: 16,
            noise_discard: true,
        }
    }
}

/// Counters describing the ranker's work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankerCounters {
    /// Activities accepted into per-node queues.
    pub enqueued: u64,
    /// Candidates handed to the engine.
    pub candidates: u64,
    /// Candidates chosen by Rule 1.
    pub rule1: u64,
    /// Candidates chosen by Rule 2.
    pub rule2: u64,
    /// Head swaps performed for concurrency disturbances.
    pub swaps: u64,
    /// Window extensions performed while stuck.
    pub fetch_boosts: u64,
    /// RECEIVEs discarded as noise (`is_noise`).
    pub noise_discards: u64,
    /// Blocked RECEIVEs force-delivered although their pending send had
    /// too few bytes (lost SEND records; produces a deformed CAG rather
    /// than silently dropping the path).
    pub forced_deliveries: u64,
    /// High-water mark of buffered activities across all queues.
    pub peak_buffered: usize,
}

/// One step of ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankStep {
    /// The next candidate activity for the engine.
    Candidate(Activity),
    /// An unmatched RECEIVE discarded by `is_noise`.
    Noise(Activity),
    /// Streaming mode: a queue is still open and the ranker cannot
    /// safely decide; push more input or close the sources.
    NeedInput,
    /// All sources are closed and drained.
    Exhausted,
}

#[derive(Debug)]
struct NodeQueue {
    host: Arc<str>,
    /// Activities inside the sliding window, ordered by local time.
    buf: VecDeque<Activity>,
    /// Staged activities not yet fetched (the "log on disk").
    incoming: VecDeque<Activity>,
    /// No more input will ever arrive for this node.
    closed: bool,
}

impl NodeQueue {
    fn head(&self) -> Option<&Activity> {
        self.buf.front()
    }
}

/// How deep the stuck-resolution fallback scan looks into each queue for
/// deliverable RECEIVE/BEGIN/END activities buried behind blockers.
const SWAP_SCAN_DEPTH: usize = 64;

/// The ranker: per-node queues plus the candidate-selection rules.
#[derive(Debug)]
pub struct Ranker {
    opts: RankerOptions,
    queues: Vec<NodeQueue>,
    by_host: HashMap<Arc<str>, usize>,
    boost_level: u32,
    counters: RankerCounters,
    buffered: usize,
    /// Count of SEND activities per channel anywhere in the ranker
    /// (staged or buffered), so the stuck path can decide `is_noise` in
    /// O(1): a RECEIVE whose channel has no pending send in the engine
    /// *and* no send anywhere in the remaining input can never match.
    send_index: HashMap<crate::activity::Channel, u32>,
}

impl Ranker {
    /// Creates an empty streaming ranker; queues appear as hosts are
    /// first pushed.
    pub fn new(opts: RankerOptions) -> Self {
        Ranker {
            opts,
            queues: Vec::new(),
            by_host: HashMap::new(),
            boost_level: 0,
            counters: RankerCounters::default(),
            buffered: 0,
            send_index: HashMap::new(),
        }
    }

    /// Creates an offline ranker over complete per-node streams (each
    /// stream must be sorted by local timestamp; hosts are ordered
    /// deterministically by name).
    pub fn from_streams(opts: RankerOptions, mut streams: Vec<(Arc<str>, Vec<Activity>)>) -> Self {
        streams.sort_by(|a, b| a.0.cmp(&b.0));
        let mut r = Ranker::new(opts);
        for (host, acts) in streams {
            for a in acts {
                r.push(a);
            }
            r.close_host(&host);
        }
        r.close_all();
        r
    }

    /// The ranker's counters.
    pub fn counters(&self) -> &RankerCounters {
        &self.counters
    }

    /// Approximate resident bytes of all queue buffers (the quantity the
    /// sliding window bounds; staged input is "the log on disk" and is
    /// not counted).
    pub fn approx_bytes(&self) -> usize {
        self.buffered * (size_of::<Activity>() + 24)
    }

    /// Number of activities currently inside the window buffers.
    pub fn buffered_len(&self) -> usize {
        self.buffered
    }

    /// Hostnames with a queue, in queue order.
    pub fn hosts(&self) -> impl Iterator<Item = &str> {
        self.queues.iter().map(|q| &*q.host)
    }

    /// Stages one activity (routed by its context's hostname). Input for
    /// a given host must arrive in local-timestamp order; out-of-order
    /// records are re-sorted into the staging queue.
    pub fn push(&mut self, a: Activity) {
        let qi = self.queue_index(&a.ctx.hostname);
        let q = &mut self.queues[qi];
        // Per-node logs are produced in local-time order; tolerate small
        // inversions (e.g. concatenated per-CPU buffers) by insertion.
        if a.ty == ActivityType::Send {
            *self.send_index.entry(a.channel).or_insert(0) += 1;
        }
        let pos = q
            .incoming
            .iter()
            .rposition(|x| x.ts <= a.ts)
            .map(|p| p + 1)
            .unwrap_or(0);
        if pos == q.incoming.len() {
            q.incoming.push_back(a);
        } else {
            q.incoming.insert(pos, a);
        }
        self.counters.enqueued += 1;
    }

    /// Declares a host's stream complete.
    pub fn close_host(&mut self, host: &str) {
        if let Some(&qi) = self.by_host.get(host) {
            self.queues[qi].closed = true;
        }
    }

    /// Declares every stream complete (offline mode).
    pub fn close_all(&mut self) {
        for q in &mut self.queues {
            q.closed = true;
        }
    }

    fn queue_index(&mut self, host: &Arc<str>) -> usize {
        if let Some(&qi) = self.by_host.get(host) {
            return qi;
        }
        let qi = self.queues.len();
        self.queues.push(NodeQueue {
            host: Arc::clone(host),
            buf: VecDeque::new(),
            incoming: VecDeque::new(),
            closed: false,
        });
        self.by_host.insert(Arc::clone(host), qi);
        qi
    }

    fn effective_window(&self) -> Nanos {
        Nanos(
            self.opts
                .window
                .0
                .saturating_mul(1u64 << self.boost_level.min(40)),
        )
    }

    /// Moves staged activities into the window buffer.
    fn refill(&mut self) {
        let w = self.effective_window();
        let mut moved = 0usize;
        for q in &mut self.queues {
            while let Some(next) = q.incoming.front() {
                let fits = match q.buf.front() {
                    None => true,
                    Some(front) => next.ts.saturating_since(front.ts) <= w,
                };
                if !fits {
                    break;
                }
                let a = q.incoming.pop_front().expect("peeked");
                q.buf.push_back(a);
                moved += 1;
            }
        }
        self.buffered += moved;
        self.counters.peak_buffered = self.counters.peak_buffered.max(self.buffered);
    }

    fn pop(&mut self, qi: usize) -> Activity {
        let a = self.queues[qi].buf.pop_front().expect("head exists");
        if a.ty == ActivityType::Send {
            if let Some(n) = self.send_index.get_mut(&a.channel) {
                *n -= 1;
                if *n == 0 {
                    self.send_index.remove(&a.channel);
                }
            }
        }
        self.buffered -= 1;
        self.boost_level = 0;
        a
    }

    /// Chooses the next candidate (§4.1 Rules 1 and 2, §4.3 disturbance
    /// handling). `oracle` is the engine's `mmap` view.
    pub fn rank(&mut self, oracle: &dyn MatchOracle) -> RankStep {
        let mut swap_budget = self.buffered + 64;
        loop {
            self.refill();
            // Rule 1: a RECEIVE head whose SEND is already in the mmap.
            let mut any_head = false;
            let mut rule1_pick: Option<usize> = None;
            for (qi, q) in self.queues.iter().enumerate() {
                if let Some(h) = q.head() {
                    any_head = true;
                    if h.ty == ActivityType::Receive && oracle.rule1_matches(h) {
                        rule1_pick = Some(qi);
                        break;
                    }
                }
            }
            if let Some(qi) = rule1_pick {
                self.counters.rule1 += 1;
                self.counters.candidates += 1;
                return RankStep::Candidate(self.pop(qi));
            }
            if !any_head {
                if self
                    .queues
                    .iter()
                    .all(|q| q.closed && q.incoming.is_empty())
                {
                    return RankStep::Exhausted;
                }
                // Some queue is open but empty; try fetching again later.
                return RankStep::NeedInput;
            }
            // Rule 2: the head with the lowest priority wins; ties break
            // on local timestamp then queue order for determinism.
            let (qi, head_ty) = self
                .queues
                .iter()
                .enumerate()
                .filter_map(|(qi, q)| q.head().map(|h| (qi, h)))
                .min_by_key(|(qi, h)| (h.ty.priority(), h.ts, *qi))
                .map(|(qi, h)| (qi, h.ty))
                .expect("some head exists");
            if head_ty != ActivityType::Receive {
                self.counters.rule2 += 1;
                self.counters.candidates += 1;
                return RankStep::Candidate(self.pop(qi));
            }
            // Stuck: every head is an unmatched RECEIVE.
            if self.opts.swap && swap_budget > 0 && self.try_swap(oracle) {
                swap_budget -= 1;
                continue;
            }
            // Could the winner ever match? Only if the engine holds a
            // partial pending for its channel or a SEND on its channel
            // still exists somewhere in the input. If so, extend the
            // window until that send surfaces; if not, it is noise and
            // boosting would be wasted work.
            let (winner_matchable, winner_has_pending) = match self.queues[qi].head() {
                Some(h) => (
                    oracle.has_any_pending(h) || self.send_index.contains_key(&h.channel),
                    oracle.has_any_pending(h),
                ),
                None => (false, false),
            };
            if winner_matchable && self.boost_fetch() {
                continue;
            }
            if self.queues.iter().any(|q| !q.closed) {
                return RankStep::NeedInput;
            }
            let victim = self.pop(qi);
            if winner_has_pending {
                // A pending send exists but cannot cover this receive:
                // its remaining SEND segments were lost. Force-deliver
                // so the engine produces a (deformed) path instead of
                // silently losing it.
                self.counters.forced_deliveries += 1;
                self.counters.candidates += 1;
                return RankStep::Candidate(victim);
            }
            // is_noise: no match in mmap (Rule 1 failed) and no match in
            // the ranker buffer (try_swap found none).
            if self.opts.noise_discard {
                self.counters.noise_discards += 1;
                return RankStep::Noise(victim);
            }
            self.counters.rule2 += 1;
            self.counters.candidates += 1;
            return RankStep::Candidate(victim);
        }
    }

    /// Resolves a stuck state by bubbling a *deliverable* buffered
    /// activity one position towards its queue head (the Fig. 6 swap).
    ///
    /// Deliverable means: a SEND matching a blocked head RECEIVE's
    /// channel, a RECEIVE that already matches the `mmap` (Rule 1), or a
    /// BEGIN/END (which never wait on a message relation). The swap is
    /// only legal past a predecessor from a **different execution
    /// entity**: activities of the same context are causally ordered by
    /// their queue position (the per-CPU reordering of Fig. 6 can only
    /// interleave different threads), so swapping within a context would
    /// fabricate a causal inversion.
    fn try_swap(&mut self, oracle: &dyn MatchOracle) -> bool {
        let heads: Vec<crate::activity::Channel> = self
            .queues
            .iter()
            .filter_map(|q| q.head())
            .filter(|h| h.ty == ActivityType::Receive)
            .map(|h| h.channel)
            .collect();
        // Is any blocked head's SEND buffered at all? The index makes the
        // common noise case (no match anywhere) O(1).
        let any_send = heads.iter().any(|ch| self.send_index.contains_key(ch));
        for q in &mut self.queues {
            let len = q.buf.len();
            for k in 1..len {
                let a = &q.buf[k];
                let deliverable = match a.ty {
                    // Matching SENDs are worth a full-depth search, but
                    // only when the index says one exists.
                    ActivityType::Send => any_send && heads.contains(&a.channel),
                    // Other deliverables surface as blockers ahead of
                    // them are resolved; a bounded look-ahead suffices.
                    ActivityType::Receive => k < SWAP_SCAN_DEPTH && oracle.rule1_matches(a),
                    ActivityType::Begin | ActivityType::End => k < SWAP_SCAN_DEPTH,
                };
                if !deliverable {
                    continue;
                }
                // Promotion to the head is the net effect of the paper's
                // repeated adjacent swaps; it is legal only if every
                // crossed predecessor belongs to a different execution
                // entity (same-context activities are causally ordered).
                if q.buf.iter().take(k).all(|p| p.ctx != a.ctx) {
                    let item = q.buf.remove(k).expect("index in bounds");
                    q.buf.push_front(item);
                    self.counters.swaps += k as u64;
                    return true;
                }
            }
        }
        false
    }

    /// Repeatedly doubles the effective window and refetches until
    /// something new enters a buffer or the boost cap is reached.
    fn boost_fetch(&mut self) -> bool {
        if self.queues.iter().all(|q| q.incoming.is_empty()) {
            // Nothing to fetch no matter the window.
            return false;
        }
        while self.boost_level < self.opts.fetch_boost {
            self.boost_level += 1;
            self.counters.fetch_boosts += 1;
            let before = self.buffered;
            self.refill();
            if self.buffered > before {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Channel, ContextId, EndpointV4, LocalTime};

    fn ep(s: &str) -> EndpointV4 {
        s.parse().unwrap()
    }

    fn act(ty: ActivityType, ts: u64, host: &str, src: &str, dst: &str) -> Activity {
        act_tid(ty, ts, host, 1, src, dst)
    }

    /// Like `act` but on an explicit thread (Fig. 6 concurrency involves
    /// different execution entities on different CPUs).
    fn act_tid(ty: ActivityType, ts: u64, host: &str, tid: u32, src: &str, dst: &str) -> Activity {
        Activity {
            ty,
            ts: LocalTime::from_nanos(ts),
            ctx: ContextId::new(host, "prog", 1, tid),
            channel: Channel::new(ep(src), ep(dst)),
            size: 100,
            tag: 0,
        }
    }

    /// Oracle backed by a set of channels with pending sends (assumed to
    /// fully cover any receive).
    struct SetOracle(std::collections::HashSet<Channel>);

    impl MatchOracle for SetOracle {
        fn rule1_matches(&self, a: &Activity) -> bool {
            self.0.contains(&a.channel)
        }

        fn has_any_pending(&self, a: &Activity) -> bool {
            self.0.contains(&a.channel)
        }
    }

    fn drain(r: &mut Ranker, oracle: &dyn MatchOracle) -> Vec<RankStep> {
        let mut out = Vec::new();
        loop {
            let s = r.rank(oracle);
            let stop = matches!(s, RankStep::Exhausted | RankStep::NeedInput);
            out.push(s);
            if stop {
                return out;
            }
        }
    }

    #[test]
    fn rule2_priority_orders_heads() {
        // Three queues with BEGIN / SEND / RECEIVE heads: BEGIN pops first,
        // then SEND, and the unmatched RECEIVE is eventually noise.
        let streams = vec![
            (
                Arc::from("a"),
                vec![act(
                    ActivityType::Begin,
                    100,
                    "a",
                    "9.9.9.9:1",
                    "10.0.0.1:80",
                )],
            ),
            (
                Arc::from("b"),
                vec![act(ActivityType::Send, 50, "b", "10.0.0.2:1", "10.0.0.3:2")],
            ),
            (
                Arc::from("c"),
                vec![act(
                    ActivityType::Receive,
                    10,
                    "c",
                    "8.8.8.8:1",
                    "10.0.0.3:9",
                )],
            ),
        ];
        let mut r = Ranker::from_streams(RankerOptions::default(), streams);
        let steps = drain(&mut r, &NoOracle);
        let tys: Vec<String> = steps.iter().map(|s| format!("{s:?}")).collect();
        assert!(tys[0].contains("Begin"), "{tys:?}");
        assert!(tys[1].contains("Send"), "{tys:?}");
        assert!(matches!(steps[2], RankStep::Noise(_)), "{tys:?}");
        assert!(matches!(steps[3], RankStep::Exhausted));
    }

    #[test]
    fn rule1_pops_matched_receive_before_lower_priority_heads() {
        let recv = act(ActivityType::Receive, 10, "b", "10.0.0.1:5", "10.0.0.2:6");
        let streams = vec![
            (
                Arc::from("a"),
                vec![act(ActivityType::Begin, 1, "a", "9.9.9.9:1", "10.0.0.1:80")],
            ),
            (Arc::from("b"), vec![recv.clone()]),
        ];
        let mut r = Ranker::from_streams(RankerOptions::default(), streams);
        let oracle = SetOracle([recv.channel].into_iter().collect());
        // Rule 1 beats the BEGIN even though BEGIN has lower priority.
        match r.rank(&oracle) {
            RankStep::Candidate(a) => assert_eq!(a.ty, ActivityType::Receive),
            other => panic!("expected candidate, got {other:?}"),
        }
        assert_eq!(r.counters().rule1, 1);
    }

    #[test]
    fn within_queue_order_is_preserved() {
        let streams = vec![(
            Arc::from("a"),
            vec![
                act(ActivityType::Send, 10, "a", "10.0.0.1:1", "10.0.0.2:2"),
                act(ActivityType::Send, 20, "a", "10.0.0.1:3", "10.0.0.2:4"),
            ],
        )];
        let mut r = Ranker::from_streams(RankerOptions::default(), streams);
        let a = match r.rank(&NoOracle) {
            RankStep::Candidate(a) => a,
            o => panic!("{o:?}"),
        };
        assert_eq!(a.ts, LocalTime::from_nanos(10));
    }

    #[test]
    fn concurrency_disturbance_resolved_by_swap() {
        // Fig. 6: two 2-CPU nodes, each head RECEIVE blocked on the SEND
        // behind the other queue's head; the concurrent activities run
        // in different threads (CPUs).
        let n1r = act_tid(
            ActivityType::Receive,
            100,
            "n1",
            10,
            "10.0.0.2:9",
            "10.0.0.1:8",
        );
        let n1s = act_tid(
            ActivityType::Send,
            101,
            "n1",
            11,
            "10.0.0.1:8",
            "10.0.0.2:9",
        );
        let n2r = act_tid(
            ActivityType::Receive,
            200,
            "n2",
            20,
            "10.0.0.1:8",
            "10.0.0.2:9",
        );
        let n2s = act_tid(
            ActivityType::Send,
            201,
            "n2",
            21,
            "10.0.0.2:9",
            "10.0.0.1:8",
        );
        // Wire up channels so each receive matches the other node's send:
        // n1's receive r01,2-style ← n2's send; n2's receive ← n1's send.
        let streams = vec![
            (Arc::from("n1"), vec![n1r.clone(), n1s.clone()]),
            (Arc::from("n2"), vec![n2r.clone(), n2s.clone()]),
        ];
        let mut r = Ranker::from_streams(RankerOptions::default(), streams);
        let mut sent: std::collections::HashSet<Channel> = Default::default();
        let mut order = Vec::new();
        loop {
            let step = r.rank(&SetOracle(sent.clone()));
            match step {
                RankStep::Candidate(a) => {
                    if a.ty == ActivityType::Send {
                        sent.insert(a.channel);
                    }
                    order.push(a);
                }
                RankStep::Noise(a) => panic!("false noise discard of {a}"),
                RankStep::Exhausted => break,
                RankStep::NeedInput => panic!("offline ranker asked for input"),
            }
        }
        assert_eq!(order.len(), 4);
        assert!(r.counters().swaps >= 1, "swap must have fired");
        // Every receive must come after its matching send.
        for (i, a) in order.iter().enumerate() {
            if a.ty == ActivityType::Receive {
                assert!(
                    order[..i]
                        .iter()
                        .any(|b| b.ty == ActivityType::Send && b.channel == a.channel),
                    "receive before its send"
                );
            }
        }
    }

    #[test]
    fn swap_disabled_falls_back_to_noise() {
        let n1r = act_tid(
            ActivityType::Receive,
            100,
            "n1",
            10,
            "10.0.0.2:9",
            "10.0.0.1:8",
        );
        let n1s = act_tid(
            ActivityType::Send,
            101,
            "n1",
            11,
            "10.0.0.1:8",
            "10.0.0.2:9",
        );
        let n2r = act_tid(
            ActivityType::Receive,
            200,
            "n2",
            20,
            "10.0.0.1:8",
            "10.0.0.2:9",
        );
        let n2s = act_tid(
            ActivityType::Send,
            201,
            "n2",
            21,
            "10.0.0.2:9",
            "10.0.0.1:8",
        );
        let streams = vec![
            (Arc::from("n1"), vec![n1r, n1s]),
            (Arc::from("n2"), vec![n2r, n2s]),
        ];
        let opts = RankerOptions {
            swap: false,
            ..RankerOptions::default()
        };
        let mut r = Ranker::from_streams(opts, streams);
        let steps = drain(&mut r, &NoOracle);
        assert!(
            steps.iter().any(|s| matches!(s, RankStep::Noise(_))),
            "without swap the deadlock breaks by (wrongly) discarding: {steps:?}"
        );
    }

    #[test]
    fn window_bounds_buffer() {
        // 1000 activities spaced 1ms, window 10ms → buffer stays small.
        let acts: Vec<Activity> = (0..1000)
            .map(|i| {
                act(
                    ActivityType::Send,
                    i * 1_000_000,
                    "a",
                    "10.0.0.1:1",
                    "10.0.0.2:2",
                )
            })
            .collect();
        let mut r = Ranker::from_streams(
            RankerOptions {
                window: Nanos::from_millis(10),
                ..Default::default()
            },
            vec![(Arc::from("a"), acts)],
        );
        let mut n = 0;
        while let RankStep::Candidate(_) = r.rank(&NoOracle) {
            n += 1;
        }
        assert_eq!(n, 1000);
        assert!(
            r.counters().peak_buffered <= 12,
            "peak {} too large",
            r.counters().peak_buffered
        );
    }

    #[test]
    fn larger_window_buffers_more() {
        let mk = |w: Nanos| {
            let acts: Vec<Activity> = (0..1000)
                .map(|i| {
                    act(
                        ActivityType::Send,
                        i * 1_000_000,
                        "a",
                        "10.0.0.1:1",
                        "10.0.0.2:2",
                    )
                })
                .collect();
            let mut r = Ranker::from_streams(
                RankerOptions {
                    window: w,
                    ..Default::default()
                },
                vec![(Arc::from("a"), acts)],
            );
            while let RankStep::Candidate(_) = r.rank(&NoOracle) {}
            r.counters().peak_buffered
        };
        assert!(mk(Nanos::from_millis(100)) > mk(Nanos::from_millis(10)));
    }

    #[test]
    fn streaming_need_input_then_progress() {
        let mut r = Ranker::new(RankerOptions::default());
        r.push(act(ActivityType::Send, 10, "a", "10.0.0.1:1", "10.0.0.2:2"));
        // One activity, host open: the ranker can pop it (it's a SEND).
        match r.rank(&NoOracle) {
            RankStep::Candidate(a) => assert_eq!(a.ty, ActivityType::Send),
            o => panic!("{o:?}"),
        }
        // Nothing left but the host is open → NeedInput.
        assert_eq!(r.rank(&NoOracle), RankStep::NeedInput);
        r.close_all();
        assert_eq!(r.rank(&NoOracle), RankStep::Exhausted);
    }

    #[test]
    fn stuck_receive_waits_for_open_queue() {
        // A receive whose send may still arrive on an open queue must not
        // be discarded as noise.
        let mut r = Ranker::new(RankerOptions::default());
        let recv = act(ActivityType::Receive, 10, "b", "10.0.0.1:5", "10.0.0.2:6");
        r.push(recv.clone());
        r.close_host("b");
        let send = act(ActivityType::Send, 500, "a", "10.0.0.1:5", "10.0.0.2:6");
        r.push(send.clone());
        // Queue "a" open: the ranker pops the send (Rule 2).
        match r.rank(&NoOracle) {
            RankStep::Candidate(a) => assert_eq!(a.ty, ActivityType::Send),
            o => panic!("{o:?}"),
        }
        // Now the receive matches via the oracle.
        let oracle = SetOracle([recv.channel].into_iter().collect());
        match r.rank(&oracle) {
            RankStep::Candidate(a) => assert_eq!(a.ty, ActivityType::Receive),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn out_of_order_push_is_resorted() {
        let mut r = Ranker::new(RankerOptions::default());
        r.push(act(
            ActivityType::Send,
            100,
            "a",
            "10.0.0.1:1",
            "10.0.0.2:2",
        ));
        r.push(act(ActivityType::Send, 50, "a", "10.0.0.1:3", "10.0.0.2:4"));
        r.close_all();
        let first = match r.rank(&NoOracle) {
            RankStep::Candidate(a) => a.ts,
            o => panic!("{o:?}"),
        };
        assert_eq!(first, LocalTime::from_nanos(50));
    }

    #[test]
    fn fetch_boost_finds_send_beyond_window() {
        // Mutually blocked receives whose matching sends sit far beyond
        // the 1ms window behind them (heavy skew): only the bounded
        // window boost can surface the sends.
        let streams = vec![
            (
                Arc::from("a"),
                vec![
                    act_tid(
                        ActivityType::Receive,
                        1_000_000,
                        "a",
                        10,
                        "10.0.0.2:7",
                        "10.0.0.1:6",
                    ),
                    act_tid(
                        ActivityType::Send,
                        40_000_000,
                        "a",
                        11,
                        "10.0.0.1:6",
                        "10.0.0.2:7",
                    ),
                ],
            ),
            (
                Arc::from("b"),
                vec![
                    act_tid(
                        ActivityType::Receive,
                        900_000,
                        "b",
                        20,
                        "10.0.0.1:6",
                        "10.0.0.2:7",
                    ),
                    act_tid(
                        ActivityType::Send,
                        30_000_000,
                        "b",
                        21,
                        "10.0.0.2:7",
                        "10.0.0.1:6",
                    ),
                ],
            ),
        ];
        let opts = RankerOptions {
            window: Nanos::from_millis(1),
            ..Default::default()
        };
        let mut r = Ranker::from_streams(opts, streams);
        // Drive with a stateful oracle simulating the engine.
        let mut sent: std::collections::HashSet<Channel> = Default::default();
        let mut got = Vec::new();
        loop {
            match r.rank(&SetOracle(sent.clone())) {
                RankStep::Candidate(a) => {
                    if a.ty == ActivityType::Send {
                        sent.insert(a.channel);
                    }
                    got.push(a);
                }
                RankStep::Noise(a) => panic!("false noise: {a}"),
                RankStep::Exhausted => break,
                RankStep::NeedInput => panic!("offline NeedInput"),
            }
        }
        assert_eq!(got.len(), 4);
        assert!(r.counters().fetch_boosts > 0);
    }

    #[test]
    fn noise_discard_can_be_disabled() {
        let streams = vec![(
            Arc::from("c"),
            vec![act(
                ActivityType::Receive,
                10,
                "c",
                "8.8.8.8:1",
                "10.0.0.3:9",
            )],
        )];
        let opts = RankerOptions {
            noise_discard: false,
            ..Default::default()
        };
        let mut r = Ranker::from_streams(opts, streams);
        match r.rank(&NoOracle) {
            RankStep::Candidate(a) => assert_eq!(a.ty, ActivityType::Receive),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn approx_bytes_tracks_buffered() {
        let mut r = Ranker::new(RankerOptions::default());
        assert_eq!(r.approx_bytes(), 0);
        r.push(act(ActivityType::Send, 10, "a", "10.0.0.1:1", "10.0.0.2:2"));
        r.close_all();
        // Not yet fetched into the buffer; rank() fetches then pops.
        let _ = r.rank(&NoOracle);
        assert_eq!(r.buffered_len(), 0);
    }
}
