//! Candidate selection — the ranker (§4.1, §4.3).
//!
//! Activities logged on different nodes are fetched into per-node queues
//! when their local timestamps fall within a **sliding time window**.
//! Because every queue is ordered by its own node's clock, the window is
//! independent of clock skew: each queue simply holds at most a
//! window's worth of *its own* local time, and the algorithm never
//! compares timestamps across nodes for correctness (§4.1: the window
//! "could be any value larger than 0").
//!
//! The ranker then repeatedly picks a *candidate* among the queue heads:
//!
//! * **Rule 1** — a RECEIVE head whose matching unmatched SEND is already
//!   in the engine's `mmap` is the candidate.
//! * **Rule 2** — otherwise the head with the lowest type priority
//!   (`BEGIN < SEND < END < RECEIVE`) is the candidate.
//!
//! When every head is a RECEIVE and none matches (`Rule 1` failed), the
//! ranker is *stuck*. Two disturbances cause this (§4.3):
//!
//! * **concurrency disturbance** — on multi-processor nodes the matching
//!   SEND can be queued *behind* another head RECEIVE; the ranker swaps
//!   the blocking head with its successor (Fig. 6) until the SEND
//!   surfaces;
//! * **noise** — a RECEIVE from an untraced peer has no matching SEND at
//!   all; after optionally extending the fetch window
//!   ([`RankerOptions::fetch_boost`]) the ranker discards it, which is
//!   exactly the paper's `is_noise` predicate (no match in `mmap`, no
//!   match in the ranker buffer).

use std::collections::{BTreeSet, VecDeque};
use std::mem::size_of;
use std::net::Ipv4Addr;
use std::sync::Arc;

use crate::activity::{Activity, ActivityType, Channel, ContextId, LocalTime, Nanos};
use crate::fasthash::FxHashMap;

/// Lets the ranker ask the engine about the `mmap` state (Rule 1 /
/// `is_noise`).
pub trait MatchOracle {
    /// True when `X -m> a` holds for an unmatched SEND `X` already in
    /// the `mmap` — i.e. the front pending send on `a`'s channel has at
    /// least `a.size` unreceived bytes. The byte condition matters with
    /// chunked messages (Fig. 4): popping a RECEIVE whose bytes span a
    /// SEND segment that has not been delivered yet would break the
    /// size-based matching, so such a RECEIVE must wait for Rule 2 to
    /// pop the remaining SEND segments first.
    fn rule1_matches(&self, a: &Activity) -> bool;

    /// True when *any* unmatched send exists on `a`'s channel —
    /// `is_noise` is only true when there is none at all.
    fn has_any_pending(&self, a: &Activity) -> bool;
}

/// A [`MatchOracle`] that never matches; useful for tests and for running
/// the ranker standalone.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoOracle;

impl MatchOracle for NoOracle {
    fn rule1_matches(&self, _a: &Activity) -> bool {
        false
    }

    fn has_any_pending(&self, _a: &Activity) -> bool {
        false
    }
}

/// How the sliding time window is chosen.
///
/// `Static` uses [`RankerOptions::window`] verbatim (the paper's fixed
/// `--window-ms` knob, swept by hand in Fig. 10). `Adaptive` derives the
/// window online from observed per-channel round-trip latencies: each
/// node's SEND→RECEIVE round trip on a channel pair is measured in that
/// node's *own* local time (so clock skew cancels), aggregated per
/// `(src ip, dst ip)` pair, and the window tracks
/// `p99 × slack`, clamped to `[min, max]`. This automates the §4.3
/// accuracy-vs-memory trade-off: the window follows the service's
/// in-flight span instead of being a hand-tuned constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowPolicy {
    /// Fixed window from [`RankerOptions::window`].
    Static,
    /// Window follows observed per-channel latency quantiles.
    Adaptive {
        /// Multiplier applied to the p99 round-trip latency.
        slack: u32,
        /// Lower clamp (also the starting window before any samples).
        min: Nanos,
        /// Upper clamp.
        max: Nanos,
    },
}

impl WindowPolicy {
    /// The default adaptive policy: `p99 × 4`, clamped to
    /// `[1ms, 10s]`.
    pub const fn adaptive_default() -> Self {
        WindowPolicy::Adaptive {
            slack: 4,
            min: Nanos::from_millis(1),
            max: Nanos::from_secs(10),
        }
    }
}

/// Ranker tunables and ablation switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankerOptions {
    /// Sliding time window (per-node local time span held in the buffer).
    pub window: Nanos,
    /// How the effective window is derived (static knob vs adaptive
    /// latency tracking). `Static` preserves `window` as-is.
    pub window_policy: WindowPolicy,
    /// Enable concurrency-disturbance head swapping (§4.3, Fig. 6).
    /// Disabling is the EXT-2 "no swap" ablation.
    pub swap: bool,
    /// Maximum number of window doublings when stuck, before declaring
    /// the blocking RECEIVE noise. The boosted window must be able to
    /// cover the service's in-flight span (roughly its worst response
    /// time), or matchable receives behind a noise blocker could be
    /// misdeclared noise; 2^16 x window is ample for any practical
    /// window. 0 reproduces the paper's strict buffer-only `is_noise`.
    pub fetch_boost: u32,
    /// Discard unmatched RECEIVEs (`is_noise`). When disabled they are
    /// delivered to the engine, which counts them as unmatched.
    pub noise_discard: bool,
    /// Hard cap on the window buffers, in approximate bytes. Normally
    /// `None` (the sliding window is the bound); the streaming
    /// correlator sets it to the memory budget so stuck-state window
    /// boosts cannot blow past the budget — refills then stop at the
    /// cap (each queue always keeps a head, so the drain still makes
    /// progress; blocked receives fall through to the noise/forced
    /// paths instead of buffering without bound).
    pub buffer_cap_bytes: Option<usize>,
}

impl Default for RankerOptions {
    fn default() -> Self {
        RankerOptions {
            window: Nanos::from_millis(10),
            window_policy: WindowPolicy::Static,
            swap: true,
            fetch_boost: 16,
            noise_discard: true,
            buffer_cap_bytes: None,
        }
    }
}

/// Counters describing the ranker's work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankerCounters {
    /// Activities accepted into per-node queues.
    pub enqueued: u64,
    /// Candidates handed to the engine.
    pub candidates: u64,
    /// Candidates chosen by Rule 1.
    pub rule1: u64,
    /// Candidates chosen by Rule 2.
    pub rule2: u64,
    /// Head swaps performed for concurrency disturbances.
    pub swaps: u64,
    /// Window extensions performed while stuck.
    pub fetch_boosts: u64,
    /// RECEIVEs discarded as noise (`is_noise`).
    pub noise_discards: u64,
    /// Sharded mode: parked lane heads force-settled by the
    /// bounded-age settle rule
    /// ([`crate::correlator::CorrelatorConfig::lane_settle_depth`])
    /// before end of input.
    pub aged_settles: u64,
    /// Blocked RECEIVEs force-delivered although their pending send had
    /// too few bytes (lost SEND records; produces a deformed CAG rather
    /// than silently dropping the path).
    pub forced_deliveries: u64,
    /// High-water mark of buffered activities across all queues.
    pub peak_buffered: usize,
    /// Round-trip latency samples observed for adaptive windowing.
    pub rtt_samples: u64,
    /// Times the adaptive window was recomputed from the quantiles.
    pub window_updates: u64,
    /// Adaptive updates where the memory-budget clamp bound the window
    /// below the latency-derived target (see
    /// [`Ranker::set_adaptive_budget`]).
    pub window_clamps: u64,
    /// The adaptive window after the last update, in nanoseconds
    /// (a gauge: `absorb` takes the max; `0` under the static policy).
    pub adaptive_window_ns: u64,
}

impl RankerCounters {
    /// Folds another counter set into this one: event counts are sums,
    /// `peak_buffered` (a high-water mark of concurrently resident
    /// state) is summed too — per-shard rankers are resident at the
    /// same time, so the worst case is additive.
    pub fn absorb(&mut self, other: &RankerCounters) {
        let RankerCounters {
            enqueued,
            candidates,
            rule1,
            rule2,
            swaps,
            fetch_boosts,
            noise_discards,
            aged_settles,
            forced_deliveries,
            peak_buffered,
            rtt_samples,
            window_updates,
            window_clamps,
            adaptive_window_ns,
        } = other;
        self.enqueued += enqueued;
        self.candidates += candidates;
        self.rule1 += rule1;
        self.rule2 += rule2;
        self.swaps += swaps;
        self.fetch_boosts += fetch_boosts;
        self.noise_discards += noise_discards;
        self.aged_settles += aged_settles;
        self.forced_deliveries += forced_deliveries;
        self.peak_buffered += peak_buffered;
        self.rtt_samples += rtt_samples;
        self.window_updates += window_updates;
        self.window_clamps += window_clamps;
        self.adaptive_window_ns = self.adaptive_window_ns.max(*adaptive_window_ns);
    }
}

/// One step of ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankStep {
    /// The next candidate activity for the engine.
    Candidate(Activity),
    /// An unmatched RECEIVE discarded by `is_noise`.
    Noise(Activity),
    /// Streaming mode: a queue is still open and the ranker cannot
    /// safely decide; push more input or close the sources.
    NeedInput,
    /// All sources are closed and drained.
    Exhausted,
}

/// Seq-number origin for window buffers. Sequence numbers increase at
/// the back of a buffer and *decrease* below the current front when a
/// stuck-resolution promotion moves an activity to the head, so the
/// origin leaves ample room on both sides.
const SEQ_BASE: u64 = 1 << 40;

/// Approximate resident bytes per buffered activity (the `(seq,
/// Activity)` slot plus, for sends, the per-channel index entry);
/// shared by `approx_bytes` and the buffer byte cap.
const PER_BUFFERED_BYTES: usize = size_of::<(u64, Activity)>() + 40;

#[derive(Debug)]
struct NodeQueue {
    host: Arc<str>,
    /// Activities inside the sliding window, ordered by local time, each
    /// tagged with a buffer sequence number. Sequence numbers are
    /// strictly increasing front-to-back at all times: refills append
    /// with increasing seqs and promotions re-enter at `front seq - 1`,
    /// so `seq` order always equals buffer-position order.
    buf: VecDeque<(u64, Activity)>,
    /// Staged activities not yet fetched (the "log on disk").
    incoming: VecDeque<Activity>,
    /// No more input will ever arrive for this node.
    closed: bool,
    /// Next sequence number for a back append.
    next_seq: u64,
    /// Tombstones: seqs promoted out of the middle of `buf` that the
    /// front has not yet advanced past. Needed to map a live seq to its
    /// current buffer index in O(log n + promotions-in-flight).
    removed: BTreeSet<u64>,
}

impl NodeQueue {
    fn head(&self) -> Option<&Activity> {
        self.buf.front().map(|(_, a)| a)
    }

    fn front_seq(&self) -> Option<u64> {
        self.buf.front().map(|(s, _)| *s)
    }

    /// Current buffer index of a live seq: its rank among live seqs.
    fn position_of(&self, seq: u64) -> usize {
        let front = self.front_seq().expect("position in non-empty buffer");
        (seq - front) as usize - self.removed.range(front..seq).count()
    }

    /// True when an activity of `ctx` is buffered ahead of position `k`
    /// (same-context activities are causally ordered; crossing one in a
    /// swap would fabricate a causal inversion). O(k), but only ever run
    /// on an actual promotion candidate — never on the failed-scan path.
    fn ctx_blocked(&self, ctx: &ContextId, k: usize) -> bool {
        self.buf.iter().take(k).any(|(_, p)| p.ctx == *ctx)
    }
}

/// How deep the stuck-resolution fallback scan looks into each queue for
/// deliverable RECEIVE/BEGIN/END activities buried behind blockers.
/// (Matching SENDs are found at any depth via the per-channel index.)
const SWAP_SCAN_DEPTH: usize = 64;

/// Cap on in-flight round-trip measurements kept for adaptive windowing.
const RTT_OPEN_CAP: usize = 65_536;

/// Cap on distinct `(src ip, dst ip)` latency histograms; pairs beyond
/// it are simply not tracked (bounds memory under internal-IP churn).
const HIST_PAIR_CAP: usize = 1_024;

/// Recompute the adaptive window once per this many RTT samples.
const ADAPT_EVERY: u64 = 256;

/// Online latency-quantile tracking for [`WindowPolicy::Adaptive`].
///
/// Round trips are measured per node in that node's own local time
/// (SEND ts on a channel → RECEIVE ts on the reversed channel), so the
/// estimate is skew-free, and aggregated into power-of-two histograms
/// per `(src ip, dst ip)` pair.
#[derive(Debug, Default)]
struct AdaptiveState {
    /// Open round trips: outbound channel → local SEND timestamp.
    rtt_open: FxHashMap<Channel, LocalTime>,
    /// Latency histograms (bucket i counts samples < 2^i ns).
    hists: FxHashMap<(Ipv4Addr, Ipv4Addr), [u64; 64]>,
    /// Samples seen since the last window recomputation.
    since_update: u64,
    /// The current adaptive window (clamped p99 × slack).
    current: Nanos,
    /// Memory budget folded into the clamp (see
    /// [`Ranker::set_adaptive_budget`]); `None` leaves the policy's
    /// static `max` as the only ceiling.
    budget: Option<usize>,
    /// High-water mark of buffered activities since the last window
    /// update — the density sample the budget clamp divides by.
    interval_peak: usize,
    /// High-water buffer density (activities per window-nanosecond)
    /// across all updates. A high-water, not a recent sample: buffer
    /// pressure is bursty, and a clamp derived from a quiet interval
    /// would let the window stretch right before the next burst.
    peak_density: f64,
}

impl AdaptiveState {
    /// p99 of one histogram, as a power-of-two upper bound.
    fn p99_of(hist: &[u64; 64]) -> Option<u64> {
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return None;
        }
        let threshold = (total * 99).div_ceil(100);
        let mut seen = 0u64;
        for (bucket, &n) in hist.iter().enumerate() {
            seen += n;
            if seen >= threshold {
                return Some(1u64 << bucket.min(62));
            }
        }
        None
    }

    /// The window target: the largest per-link request round trip.
    ///
    /// Each *directed* `(src ip, dst ip)` pair holds homogeneous
    /// samples, but only one direction of a link measures a true
    /// request→response round trip; the opposite direction pairs a
    /// node's response SEND with its RECEIVE of the *next* request on a
    /// persistent connection — an inter-request idle gap, which under
    /// light load is the think time, not a latency. The smaller
    /// directed p99 of a link is therefore the request RTT (a gap is
    /// bounded below by the RTT it straddles); the window takes the max
    /// of those minima across links.
    fn worst_p99(&self) -> Option<Nanos> {
        let mut worst: Option<u64> = None;
        for (&(a, b), hist) in &self.hists {
            let Some(p) = Self::p99_of(hist) else {
                continue;
            };
            let rtt = match self.hists.get(&(b, a)).and_then(Self::p99_of) {
                Some(q) => p.min(q),
                None => p,
            };
            worst = Some(worst.map_or(rtt, |w| w.max(rtt)));
        }
        worst.map(Nanos)
    }
}

/// The ranker: per-node queues plus the candidate-selection rules.
#[derive(Debug)]
pub struct Ranker {
    opts: RankerOptions,
    queues: Vec<NodeQueue>,
    by_host: FxHashMap<Arc<str>, usize>,
    /// Queue indexes in lexicographic host order: every cross-queue scan
    /// and tie-break uses this order, so candidate selection does not
    /// depend on the order in which hosts first appeared in the input
    /// (batch and streaming ingestion agree byte-for-byte).
    order: Vec<usize>,
    boost_level: u32,
    counters: RankerCounters,
    buffered: usize,
    /// Count of SEND activities per channel anywhere in the ranker
    /// (staged or buffered), so the stuck path can decide `is_noise` in
    /// O(1): a RECEIVE whose channel has no pending send in the engine
    /// *and* no send anywhere in the remaining input can never match.
    send_index: FxHashMap<Channel, u32>,
    /// Time-ordered index of *buffered* SENDs per channel: `(queue, seq)`
    /// pairs, where within a queue seq order equals buffer-position (and
    /// local-time) order. Lets the stuck path jump straight to a blocked
    /// head's matching SEND in O(log n) instead of scanning a window's
    /// worth of buffered activities.
    buf_sends: FxHashMap<Channel, BTreeSet<(u32, u64)>>,
    /// Latency tracking for the adaptive window policy.
    adaptive: AdaptiveState,
    /// Scratch buffers reused across `try_swap` calls (the stuck path
    /// runs once per noise discard; per-call allocations add up).
    scratch_channels: Vec<Channel>,
    scratch_cands: Vec<usize>,
}

impl Ranker {
    /// Creates an empty streaming ranker; queues appear as hosts are
    /// first pushed.
    pub fn new(opts: RankerOptions) -> Self {
        let current = match opts.window_policy {
            WindowPolicy::Static => opts.window,
            WindowPolicy::Adaptive { min, .. } => min,
        };
        Ranker {
            opts,
            queues: Vec::new(),
            by_host: FxHashMap::default(),
            order: Vec::new(),
            boost_level: 0,
            counters: RankerCounters::default(),
            buffered: 0,
            send_index: FxHashMap::default(),
            buf_sends: FxHashMap::default(),
            adaptive: AdaptiveState {
                current,
                ..AdaptiveState::default()
            },
            scratch_channels: Vec::new(),
            scratch_cands: Vec::new(),
        }
    }

    /// Creates an offline ranker over complete per-node streams (each
    /// stream must be sorted by local timestamp; hosts are ordered
    /// deterministically by name).
    pub fn from_streams(opts: RankerOptions, mut streams: Vec<(Arc<str>, Vec<Activity>)>) -> Self {
        streams.sort_by(|a, b| a.0.cmp(&b.0));
        let mut r = Ranker::new(opts);
        for (host, acts) in streams {
            for a in acts {
                r.push(a);
            }
            r.close_host(&host);
        }
        r.close_all();
        r
    }

    /// The ranker's counters.
    pub fn counters(&self) -> &RankerCounters {
        &self.counters
    }

    /// Approximate resident bytes of all queue buffers and their indexes
    /// (the quantity the sliding window bounds; staged input is "the log
    /// on disk" and is not counted).
    pub fn approx_bytes(&self) -> usize {
        // Per buffered activity: the (seq, Activity) slot plus (for
        // sends) the per-channel index entry.
        self.buffered * PER_BUFFERED_BYTES
            + self.adaptive.rtt_open.len() * (size_of::<Channel>() + size_of::<LocalTime>() + 16)
            + self.adaptive.hists.len() * (size_of::<(Ipv4Addr, Ipv4Addr)>() + 512 + 16)
    }

    /// Overrides the buffer byte cap after construction (used when the
    /// memory budget is supplied through the streaming correlator's
    /// builder rather than through the configuration).
    pub fn set_buffer_cap(&mut self, bytes: Option<usize>) {
        self.opts.buffer_cap_bytes = bytes;
    }

    /// Folds a memory budget into the adaptive-window clamp: under
    /// [`WindowPolicy::Adaptive`] the window's ceiling additionally
    /// scales with what the budget can hold, so a noisy latency tail
    /// cannot settle the window far above what the resident buffers
    /// afford (window buffers cannot spill — they are the working set).
    /// The estimate divides the ranker's share of the budget by the
    /// observed buffer density; both inputs derive from record content,
    /// never from timing, so ranking stays deterministic. No-op under
    /// [`WindowPolicy::Static`].
    pub fn set_adaptive_budget(&mut self, bytes: Option<usize>) {
        self.adaptive.budget = bytes;
    }

    /// True when the buffer byte cap is what stops further fetching.
    fn cap_blocked(&self) -> bool {
        self.opts
            .buffer_cap_bytes
            .is_some_and(|b| self.buffered >= (b / PER_BUFFERED_BYTES).max(1))
    }

    /// The current base sliding window (before any stuck-state boost):
    /// the static knob, or the latest adaptive estimate.
    pub fn current_window(&self) -> Nanos {
        match self.opts.window_policy {
            WindowPolicy::Static => self.opts.window,
            WindowPolicy::Adaptive { .. } => self.adaptive.current,
        }
    }

    /// Number of activities currently inside the window buffers.
    pub fn buffered_len(&self) -> usize {
        self.buffered
    }

    /// Hostnames with a queue, in queue order.
    pub fn hosts(&self) -> impl Iterator<Item = &str> {
        self.queues.iter().map(|q| &*q.host)
    }

    /// Stages one activity (routed by its context's hostname). Input for
    /// a given host must arrive in local-timestamp order; out-of-order
    /// records are re-sorted into the staging queue.
    pub fn push(&mut self, a: Activity) {
        let qi = self.queue_index(&a.ctx.hostname);
        let q = &mut self.queues[qi];
        // Per-node logs are produced in local-time order; tolerate small
        // inversions (e.g. concatenated per-CPU buffers) by insertion.
        if a.ty == ActivityType::Send {
            *self.send_index.entry(a.channel).or_insert(0) += 1;
        }
        let pos = q
            .incoming
            .iter()
            .rposition(|x| x.ts <= a.ts)
            .map(|p| p + 1)
            .unwrap_or(0);
        if pos == q.incoming.len() {
            q.incoming.push_back(a);
        } else {
            q.incoming.insert(pos, a);
        }
        self.counters.enqueued += 1;
    }

    /// Declares a host's stream complete. Returns `false` when no
    /// activity of that host was ever pushed (nothing to close).
    pub fn close_host(&mut self, host: &str) -> bool {
        match self.by_host.get(host) {
            Some(&qi) => {
                self.queues[qi].closed = true;
                true
            }
            None => false,
        }
    }

    /// Declares every stream complete (offline mode).
    pub fn close_all(&mut self) {
        for q in &mut self.queues {
            q.closed = true;
        }
    }

    fn queue_index(&mut self, host: &Arc<str>) -> usize {
        if let Some(&qi) = self.by_host.get(host) {
            return qi;
        }
        let qi = self.queues.len();
        self.queues.push(NodeQueue {
            host: Arc::clone(host),
            buf: VecDeque::new(),
            incoming: VecDeque::new(),
            closed: false,
            next_seq: SEQ_BASE,
            removed: BTreeSet::new(),
        });
        self.by_host.insert(Arc::clone(host), qi);
        // Keep the scan order sorted by host name, independent of
        // arrival order.
        let pos = self
            .order
            .partition_point(|&i| self.queues[i].host < self.queues[qi].host);
        self.order.insert(pos, qi);
        qi
    }

    fn effective_window(&self) -> Nanos {
        Nanos(
            self.current_window()
                .0
                .saturating_mul(1u64 << self.boost_level.min(40)),
        )
    }

    /// Moves staged activities into the window buffer, indexing each one.
    fn refill(&mut self) {
        let w = self.effective_window();
        let cap = self
            .opts
            .buffer_cap_bytes
            .map(|b| (b / PER_BUFFERED_BYTES).max(1))
            .unwrap_or(usize::MAX);
        let mut total = self.buffered;
        let mut moved = 0usize;
        for (qi, q) in self.queues.iter_mut().enumerate() {
            while let Some(next) = q.incoming.front() {
                // The byte cap backstops stuck-state window boosts; a
                // queue may always hold a head so the drain progresses.
                if total >= cap && !q.buf.is_empty() {
                    break;
                }
                let fits = match q.head() {
                    None => true,
                    Some(front) => next.ts.saturating_since(front.ts) <= w,
                };
                if !fits {
                    break;
                }
                let a = q.incoming.pop_front().expect("peeked");
                let seq = q.next_seq;
                q.next_seq += 1;
                if a.ty == ActivityType::Send {
                    self.buf_sends
                        .entry(a.channel)
                        .or_default()
                        .insert((qi as u32, seq));
                }
                q.buf.push_back((seq, a));
                moved += 1;
                total += 1;
            }
        }
        self.buffered += moved;
        self.counters.peak_buffered = self.counters.peak_buffered.max(self.buffered);
    }

    /// Drops a buffered send from the per-channel index.
    fn unindex_send(&mut self, qi: usize, channel: Channel, seq: u64) {
        if let Some(set) = self.buf_sends.get_mut(&channel) {
            set.remove(&(qi as u32, seq));
            if set.is_empty() {
                self.buf_sends.remove(&channel);
            }
        }
    }

    fn pop(&mut self, qi: usize) -> Activity {
        let (seq, a) = self.queues[qi].buf.pop_front().expect("head exists");
        if a.ty == ActivityType::Send {
            self.unindex_send(qi, a.channel, seq);
            if let Some(n) = self.send_index.get_mut(&a.channel) {
                *n -= 1;
                if *n == 0 {
                    self.send_index.remove(&a.channel);
                }
            }
        }
        // Tombstones behind the new front are spent.
        let q = &mut self.queues[qi];
        if !q.removed.is_empty() {
            match q.front_seq() {
                Some(front) => q.removed = q.removed.split_off(&front),
                None => q.removed.clear(),
            }
        }
        self.buffered -= 1;
        self.boost_level = 0;
        self.observe(&a);
        a
    }

    /// Feeds one popped candidate into the adaptive-window latency
    /// tracker: a SEND opens a round trip on its channel, the RECEIVE on
    /// the reversed channel closes it (both timestamps are local to the
    /// same node, so skew cancels).
    fn observe(&mut self, a: &Activity) {
        if self.opts.window_policy == WindowPolicy::Static {
            return;
        }
        self.adaptive.interval_peak = self.adaptive.interval_peak.max(self.buffered);
        match a.ty {
            ActivityType::Send => {
                if self.adaptive.rtt_open.len() >= RTT_OPEN_CAP
                    && !self.adaptive.rtt_open.contains_key(&a.channel)
                {
                    // One-shot channels whose reversed-channel RECEIVE
                    // never arrives would otherwise fill the map and
                    // freeze the tracker for the rest of the session;
                    // dropping the stale set loses at most one sample
                    // per live channel, which traffic replenishes.
                    self.adaptive.rtt_open.clear();
                }
                self.adaptive.rtt_open.insert(a.channel, a.ts);
            }
            ActivityType::Receive => {
                let out = a.channel.reversed();
                if let Some(t0) = self.adaptive.rtt_open.remove(&out) {
                    let key = (out.src.ip, out.dst.ip);
                    if self.adaptive.hists.len() >= HIST_PAIR_CAP
                        && !self.adaptive.hists.contains_key(&key)
                    {
                        return;
                    }
                    let rtt = a.ts.saturating_since(t0);
                    let bucket = (64 - rtt.0.leading_zeros() as usize).min(63);
                    let hist = self.adaptive.hists.entry(key).or_insert([0u64; 64]);
                    hist[bucket] += 1;
                    self.counters.rtt_samples += 1;
                    self.adaptive.since_update += 1;
                    if self.adaptive.since_update >= ADAPT_EVERY {
                        self.adaptive.since_update = 0;
                        self.update_adaptive_window();
                    }
                }
            }
            ActivityType::Begin | ActivityType::End => {}
        }
    }

    /// Recomputes the adaptive window from the per-pair p99 quantiles,
    /// then applies the memory-budget ceiling (see
    /// [`Ranker::set_adaptive_budget`]).
    fn update_adaptive_window(&mut self) {
        let WindowPolicy::Adaptive { slack, min, max } = self.opts.window_policy else {
            return;
        };
        let peak = std::mem::take(&mut self.adaptive.interval_peak);
        let span = self.adaptive.current.0.max(1);
        self.adaptive.peak_density = self.adaptive.peak_density.max(peak as f64 / span as f64);
        if let Some(p99) = self.adaptive.worst_p99() {
            let want = p99.0.saturating_mul(u64::from(slack.max(1)));
            let mut hi = max.0;
            if let Some(budget) = self.adaptive.budget {
                if self.adaptive.peak_density > 0.0 {
                    // Project the span whose buffers would fill the
                    // ranker's half of the budget at the worst density
                    // seen so far, and cap the window there.
                    let allow = (budget / 2 / PER_BUFFERED_BYTES).max(1) as f64;
                    let cap = (allow / self.adaptive.peak_density) as u64;
                    if cap < hi {
                        hi = cap;
                        if want > cap {
                            self.counters.window_clamps += 1;
                        }
                    }
                }
            }
            self.adaptive.current = Nanos(want.clamp(min.0, hi.max(min.0)));
            self.counters.window_updates += 1;
        }
        self.counters.adaptive_window_ns = self.adaptive.current.0;
    }

    /// Chooses the next candidate (§4.1 Rules 1 and 2, §4.3 disturbance
    /// handling). `oracle` is the engine's `mmap` view.
    pub fn rank(&mut self, oracle: &dyn MatchOracle) -> RankStep {
        let mut swap_budget = self.buffered + 64;
        loop {
            self.refill();
            // Rule 1: a RECEIVE head whose SEND is already in the mmap.
            // Queues are scanned in host-name order so the choice is
            // independent of input arrival order.
            let mut any_head = false;
            let mut rule1_pick: Option<usize> = None;
            for &qi in &self.order {
                if let Some(h) = self.queues[qi].head() {
                    any_head = true;
                    if h.ty == ActivityType::Receive && oracle.rule1_matches(h) {
                        rule1_pick = Some(qi);
                        break;
                    }
                }
            }
            if let Some(qi) = rule1_pick {
                self.counters.rule1 += 1;
                self.counters.candidates += 1;
                return RankStep::Candidate(self.pop(qi));
            }
            if !any_head {
                if self
                    .queues
                    .iter()
                    .all(|q| q.closed && q.incoming.is_empty())
                {
                    return RankStep::Exhausted;
                }
                // Some queue is open but empty; try fetching again later.
                return RankStep::NeedInput;
            }
            // Rule 2: the head with the lowest priority wins; ties break
            // on local timestamp then host order for determinism.
            let (qi, head_ty) = self
                .order
                .iter()
                .filter_map(|&qi| self.queues[qi].head().map(|h| (qi, h)))
                .min_by_key(|(_, h)| (h.ty.priority(), h.ts))
                .map(|(qi, h)| (qi, h.ty))
                .expect("some head exists");
            if head_ty != ActivityType::Receive {
                self.counters.rule2 += 1;
                self.counters.candidates += 1;
                return RankStep::Candidate(self.pop(qi));
            }
            // Stuck: every head is an unmatched RECEIVE.
            if self.opts.swap && swap_budget > 0 && self.try_swap(oracle) {
                swap_budget -= 1;
                continue;
            }
            // Could the winner ever match? Only if the engine holds a
            // partial pending for its channel or a SEND on its channel
            // still exists somewhere in the input. If so, extend the
            // window until that send surfaces; if not, it is noise and
            // boosting would be wasted work.
            let (winner_matchable, winner_has_pending) = match self.queues[qi].head() {
                Some(h) => (
                    oracle.has_any_pending(h) || self.send_index.contains_key(&h.channel),
                    oracle.has_any_pending(h),
                ),
                None => (false, false),
            };
            if winner_matchable && self.boost_fetch() {
                continue;
            }
            // Open queues normally mean "wait for more input" — the
            // missing SEND may still arrive. But when the buffer byte
            // cap is the reason nothing can be fetched, waiting would
            // stall a live stream forever while staged input piles up:
            // under a cap, blocked receives fall through to the
            // forced/noise paths instead (bounded memory wins over
            // completeness, by configuration).
            if self.queues.iter().any(|q| !q.closed) && !self.cap_blocked() {
                return RankStep::NeedInput;
            }
            let victim = self.pop(qi);
            if winner_has_pending {
                // A pending send exists but cannot cover this receive:
                // its remaining SEND segments were lost. Force-deliver
                // so the engine produces a (deformed) path instead of
                // silently losing it.
                self.counters.forced_deliveries += 1;
                self.counters.candidates += 1;
                return RankStep::Candidate(victim);
            }
            // is_noise: no match in mmap (Rule 1 failed) and no match in
            // the ranker buffer (try_swap found none).
            if self.opts.noise_discard {
                self.counters.noise_discards += 1;
                return RankStep::Noise(victim);
            }
            self.counters.rule2 += 1;
            self.counters.candidates += 1;
            return RankStep::Candidate(victim);
        }
    }

    /// Resolves a stuck state by bubbling a *deliverable* buffered
    /// activity to its queue head (the Fig. 6 swap).
    ///
    /// Deliverable means: a SEND matching a blocked head RECEIVE's
    /// channel, a RECEIVE that already matches the `mmap` (Rule 1), or a
    /// BEGIN/END (which never wait on a message relation). The swap is
    /// only legal past a predecessor from a **different execution
    /// entity**: activities of the same context are causally ordered by
    /// their queue position (the per-CPU reordering of Fig. 6 can only
    /// interleave different threads), so swapping within a context would
    /// fabricate a causal inversion.
    ///
    /// Matching SENDs are located through the per-channel `buf_sends`
    /// index in O(log n) instead of scanning a window's worth of
    /// buffered activities; RECEIVE/BEGIN/END deliverables surface as
    /// blockers ahead of them are resolved, so a bounded
    /// [`SWAP_SCAN_DEPTH`] look-ahead suffices for them. Queues are
    /// visited in host order and, within a queue, candidates in buffer
    /// position order — the same promotion the former full scan chose.
    fn try_swap(&mut self, oracle: &dyn MatchOracle) -> bool {
        let mut head_channels = std::mem::take(&mut self.scratch_channels);
        head_channels.clear();
        head_channels.extend(
            self.order
                .iter()
                .filter_map(|&qi| self.queues[qi].head())
                .filter(|h| h.ty == ActivityType::Receive)
                .map(|h| h.channel),
        );
        // Is any blocked head's SEND in the ranker at all? The count
        // index makes the common noise case (no match anywhere) O(1).
        let any_send = head_channels
            .iter()
            .any(|ch| self.send_index.contains_key(ch));
        let mut cands = std::mem::take(&mut self.scratch_cands);
        let mut promoted: Option<(usize, usize)> = None;
        'queues: for oi in 0..self.order.len() {
            let qi = self.order[oi];
            let q = &self.queues[qi];
            let len = q.buf.len();
            if len < 2 {
                continue;
            }
            cands.clear();
            // Candidate positions, ascending. Sends first from the
            // index (seq order == position order within a queue) ...
            if any_send {
                for ch in &head_channels {
                    if let Some(set) = self.buf_sends.get(ch) {
                        let lo = (qi as u32, u64::MIN);
                        let hi = (qi as u32, u64::MAX);
                        cands.extend(set.range(lo..=hi).map(|(_, seq)| q.position_of(*seq)));
                    }
                }
            }
            // ... then the bounded look-ahead for the other types.
            for (k, (_, a)) in q
                .buf
                .iter()
                .enumerate()
                .take(len.min(SWAP_SCAN_DEPTH))
                .skip(1)
            {
                match a.ty {
                    ActivityType::Receive if oracle.rule1_matches(a) => cands.push(k),
                    ActivityType::Begin | ActivityType::End => cands.push(k),
                    _ => {}
                }
            }
            cands.sort_unstable();
            cands.dedup();
            for &k in &cands {
                if k == 0 {
                    continue;
                }
                let (_, a) = &q.buf[k];
                if !q.ctx_blocked(&a.ctx, k) {
                    promoted = Some((qi, k));
                    break 'queues;
                }
            }
        }
        self.scratch_channels = head_channels;
        self.scratch_cands = cands;
        match promoted {
            Some((qi, k)) => {
                self.promote(qi, k);
                true
            }
            None => false,
        }
    }

    /// Moves the buffered activity at position `k` of queue `qi` to the
    /// queue head (the net effect of the paper's repeated adjacent
    /// swaps), re-tagging it with a fresh front sequence number and
    /// leaving a tombstone at its old seq.
    fn promote(&mut self, qi: usize, k: usize) {
        let q = &mut self.queues[qi];
        let (seq, a) = q.buf.remove(k).expect("index in bounds");
        let is_send = a.ty == ActivityType::Send;
        let channel = a.channel;
        if is_send {
            self.unindex_send(qi, channel, seq);
        }
        let q = &mut self.queues[qi];
        let new_seq = q.front_seq().expect("stuck queue has a head") - 1;
        q.removed.insert(seq);
        q.buf.push_front((new_seq, a));
        if is_send {
            self.buf_sends
                .entry(channel)
                .or_default()
                .insert((qi as u32, new_seq));
        }
        self.counters.swaps += k as u64;
    }

    /// Repeatedly doubles the effective window and refetches until
    /// something new enters a buffer or the boost cap is reached.
    fn boost_fetch(&mut self) -> bool {
        if self.queues.iter().all(|q| q.incoming.is_empty()) {
            // Nothing to fetch no matter the window.
            return false;
        }
        while self.boost_level < self.opts.fetch_boost {
            self.boost_level += 1;
            self.counters.fetch_boosts += 1;
            let before = self.buffered;
            self.refill();
            if self.buffered > before {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Channel, ContextId, EndpointV4, LocalTime};

    fn ep(s: &str) -> EndpointV4 {
        s.parse().unwrap()
    }

    fn act(ty: ActivityType, ts: u64, host: &str, src: &str, dst: &str) -> Activity {
        act_tid(ty, ts, host, 1, src, dst)
    }

    /// Like `act` but on an explicit thread (Fig. 6 concurrency involves
    /// different execution entities on different CPUs).
    fn act_tid(ty: ActivityType, ts: u64, host: &str, tid: u32, src: &str, dst: &str) -> Activity {
        Activity {
            ty,
            ts: LocalTime::from_nanos(ts),
            ctx: ContextId::new(host, "prog", 1, tid),
            channel: Channel::new(ep(src), ep(dst)),
            size: 100,
            tag: 0,
            seq: None,
        }
    }

    /// Oracle backed by a set of channels with pending sends (assumed to
    /// fully cover any receive).
    struct SetOracle(std::collections::HashSet<Channel>);

    impl MatchOracle for SetOracle {
        fn rule1_matches(&self, a: &Activity) -> bool {
            self.0.contains(&a.channel)
        }

        fn has_any_pending(&self, a: &Activity) -> bool {
            self.0.contains(&a.channel)
        }
    }

    fn drain(r: &mut Ranker, oracle: &dyn MatchOracle) -> Vec<RankStep> {
        let mut out = Vec::new();
        loop {
            let s = r.rank(oracle);
            let stop = matches!(s, RankStep::Exhausted | RankStep::NeedInput);
            out.push(s);
            if stop {
                return out;
            }
        }
    }

    #[test]
    fn rule2_priority_orders_heads() {
        // Three queues with BEGIN / SEND / RECEIVE heads: BEGIN pops first,
        // then SEND, and the unmatched RECEIVE is eventually noise.
        let streams = vec![
            (
                Arc::from("a"),
                vec![act(
                    ActivityType::Begin,
                    100,
                    "a",
                    "9.9.9.9:1",
                    "10.0.0.1:80",
                )],
            ),
            (
                Arc::from("b"),
                vec![act(ActivityType::Send, 50, "b", "10.0.0.2:1", "10.0.0.3:2")],
            ),
            (
                Arc::from("c"),
                vec![act(
                    ActivityType::Receive,
                    10,
                    "c",
                    "8.8.8.8:1",
                    "10.0.0.3:9",
                )],
            ),
        ];
        let mut r = Ranker::from_streams(RankerOptions::default(), streams);
        let steps = drain(&mut r, &NoOracle);
        let tys: Vec<String> = steps.iter().map(|s| format!("{s:?}")).collect();
        assert!(tys[0].contains("Begin"), "{tys:?}");
        assert!(tys[1].contains("Send"), "{tys:?}");
        assert!(matches!(steps[2], RankStep::Noise(_)), "{tys:?}");
        assert!(matches!(steps[3], RankStep::Exhausted));
    }

    #[test]
    fn rule1_pops_matched_receive_before_lower_priority_heads() {
        let recv = act(ActivityType::Receive, 10, "b", "10.0.0.1:5", "10.0.0.2:6");
        let streams = vec![
            (
                Arc::from("a"),
                vec![act(ActivityType::Begin, 1, "a", "9.9.9.9:1", "10.0.0.1:80")],
            ),
            (Arc::from("b"), vec![recv.clone()]),
        ];
        let mut r = Ranker::from_streams(RankerOptions::default(), streams);
        let oracle = SetOracle([recv.channel].into_iter().collect());
        // Rule 1 beats the BEGIN even though BEGIN has lower priority.
        match r.rank(&oracle) {
            RankStep::Candidate(a) => assert_eq!(a.ty, ActivityType::Receive),
            other => panic!("expected candidate, got {other:?}"),
        }
        assert_eq!(r.counters().rule1, 1);
    }

    #[test]
    fn within_queue_order_is_preserved() {
        let streams = vec![(
            Arc::from("a"),
            vec![
                act(ActivityType::Send, 10, "a", "10.0.0.1:1", "10.0.0.2:2"),
                act(ActivityType::Send, 20, "a", "10.0.0.1:3", "10.0.0.2:4"),
            ],
        )];
        let mut r = Ranker::from_streams(RankerOptions::default(), streams);
        let a = match r.rank(&NoOracle) {
            RankStep::Candidate(a) => a,
            o => panic!("{o:?}"),
        };
        assert_eq!(a.ts, LocalTime::from_nanos(10));
    }

    #[test]
    fn concurrency_disturbance_resolved_by_swap() {
        // Fig. 6: two 2-CPU nodes, each head RECEIVE blocked on the SEND
        // behind the other queue's head; the concurrent activities run
        // in different threads (CPUs).
        let n1r = act_tid(
            ActivityType::Receive,
            100,
            "n1",
            10,
            "10.0.0.2:9",
            "10.0.0.1:8",
        );
        let n1s = act_tid(
            ActivityType::Send,
            101,
            "n1",
            11,
            "10.0.0.1:8",
            "10.0.0.2:9",
        );
        let n2r = act_tid(
            ActivityType::Receive,
            200,
            "n2",
            20,
            "10.0.0.1:8",
            "10.0.0.2:9",
        );
        let n2s = act_tid(
            ActivityType::Send,
            201,
            "n2",
            21,
            "10.0.0.2:9",
            "10.0.0.1:8",
        );
        // Wire up channels so each receive matches the other node's send:
        // n1's receive r01,2-style ← n2's send; n2's receive ← n1's send.
        let streams = vec![
            (Arc::from("n1"), vec![n1r.clone(), n1s.clone()]),
            (Arc::from("n2"), vec![n2r.clone(), n2s.clone()]),
        ];
        let mut r = Ranker::from_streams(RankerOptions::default(), streams);
        let mut sent: std::collections::HashSet<Channel> = Default::default();
        let mut order = Vec::new();
        loop {
            let step = r.rank(&SetOracle(sent.clone()));
            match step {
                RankStep::Candidate(a) => {
                    if a.ty == ActivityType::Send {
                        sent.insert(a.channel);
                    }
                    order.push(a);
                }
                RankStep::Noise(a) => panic!("false noise discard of {a}"),
                RankStep::Exhausted => break,
                RankStep::NeedInput => panic!("offline ranker asked for input"),
            }
        }
        assert_eq!(order.len(), 4);
        assert!(r.counters().swaps >= 1, "swap must have fired");
        // Every receive must come after its matching send.
        for (i, a) in order.iter().enumerate() {
            if a.ty == ActivityType::Receive {
                assert!(
                    order[..i]
                        .iter()
                        .any(|b| b.ty == ActivityType::Send && b.channel == a.channel),
                    "receive before its send"
                );
            }
        }
    }

    #[test]
    fn swap_disabled_falls_back_to_noise() {
        let n1r = act_tid(
            ActivityType::Receive,
            100,
            "n1",
            10,
            "10.0.0.2:9",
            "10.0.0.1:8",
        );
        let n1s = act_tid(
            ActivityType::Send,
            101,
            "n1",
            11,
            "10.0.0.1:8",
            "10.0.0.2:9",
        );
        let n2r = act_tid(
            ActivityType::Receive,
            200,
            "n2",
            20,
            "10.0.0.1:8",
            "10.0.0.2:9",
        );
        let n2s = act_tid(
            ActivityType::Send,
            201,
            "n2",
            21,
            "10.0.0.2:9",
            "10.0.0.1:8",
        );
        let streams = vec![
            (Arc::from("n1"), vec![n1r, n1s]),
            (Arc::from("n2"), vec![n2r, n2s]),
        ];
        let opts = RankerOptions {
            swap: false,
            ..RankerOptions::default()
        };
        let mut r = Ranker::from_streams(opts, streams);
        let steps = drain(&mut r, &NoOracle);
        assert!(
            steps.iter().any(|s| matches!(s, RankStep::Noise(_))),
            "without swap the deadlock breaks by (wrongly) discarding: {steps:?}"
        );
    }

    #[test]
    fn buffer_cap_bounds_refill_despite_huge_window() {
        // A 100s window would buffer all 1000 activities at once; the
        // byte cap (the memory budget's backstop) keeps the buffer at
        // ~10 entries while every activity is still delivered.
        let acts: Vec<Activity> = (0..1000)
            .map(|i| {
                act(
                    ActivityType::Send,
                    i * 1_000_000,
                    "a",
                    "10.0.0.1:1",
                    "10.0.0.2:2",
                )
            })
            .collect();
        let mut r = Ranker::from_streams(
            RankerOptions {
                window: Nanos::from_secs(100),
                buffer_cap_bytes: Some(10 * PER_BUFFERED_BYTES),
                ..Default::default()
            },
            vec![(Arc::from("a"), acts)],
        );
        let mut n = 0;
        while let RankStep::Candidate(_) = r.rank(&NoOracle) {
            n += 1;
        }
        assert_eq!(n, 1000);
        assert!(
            r.counters().peak_buffered <= 11,
            "peak {} exceeds the cap",
            r.counters().peak_buffered
        );
    }

    #[test]
    fn cap_blocked_stuck_state_does_not_stall_open_stream() {
        // A live (open) queue whose head is an unmatched RECEIVE with
        // its maybe-matching SEND staged beyond the byte cap: without
        // the cap fall-through this would be NeedInput forever while
        // staged input grows; with it, the blocker is discharged.
        let mut r = Ranker::new(RankerOptions {
            buffer_cap_bytes: Some(PER_BUFFERED_BYTES),
            ..RankerOptions::default()
        });
        for i in 0..8u64 {
            r.push(act(
                ActivityType::Receive,
                10 + i,
                "a",
                "8.8.8.8:1",
                "10.0.0.3:9",
            ));
        }
        // Host stays open; the capped ranker must still make progress.
        let mut discharged = 0;
        for _ in 0..8 {
            match r.rank(&NoOracle) {
                RankStep::Noise(_) | RankStep::Candidate(_) => discharged += 1,
                RankStep::NeedInput => break,
                RankStep::Exhausted => break,
            }
        }
        assert!(
            discharged >= 7,
            "cap-blocked receives must discharge, got {discharged}"
        );
        assert!(r.counters().peak_buffered <= 2);
    }

    #[test]
    fn window_bounds_buffer() {
        // 1000 activities spaced 1ms, window 10ms → buffer stays small.
        let acts: Vec<Activity> = (0..1000)
            .map(|i| {
                act(
                    ActivityType::Send,
                    i * 1_000_000,
                    "a",
                    "10.0.0.1:1",
                    "10.0.0.2:2",
                )
            })
            .collect();
        let mut r = Ranker::from_streams(
            RankerOptions {
                window: Nanos::from_millis(10),
                ..Default::default()
            },
            vec![(Arc::from("a"), acts)],
        );
        let mut n = 0;
        while let RankStep::Candidate(_) = r.rank(&NoOracle) {
            n += 1;
        }
        assert_eq!(n, 1000);
        assert!(
            r.counters().peak_buffered <= 12,
            "peak {} too large",
            r.counters().peak_buffered
        );
    }

    #[test]
    fn larger_window_buffers_more() {
        let mk = |w: Nanos| {
            let acts: Vec<Activity> = (0..1000)
                .map(|i| {
                    act(
                        ActivityType::Send,
                        i * 1_000_000,
                        "a",
                        "10.0.0.1:1",
                        "10.0.0.2:2",
                    )
                })
                .collect();
            let mut r = Ranker::from_streams(
                RankerOptions {
                    window: w,
                    ..Default::default()
                },
                vec![(Arc::from("a"), acts)],
            );
            while let RankStep::Candidate(_) = r.rank(&NoOracle) {}
            r.counters().peak_buffered
        };
        assert!(mk(Nanos::from_millis(100)) > mk(Nanos::from_millis(10)));
    }

    #[test]
    fn streaming_need_input_then_progress() {
        let mut r = Ranker::new(RankerOptions::default());
        r.push(act(ActivityType::Send, 10, "a", "10.0.0.1:1", "10.0.0.2:2"));
        // One activity, host open: the ranker can pop it (it's a SEND).
        match r.rank(&NoOracle) {
            RankStep::Candidate(a) => assert_eq!(a.ty, ActivityType::Send),
            o => panic!("{o:?}"),
        }
        // Nothing left but the host is open → NeedInput.
        assert_eq!(r.rank(&NoOracle), RankStep::NeedInput);
        r.close_all();
        assert_eq!(r.rank(&NoOracle), RankStep::Exhausted);
    }

    #[test]
    fn stuck_receive_waits_for_open_queue() {
        // A receive whose send may still arrive on an open queue must not
        // be discarded as noise.
        let mut r = Ranker::new(RankerOptions::default());
        let recv = act(ActivityType::Receive, 10, "b", "10.0.0.1:5", "10.0.0.2:6");
        r.push(recv.clone());
        r.close_host("b");
        let send = act(ActivityType::Send, 500, "a", "10.0.0.1:5", "10.0.0.2:6");
        r.push(send.clone());
        // Queue "a" open: the ranker pops the send (Rule 2).
        match r.rank(&NoOracle) {
            RankStep::Candidate(a) => assert_eq!(a.ty, ActivityType::Send),
            o => panic!("{o:?}"),
        }
        // Now the receive matches via the oracle.
        let oracle = SetOracle([recv.channel].into_iter().collect());
        match r.rank(&oracle) {
            RankStep::Candidate(a) => assert_eq!(a.ty, ActivityType::Receive),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn out_of_order_push_is_resorted() {
        let mut r = Ranker::new(RankerOptions::default());
        r.push(act(
            ActivityType::Send,
            100,
            "a",
            "10.0.0.1:1",
            "10.0.0.2:2",
        ));
        r.push(act(ActivityType::Send, 50, "a", "10.0.0.1:3", "10.0.0.2:4"));
        r.close_all();
        let first = match r.rank(&NoOracle) {
            RankStep::Candidate(a) => a.ts,
            o => panic!("{o:?}"),
        };
        assert_eq!(first, LocalTime::from_nanos(50));
    }

    #[test]
    fn fetch_boost_finds_send_beyond_window() {
        // Mutually blocked receives whose matching sends sit far beyond
        // the 1ms window behind them (heavy skew): only the bounded
        // window boost can surface the sends.
        let streams = vec![
            (
                Arc::from("a"),
                vec![
                    act_tid(
                        ActivityType::Receive,
                        1_000_000,
                        "a",
                        10,
                        "10.0.0.2:7",
                        "10.0.0.1:6",
                    ),
                    act_tid(
                        ActivityType::Send,
                        40_000_000,
                        "a",
                        11,
                        "10.0.0.1:6",
                        "10.0.0.2:7",
                    ),
                ],
            ),
            (
                Arc::from("b"),
                vec![
                    act_tid(
                        ActivityType::Receive,
                        900_000,
                        "b",
                        20,
                        "10.0.0.1:6",
                        "10.0.0.2:7",
                    ),
                    act_tid(
                        ActivityType::Send,
                        30_000_000,
                        "b",
                        21,
                        "10.0.0.2:7",
                        "10.0.0.1:6",
                    ),
                ],
            ),
        ];
        let opts = RankerOptions {
            window: Nanos::from_millis(1),
            ..Default::default()
        };
        let mut r = Ranker::from_streams(opts, streams);
        // Drive with a stateful oracle simulating the engine.
        let mut sent: std::collections::HashSet<Channel> = Default::default();
        let mut got = Vec::new();
        loop {
            match r.rank(&SetOracle(sent.clone())) {
                RankStep::Candidate(a) => {
                    if a.ty == ActivityType::Send {
                        sent.insert(a.channel);
                    }
                    got.push(a);
                }
                RankStep::Noise(a) => panic!("false noise: {a}"),
                RankStep::Exhausted => break,
                RankStep::NeedInput => panic!("offline NeedInput"),
            }
        }
        assert_eq!(got.len(), 4);
        assert!(r.counters().fetch_boosts > 0);
    }

    #[test]
    fn noise_discard_can_be_disabled() {
        let streams = vec![(
            Arc::from("c"),
            vec![act(
                ActivityType::Receive,
                10,
                "c",
                "8.8.8.8:1",
                "10.0.0.3:9",
            )],
        )];
        let opts = RankerOptions {
            noise_discard: false,
            ..Default::default()
        };
        let mut r = Ranker::from_streams(opts, streams);
        match r.rank(&NoOracle) {
            RankStep::Candidate(a) => assert_eq!(a.ty, ActivityType::Receive),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn approx_bytes_tracks_buffered() {
        let mut r = Ranker::new(RankerOptions::default());
        assert_eq!(r.approx_bytes(), 0);
        r.push(act(ActivityType::Send, 10, "a", "10.0.0.1:1", "10.0.0.2:2"));
        r.close_all();
        // Not yet fetched into the buffer; rank() fetches then pops.
        let _ = r.rank(&NoOracle);
        assert_eq!(r.buffered_len(), 0);
    }
}
