//! Attribute-based noise filters (§4.3).
//!
//! "The ranker handles noise activities in two ways: 1) filters noise
//! activities according to their attributes, including program name, IP
//! and port. 2) If activities can not be filtered with the attributes,
//! the ranker checks them with the `is_noise` function."
//!
//! This module implements way 1). Way 2) — `is_noise` — lives in the
//! [`ranker`](crate::ranker) because it needs the ranker buffer and the
//! engine's `mmap`.

use std::net::Ipv4Addr;
use std::sync::Arc;

use crate::activity::Activity;
use crate::raw::RawRecordRef;

/// One attribute predicate; an activity matched by any *drop* rule is
/// discarded before ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FilterRule {
    /// Drop activities produced by this program (e.g. `sshd`, `rlogin`).
    DropProgram(Arc<str>),
    /// Drop activities whose remote peer has this IP.
    DropPeerIp(Ipv4Addr),
    /// Drop activities whose remote peer uses this port (e.g. 22).
    DropPeerPort(u16),
    /// Drop activities whose local endpoint uses this port.
    DropLocalPort(u16),
    /// Drop activities logged on this host.
    DropHost(Arc<str>),
    /// Keep **only** activities from these programs (applied after the
    /// drop rules; an empty allow list keeps everything).
    KeepPrograms(Vec<Arc<str>>),
}

/// An ordered set of attribute filters.
///
/// # Examples
///
/// ```
/// use tracer_core::{FilterRule, FilterSet};
/// let filters = FilterSet::new()
///     .drop_program("sshd")
///     .drop_program("rlogind")
///     .drop_peer_port(22);
/// assert_eq!(filters.rules().len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterSet {
    rules: Vec<FilterRule>,
}

impl FilterSet {
    /// An empty filter set that admits everything.
    pub fn new() -> Self {
        FilterSet::default()
    }

    /// The configured rules, in application order.
    pub fn rules(&self) -> &[FilterRule] {
        &self.rules
    }

    /// Adds an arbitrary rule.
    pub fn with_rule(mut self, rule: FilterRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Drops activities of the named program.
    pub fn drop_program(self, program: impl Into<Arc<str>>) -> Self {
        self.with_rule(FilterRule::DropProgram(program.into()))
    }

    /// Drops activities whose peer has the given IP.
    pub fn drop_peer_ip(self, ip: Ipv4Addr) -> Self {
        self.with_rule(FilterRule::DropPeerIp(ip))
    }

    /// Drops activities whose peer uses the given port.
    pub fn drop_peer_port(self, port: u16) -> Self {
        self.with_rule(FilterRule::DropPeerPort(port))
    }

    /// Drops activities whose local endpoint uses the given port.
    pub fn drop_local_port(self, port: u16) -> Self {
        self.with_rule(FilterRule::DropLocalPort(port))
    }

    /// Drops all activities logged on the given host.
    pub fn drop_host(self, host: impl Into<Arc<str>>) -> Self {
        self.with_rule(FilterRule::DropHost(host.into()))
    }

    /// Keeps only activities of the given programs.
    pub fn keep_programs<I, S>(self, programs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Arc<str>>,
    {
        self.with_rule(FilterRule::KeepPrograms(
            programs.into_iter().map(Into::into).collect(),
        ))
    }

    /// Whether a **borrowed** raw record survives all filters, without
    /// building an owned [`Activity`] first. Equivalent to classifying
    /// and calling [`FilterSet::admits`]: the BEGIN/END transformation
    /// never changes which side of the channel is local (BEGIN is
    /// receive-like, END send-like), so peer/local endpoints are
    /// derivable from the kernel op alone. The zero-copy ingest path
    /// uses this to drop filtered records before interning anything.
    pub fn admits_raw(&self, r: &RawRecordRef<'_>) -> bool {
        let (local, peer) = if r.is_send() {
            (r.src, r.dst)
        } else {
            (r.dst, r.src)
        };
        for rule in &self.rules {
            match rule {
                FilterRule::DropProgram(p) => {
                    if r.program == &**p {
                        return false;
                    }
                }
                FilterRule::DropPeerIp(ip) => {
                    if peer.ip == *ip {
                        return false;
                    }
                }
                FilterRule::DropPeerPort(port) => {
                    if peer.port == *port {
                        return false;
                    }
                }
                FilterRule::DropLocalPort(port) => {
                    if local.port == *port {
                        return false;
                    }
                }
                FilterRule::DropHost(h) => {
                    if r.hostname == &**h {
                        return false;
                    }
                }
                FilterRule::KeepPrograms(list) => {
                    if !list.is_empty() && !list.iter().any(|p| &**p == r.program) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Whether the activity survives all filters.
    pub fn admits(&self, a: &Activity) -> bool {
        for rule in &self.rules {
            match rule {
                FilterRule::DropProgram(p) => {
                    if a.ctx.program == *p {
                        return false;
                    }
                }
                FilterRule::DropPeerIp(ip) => {
                    if a.peer_endpoint().ip == *ip {
                        return false;
                    }
                }
                FilterRule::DropPeerPort(port) => {
                    if a.peer_endpoint().port == *port {
                        return false;
                    }
                }
                FilterRule::DropLocalPort(port) => {
                    if a.local_endpoint().port == *port {
                        return false;
                    }
                }
                FilterRule::DropHost(h) => {
                    if a.ctx.hostname == *h {
                        return false;
                    }
                }
                FilterRule::KeepPrograms(list) => {
                    if !list.is_empty() && !list.contains(&a.ctx.program) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{ActivityType, Channel, ContextId, EndpointV4, LocalTime};

    fn act(program: &str, host: &str, ty: ActivityType, src: &str, dst: &str) -> Activity {
        Activity {
            ty,
            ts: LocalTime::ZERO,
            ctx: ContextId::new(host, program, 1, 1),
            channel: Channel::new(
                src.parse::<EndpointV4>().unwrap(),
                dst.parse::<EndpointV4>().unwrap(),
            ),
            size: 1,
            tag: 0,
            seq: None,
        }
    }

    #[test]
    fn empty_set_admits_everything() {
        let f = FilterSet::new();
        assert!(f.admits(&act(
            "sshd",
            "n1",
            ActivityType::Send,
            "1.1.1.1:1",
            "2.2.2.2:2"
        )));
    }

    #[test]
    fn drop_program_by_name() {
        let f = FilterSet::new().drop_program("sshd");
        assert!(!f.admits(&act(
            "sshd",
            "n1",
            ActivityType::Send,
            "1.1.1.1:1",
            "2.2.2.2:2"
        )));
        assert!(f.admits(&act(
            "httpd",
            "n1",
            ActivityType::Send,
            "1.1.1.1:1",
            "2.2.2.2:2"
        )));
    }

    #[test]
    fn drop_peer_ip_uses_direction() {
        let noisy: Ipv4Addr = "9.9.9.9".parse().unwrap();
        let f = FilterSet::new().drop_peer_ip(noisy);
        // SEND to noisy peer: peer is dst.
        assert!(!f.admits(&act(
            "mysqld",
            "db",
            ActivityType::Send,
            "1.1.1.1:1",
            "9.9.9.9:2"
        )));
        // RECEIVE from noisy peer: peer is src.
        assert!(!f.admits(&act(
            "mysqld",
            "db",
            ActivityType::Receive,
            "9.9.9.9:2",
            "1.1.1.1:1"
        )));
        // Noisy IP on the local side does not match a *peer* rule.
        assert!(f.admits(&act(
            "mysqld",
            "db",
            ActivityType::Send,
            "9.9.9.9:1",
            "1.1.1.1:2"
        )));
    }

    #[test]
    fn drop_peer_and_local_ports() {
        let f = FilterSet::new().drop_peer_port(22).drop_local_port(514);
        assert!(!f.admits(&act(
            "x",
            "n1",
            ActivityType::Send,
            "1.1.1.1:9",
            "2.2.2.2:22"
        )));
        assert!(!f.admits(&act(
            "x",
            "n1",
            ActivityType::Send,
            "1.1.1.1:514",
            "2.2.2.2:9"
        )));
        assert!(f.admits(&act(
            "x",
            "n1",
            ActivityType::Send,
            "1.1.1.1:9",
            "2.2.2.2:9"
        )));
    }

    #[test]
    fn keep_programs_allowlist() {
        let f = FilterSet::new().keep_programs(["httpd", "java", "mysqld"]);
        assert!(f.admits(&act(
            "java",
            "n1",
            ActivityType::Send,
            "1.1.1.1:1",
            "2.2.2.2:2"
        )));
        assert!(!f.admits(&act(
            "scp",
            "n1",
            ActivityType::Send,
            "1.1.1.1:1",
            "2.2.2.2:2"
        )));
    }

    #[test]
    fn drop_host_rule() {
        let f = FilterSet::new().drop_host("bastion");
        assert!(!f.admits(&act(
            "x",
            "bastion",
            ActivityType::Send,
            "1.1.1.1:1",
            "2.2.2.2:2"
        )));
        assert!(f.admits(&act(
            "x",
            "web",
            ActivityType::Send,
            "1.1.1.1:1",
            "2.2.2.2:2"
        )));
    }

    #[test]
    fn admits_raw_agrees_with_classified_admits() {
        use crate::access::{AccessPointSpec, Classifier};
        use crate::intern::Interner;
        use crate::raw::RawRecordRef;
        let classifier = Classifier::new(AccessPointSpec::new(
            [80],
            ["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap()],
        ));
        let filters = FilterSet::new()
            .drop_program("sshd")
            .drop_peer_port(22)
            .drop_local_port(514)
            .drop_peer_ip("9.9.9.9".parse().unwrap())
            .drop_host("bastion")
            .keep_programs(["httpd", "java", "mysqld", "scp"]);
        let mut interner = Interner::new();
        for line in [
            "1 web httpd 1 1 RECEIVE 192.168.0.9:5000-10.0.0.1:80 10",
            "1 web sshd 9 9 RECEIVE 172.16.9.9:7000-10.0.0.1:22 10",
            "1 web httpd 1 1 SEND 10.0.0.1:80-192.168.0.9:5000 10",
            "1 db mysqld 5 5 SEND 10.0.0.2:3306-9.9.9.9:44 10",
            "1 db mysqld 5 5 RECEIVE 9.9.9.9:44-10.0.0.2:3306 10",
            "1 bastion scp 2 2 SEND 10.0.0.9:514-10.0.0.2:9000 10",
            "1 web httpd 1 1 SEND 10.0.0.1:514-10.0.0.2:9000 10",
            "1 web rsyslogd 1 1 SEND 10.0.0.1:601-10.0.0.2:9000 10",
        ] {
            let r = RawRecordRef::parse_line(line).unwrap();
            let a = classifier.classify_ref(&r, &mut interner);
            assert_eq!(filters.admits_raw(&r), filters.admits(&a), "{line}");
        }
    }

    #[test]
    fn rules_compose() {
        let f = FilterSet::new()
            .drop_program("sshd")
            .keep_programs(["httpd", "sshd"]);
        // Drop rule wins even though sshd is in the allowlist.
        assert!(!f.admits(&act(
            "sshd",
            "n1",
            ActivityType::Send,
            "1.1.1.1:1",
            "2.2.2.2:2"
        )));
        assert!(f.admits(&act(
            "httpd",
            "n1",
            ActivityType::Send,
            "1.1.1.1:1",
            "2.2.2.2:2"
        )));
        assert!(!f.admits(&act(
            "java",
            "n1",
            ActivityType::Send,
            "1.1.1.1:1",
            "2.2.2.2:2"
        )));
    }
}
