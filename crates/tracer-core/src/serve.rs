//! Online serving: an always-on correlation daemon over live sources.
//!
//! [`Server`] tails N record sources — growing files or FIFO pipes,
//! `TCP_TRACE` text or PTBIN, auto-sniffed — concurrently, feeds them
//! through a [`crate::pipeline::Pipeline`] session, and continuously
//! emits sealed CAGs, pattern updates and latency KPIs to a
//! [`ServeSink`]. This is the online-tracing service of the authors'
//! follow-up work, built on the offline correlator's machinery.
//!
//! # Bounded state
//!
//! Nothing in the daemon grows with stream length:
//!
//! * correlation state is bounded by the configured
//!   [`crate::correlator::CorrelatorConfig::memory_budget`] (cold
//!   state pages out to the disk spill tier by default, keeping recall
//!   intact; [`crate::correlator::CorrelatorConfig::shed_on_budget`]
//!   evicts it outright instead) and the ranker's sliding window; the
//!   drain removes every spill artifact the process created;
//! * sharded router state is bounded by the bounded-age settle rule
//!   ([`crate::correlator::CorrelatorConfig::lane_settle_depth`]) and
//!   the channel-idle GC
//!   ([`crate::correlator::CorrelatorConfig::channel_idle_horizon`]),
//!   both on by default;
//! * ingest state is one torn element per source (carry buffer or
//!   [`crate::binfmt::StreamDecoder`] fragment);
//! * the source → correlator queue is a bounded channel with an
//!   explicit [`ShedPolicy`]: block the tailer (lossless) or drop and
//!   count batches under sustained pressure;
//! * KPI state (seal-lag checkpoints and lag samples) lives in fixed
//!   rings.
//!
//! # Fault tolerance
//!
//! Each source is supervised independently: a missing file (`ENOENT`)
//! is retried with exponential backoff; a shrunk file is treated as a
//! source restart (offset rewinds to zero, decode state resets, the
//! restart is counted — rewound timestamps are the correlator's
//! problem and merely deform affected paths); torn tails at a live EOF
//! are carried and retried, never errors; malformed text lines are
//! counted and skipped. A clean stop (the `stop` flag, wired to
//! SIGINT/SIGTERM by the `pt serve` binary) drains what is sealable
//! and reports everything shed or dropped.

use std::io::Read;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender, TrySendError};
use std::time::{Duration, Instant};

use crate::binfmt::{is_ptbin, StreamDecoder};
use crate::cag::Cag;
use crate::correlator::CorrelationOutput;
use crate::error::TraceError;
use crate::ingest::split_complete_lines;
use crate::intern::Interner;
use crate::pattern::PatternAggregator;
use crate::pipeline::{Mode, Pipeline, PipelineConfig};
use crate::raw::{RawRecord, RawRecordRef};

/// How a source's byte stream is decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Sniff the first bytes: PTBIN magic → binary, else text.
    Auto,
    /// `TCP_TRACE` text lines.
    Text,
    /// PTBIN binary segments ([`crate::binfmt`]).
    Ptbin,
}

/// One record source to tail: a growing file or a FIFO pipe.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Path to the file or FIFO.
    pub path: PathBuf,
    /// Decode as text, binary, or sniff ([`SourceKind::Auto`]).
    pub kind: SourceKind,
}

impl SourceSpec {
    /// A source with auto-sniffed format.
    pub fn auto(path: impl Into<PathBuf>) -> Self {
        SourceSpec {
            path: path.into(),
            kind: SourceKind::Auto,
        }
    }
}

/// What to do when the bounded source → correlator queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Block the tailer until the correlator catches up (lossless; the
    /// source file keeps growing meanwhile, so no data is lost either
    /// way — ingest just lags). The default.
    #[default]
    Block,
    /// Drop the newest decoded batch and count its records in
    /// [`SourceReport::shed_records`]. Keeps ingest latency flat under
    /// sustained overload at the price of recall.
    Drop,
}

/// Configuration for [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The correlation pipeline (mode, window, budgets). Batch mode is
    /// rejected — it buffers the whole stream.
    pub pipeline: PipelineConfig,
    /// Sources to tail concurrently.
    pub sources: Vec<SourceSpec>,
    /// Tail poll cadence for quiet regular files.
    pub poll_interval: Duration,
    /// Initial retry backoff for a missing source (doubles up to
    /// [`ServeConfig::max_backoff`]).
    pub retry_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// A regular-file source counts as ended after this much quiet
    /// (no growth); `None` follows forever (until the stop flag).
    /// FIFO sources end at writer hang-up regardless.
    pub idle_end: Option<Duration>,
    /// Queue-full policy (see [`ShedPolicy`]).
    pub shed: ShedPolicy,
    /// Bounded queue depth in decoded batches (across all sources).
    pub queue_batches: usize,
    /// Emit a KPI sample to the sink every this many records
    /// (`0` = only the final report).
    pub kpi_every_records: u64,
    /// Seal-lag checkpoint granularity in records.
    pub checkpoint_every: u64,
}

impl ServeConfig {
    /// Defaults: 20ms poll, 50ms→2s backoff, follow forever, lossless
    /// shed policy, 64-batch queue, KPI every 50k records.
    pub fn new(pipeline: PipelineConfig, sources: Vec<SourceSpec>) -> Self {
        ServeConfig {
            pipeline,
            sources,
            poll_interval: Duration::from_millis(20),
            retry_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            idle_end: None,
            shed: ShedPolicy::Block,
            queue_batches: 64,
            kpi_every_records: 50_000,
            checkpoint_every: 256,
        }
    }
}

/// Per-source ingest counters, as of the final report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceReport {
    /// The source path, as configured.
    pub path: String,
    /// Raw bytes read.
    pub bytes_read: u64,
    /// Records decoded and forwarded.
    pub records: u64,
    /// Malformed text lines counted and skipped.
    pub malformed_lines: u64,
    /// Torn-tail events carried across a read boundary and retried.
    pub torn_retries: u64,
    /// Source restarts (file shrank or was replaced; offset rewound).
    pub restarts: u64,
    /// Open retries while the source was missing (`ENOENT` backoff).
    pub open_retries: u64,
    /// Decoded records dropped by the [`ShedPolicy::Drop`] policy.
    pub shed_records: u64,
    /// A torn element still pending at the source's final EOF
    /// (truncated tail: mid-cell in binary, mid-line in text).
    pub truncated_eof: u64,
    /// Fatal decode errors (malformed PTBIN framing); the source stops
    /// at the first one.
    pub decode_errors: u64,
}

#[derive(Debug, Default)]
struct SourceCounters {
    bytes_read: AtomicU64,
    records: AtomicU64,
    malformed_lines: AtomicU64,
    torn_retries: AtomicU64,
    restarts: AtomicU64,
    open_retries: AtomicU64,
    shed_records: AtomicU64,
    truncated_eof: AtomicU64,
    decode_errors: AtomicU64,
}

impl SourceCounters {
    fn report(&self, path: &std::path::Path) -> SourceReport {
        SourceReport {
            path: path.display().to_string(),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            malformed_lines: self.malformed_lines.load(Ordering::Relaxed),
            torn_retries: self.torn_retries.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            open_retries: self.open_retries.load(Ordering::Relaxed),
            shed_records: self.shed_records.load(Ordering::Relaxed),
            truncated_eof: self.truncated_eof.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// A periodic KPI sample pushed to the sink.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeKpi {
    /// Records pushed into the correlator so far.
    pub records_in: u64,
    /// CAGs sealed and emitted so far (excludes the final drain).
    pub cags_sealed: u64,
    /// Distinct causal-path patterns observed so far.
    pub patterns: usize,
    /// p99 seal lag over the recent window, in pushed records between
    /// a CAG's newest-vertex checkpoint and its emission (streaming
    /// mode; `0` when nothing sealed yet).
    pub p99_seal_lag: u64,
    /// Approximate resident bytes of the correlation state.
    pub state_bytes: usize,
    /// Resident set size of the process, if the platform exposes it.
    pub rss_bytes: Option<u64>,
    /// Records shed so far by the queue-full policy, across sources.
    pub shed_records: u64,
    /// Objects (CAGs, orphan chains, dedup coverage) paged out by the
    /// spill tier so far (streaming mode; sharded workers report only
    /// in the final drain).
    pub spilled: u64,
    /// Spilled objects faulted back from disk so far.
    pub spill_faults: u64,
}

/// Receives the daemon's continuous output. All methods default to
/// no-ops, so `&mut ()` is a valid sink.
pub trait ServeSink {
    /// Called with each batch of newly sealed CAGs, in emission order.
    fn on_sealed(&mut self, _cags: &[Cag]) {}
    /// Called every [`ServeConfig::kpi_every_records`] records.
    fn on_kpi(&mut self, _kpi: &ServeKpi) {}
}

impl ServeSink for () {}

/// The final report of a serve run.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-source ingest counters.
    pub sources: Vec<SourceReport>,
    /// Records pushed into the correlator.
    pub records_in: u64,
    /// CAGs sealed and emitted while live (before the final drain).
    pub cags_sealed: u64,
    /// The final drain's output: remaining CAGs, metrics, noise
    /// samples. `output.metrics` carries every correlator-side shed
    /// counter (budget evictions, aged settles, noise discards …).
    pub output: CorrelationOutput,
    /// Distinct causal-path patterns across live and drained CAGs.
    pub patterns: usize,
    /// p99 seal lag over the recent window, in pushed records.
    pub p99_seal_lag: u64,
    /// Peak approximate correlation-state bytes observed.
    pub peak_state_bytes: usize,
    /// Peak resident set size observed, if the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

impl ServeReport {
    /// Total records shed by the queue-full policy.
    pub fn shed_records(&self) -> u64 {
        self.sources.iter().map(|s| s.shed_records).sum()
    }

    /// Total CAGs emitted (live + final drain).
    pub fn total_cags(&self) -> u64 {
        self.cags_sealed + self.output.cags.len() as u64
    }

    /// The machine-parseable final stats line: every shed/dropped
    /// count a consumer needs to judge the run, one `key=value` pair
    /// per field.
    pub fn stats_line(&self) -> String {
        let s = |f: fn(&SourceReport) -> u64| self.sources.iter().map(f).sum::<u64>();
        let m = &self.output.metrics;
        format!(
            "serve: records={} sealed={} drained={} patterns={} shed={} malformed={} \
             torn={} truncated={} restarts={} open_retries={} decode_errors={} \
             budget_evicted={} spilled={} spill_faults={} aged_settles={} noise={} \
             p99_seal_lag={} peak_state={}B peak_rss={}B wall={:.3}s",
            self.records_in,
            self.cags_sealed,
            self.output.cags.len(),
            self.patterns,
            self.shed_records(),
            s(|r| r.malformed_lines),
            s(|r| r.torn_retries),
            s(|r| r.truncated_eof),
            s(|r| r.restarts),
            s(|r| r.open_retries),
            s(|r| r.decode_errors),
            m.engine.budget_evicted_cags,
            m.engine.spilled_cags + m.engine.spilled_orphans + m.spilled_dedup_entries,
            m.engine.spill_faults + m.spill_dedup_faults,
            m.ranker.aged_settles,
            m.ranker.noise_discards,
            self.p99_seal_lag,
            self.peak_state_bytes,
            self.peak_rss_bytes.unwrap_or(0),
            self.wall.as_secs_f64(),
        )
    }
}

/// Resident set size from `/proc/self/status` (linux; `None`
/// elsewhere or on any read/parse failure).
pub fn current_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Capacity of the seal-lag checkpoint ring.
const CHECKPOINT_CAP: usize = 4096;
/// Capacity of the seal-lag sample ring (the "recent window").
const LAG_WINDOW: usize = 8192;
/// Read chunk size for tailers.
const READ_CHUNK: usize = 64 * 1024;

/// Seal-lag tracker: checkpoints `(pushed records, max record ts)` at
/// a fixed cadence; a CAG whose newest vertex has timestamp `T`,
/// emitted after `P` records were pushed, has lag `P - P'` where `P'`
/// is the earliest checkpoint that had already seen `T`. Both rings
/// are fixed-size, so the tracker's memory is constant.
#[derive(Debug)]
struct SealLag {
    every: u64,
    checkpoints: std::collections::VecDeque<(u64, u64)>,
    lags: Vec<u64>,
    next: usize,
    max_ts: u64,
    since: u64,
}

impl SealLag {
    fn new(every: u64) -> Self {
        SealLag {
            every: every.max(1),
            checkpoints: std::collections::VecDeque::new(),
            lags: Vec::new(),
            next: 0,
            max_ts: 0,
            since: 0,
        }
    }

    fn on_push(&mut self, pushed: u64, ts: u64) {
        self.max_ts = self.max_ts.max(ts);
        self.since += 1;
        if self.since >= self.every {
            self.since = 0;
            if self.checkpoints.len() == CHECKPOINT_CAP {
                self.checkpoints.pop_front();
            }
            self.checkpoints.push_back((pushed, self.max_ts));
        }
    }

    fn on_sealed(&mut self, pushed: u64, cag: &Cag) {
        let newest = cag
            .vertices
            .iter()
            .map(|v| v.ts_last.as_nanos())
            .max()
            .unwrap_or(0);
        // Checkpoints are monotone in both fields: binary-search the
        // earliest one that had seen the CAG's newest timestamp.
        let i = self.checkpoints.partition_point(|&(_, ts)| ts < newest);
        let at = self
            .checkpoints
            .get(i)
            .map(|&(p, _)| p)
            .unwrap_or(pushed.saturating_sub(self.since));
        let lag = pushed.saturating_sub(at);
        if self.lags.len() < LAG_WINDOW {
            self.lags.push(lag);
        } else {
            self.lags[self.next] = lag;
            self.next = (self.next + 1) % LAG_WINDOW;
        }
    }

    fn p99(&self) -> u64 {
        if self.lags.is_empty() {
            return 0;
        }
        let mut sorted = self.lags.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) * 99 / 100]
    }
}

enum Event {
    Batch(usize, Vec<RawRecord>),
    Ended,
    Fatal(usize, String),
}

/// The long-running tracing daemon. Construct with [`Server::new`],
/// then [`Server::run`] until the sources end or the stop flag rises.
#[derive(Debug)]
pub struct Server {
    config: ServeConfig,
}

impl Server {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Config`] when no source is configured,
    /// the pipeline mode is batch (it buffers the whole stream), or
    /// the pipeline configuration itself is invalid.
    pub fn new(config: ServeConfig) -> Result<Self, TraceError> {
        if config.sources.is_empty() {
            return Err(TraceError::config("serve: no sources configured"));
        }
        if config.pipeline.mode == Mode::Batch {
            return Err(TraceError::config(
                "serve: batch mode buffers the whole stream; use streaming or sharded",
            ));
        }
        // Surface config errors now, not at run time.
        Pipeline::new(config.pipeline.clone())?;
        Ok(Server { config })
    }

    /// Runs the daemon: tails every source until all of them end (see
    /// [`ServeConfig::idle_end`]) or `stop` becomes true, then drains
    /// the correlator and reports.
    ///
    /// Sealed CAGs stream to the sink continuously in streaming mode;
    /// a sharded session correlates online but emits its CAGs in the
    /// final drain (the merge is global), so its sink only sees KPIs
    /// until the end.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Config`] when the correlator fails
    /// mid-run (e.g. a shard worker died).
    pub fn run(
        &self,
        sink: &mut dyn ServeSink,
        stop: &AtomicBool,
    ) -> Result<ServeReport, TraceError> {
        let started = Instant::now();
        let mut session = Pipeline::new(self.config.pipeline.clone())?.session()?;
        let counters: Vec<SourceCounters> = self
            .config
            .sources
            .iter()
            .map(|_| SourceCounters::default())
            .collect();

        let mut live = LiveState {
            sink,
            patterns: PatternAggregator::new(),
            lag: SealLag::new(self.config.checkpoint_every),
            records_in: 0,
            cags_sealed: 0,
            peak_state: 0,
            peak_rss: current_rss_bytes(),
            next_kpi: self.config.kpi_every_records,
        };

        let result: Result<(), TraceError> = std::thread::scope(|scope| {
            let (tx, rx) = sync_channel::<Event>(self.config.queue_batches.max(1));
            for (idx, spec) in self.config.sources.iter().enumerate() {
                let tx = tx.clone();
                let counters = &counters[idx];
                let cfg = &self.config;
                scope.spawn(move || tail_source(idx, spec, cfg, counters, tx, stop));
            }
            drop(tx);
            let mut ended = 0usize;
            let mut first_error: Option<TraceError> = None;
            loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                match rx.recv_timeout(self.config.poll_interval) {
                    Ok(Event::Batch(idx, records)) => {
                        if let Err(e) =
                            live.ingest(&mut session, &counters, idx, records, &self.config)
                        {
                            first_error = Some(e);
                            break;
                        }
                    }
                    Ok(Event::Ended) => {
                        ended += 1;
                        if ended == self.config.sources.len() {
                            break;
                        }
                    }
                    Ok(Event::Fatal(idx, msg)) => {
                        // The source stops; the daemon keeps serving
                        // the others. The error is counted per-source.
                        let _ = (idx, msg);
                        ended += 1;
                        if ended == self.config.sources.len() {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            // Drain whatever the tailers already queued, then hang up
            // (unblocks tailers waiting on a full queue).
            while let Ok(ev) = rx.try_recv() {
                if let Event::Batch(idx, records) = ev {
                    if first_error.is_none() {
                        if let Err(e) =
                            live.ingest(&mut session, &counters, idx, records, &self.config)
                        {
                            first_error = Some(e);
                        }
                    }
                }
            }
            drop(rx);
            match first_error {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });
        result?;

        let mut output = session.finish()?;
        // Release the spill tier (dropping the session runs every
        // `SpillFile` destructor, which unlinks its file), then sweep
        // the spill dir for any artifact this process still left
        // behind — e.g. a sharded worker torn down without running
        // destructors. A drain must not leak temp files.
        drop(session);
        let cc = &self.config.pipeline.correlator;
        if cc.memory_budget.is_some() && !cc.shed_on_budget {
            let dir = cc.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
            crate::spill::sweep_process_spill_files(&dir);
        }
        output.canonicalize();
        live.patterns.add_all(output.cags.iter());
        let report = ServeReport {
            sources: self
                .config
                .sources
                .iter()
                .zip(&counters)
                .map(|(s, c)| c.report(&s.path))
                .collect(),
            records_in: live.records_in,
            cags_sealed: live.cags_sealed,
            patterns: live.patterns.len(),
            p99_seal_lag: live.lag.p99(),
            peak_state_bytes: live.peak_state,
            peak_rss_bytes: live.peak_rss.max(current_rss_bytes()),
            wall: started.elapsed(),
            output,
        };
        Ok(report)
    }
}

/// Main-loop mutable state, factored out so `run` can borrow the
/// session and the counters separately.
struct LiveState<'a> {
    sink: &'a mut dyn ServeSink,
    patterns: PatternAggregator,
    lag: SealLag,
    records_in: u64,
    cags_sealed: u64,
    peak_state: usize,
    peak_rss: Option<u64>,
    next_kpi: u64,
}

impl LiveState<'_> {
    fn ingest(
        &mut self,
        session: &mut crate::pipeline::PipelineSession,
        counters: &[SourceCounters],
        idx: usize,
        records: Vec<RawRecord>,
        cfg: &ServeConfig,
    ) -> Result<(), TraceError> {
        let _ = idx;
        for rec in records {
            self.records_in += 1;
            let ts = rec.ts.as_nanos();
            session.push(rec)?;
            self.lag.on_push(self.records_in, ts);
        }
        let sealed = session.poll()?;
        if !sealed.is_empty() {
            self.cags_sealed += sealed.len() as u64;
            for cag in &sealed {
                self.lag.on_sealed(self.records_in, cag);
                self.patterns.add(cag);
            }
            self.sink.on_sealed(&sealed);
        }
        self.peak_state = self.peak_state.max(session.approx_bytes());
        if cfg.kpi_every_records > 0 && self.records_in >= self.next_kpi {
            self.next_kpi += cfg.kpi_every_records;
            let rss = current_rss_bytes();
            self.peak_rss = self.peak_rss.max(rss);
            let (spilled, spill_faults) = session.spill_counters();
            let kpi = ServeKpi {
                records_in: self.records_in,
                cags_sealed: self.cags_sealed,
                patterns: self.patterns.len(),
                p99_seal_lag: self.lag.p99(),
                state_bytes: session.approx_bytes(),
                rss_bytes: rss,
                shed_records: counters
                    .iter()
                    .map(|c| c.shed_records.load(Ordering::Relaxed))
                    .sum(),
                spilled,
                spill_faults,
            };
            self.sink.on_kpi(&kpi);
        }
        Ok(())
    }
}

/// Per-source decode state: the format (once sniffed) plus the torn
/// element carried across read boundaries.
enum Decode {
    Sniffing(Vec<u8>),
    Text { carry: Vec<u8>, interner: Interner },
    Bin(StreamDecoder),
}

impl Decode {
    fn for_kind(kind: SourceKind) -> Decode {
        match kind {
            SourceKind::Auto => Decode::Sniffing(Vec::new()),
            SourceKind::Text => Decode::Text {
                carry: Vec::new(),
                interner: Interner::new(),
            },
            SourceKind::Ptbin => Decode::Bin(StreamDecoder::new()),
        }
    }

    /// Feeds raw bytes, returning decoded records. `final_input`
    /// additionally settles the carry (a text log's unterminated final
    /// line is a complete record; a pending binary fragment is a
    /// truncated tail).
    fn feed(
        &mut self,
        bytes: &[u8],
        final_input: bool,
        c: &SourceCounters,
    ) -> Result<Vec<RawRecord>, String> {
        match self {
            Decode::Sniffing(buf) => {
                buf.extend_from_slice(bytes);
                if buf.len() < crate::binfmt::MAGIC.len() && !final_input {
                    return Ok(Vec::new());
                }
                let sniffed = std::mem::take(buf);
                *self = if is_ptbin(&sniffed) {
                    Decode::Bin(StreamDecoder::new())
                } else {
                    Decode::Text {
                        carry: Vec::new(),
                        interner: Interner::new(),
                    }
                };
                self.feed(&sniffed, final_input, c)
            }
            Decode::Text { carry, interner } => {
                carry.extend_from_slice(bytes);
                let (done, torn) = split_complete_lines(carry);
                let (done, torn) = if final_input {
                    // The writer is gone: the unterminated final line
                    // is the complete final record (or torn garbage —
                    // parse decides, and a failure counts below).
                    (&carry[..], &carry[..0])
                } else {
                    (done, torn)
                };
                let mut out = Vec::new();
                match std::str::from_utf8(done) {
                    Ok(text) => {
                        for line in text.lines() {
                            let line = line.trim();
                            if line.is_empty() || line.starts_with('#') {
                                continue;
                            }
                            match RawRecordRef::parse_line(line) {
                                Ok(r) => out.push(r.to_owned_interned(interner)),
                                Err(_) => {
                                    c.malformed_lines.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    Err(_) => {
                        // Treat an undecodable chunk as one bad line.
                        c.malformed_lines.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if !torn.is_empty() {
                    c.torn_retries.fetch_add(1, Ordering::Relaxed);
                }
                let rest = torn.to_vec();
                *carry = rest;
                c.records.fetch_add(out.len() as u64, Ordering::Relaxed);
                Ok(out)
            }
            Decode::Bin(dec) => {
                dec.push(bytes);
                let had_pending = dec.pending_bytes() > 0;
                let out = dec.drain().map_err(|e| e.to_string())?;
                if dec.pending_bytes() > 0 && had_pending {
                    c.torn_retries.fetch_add(1, Ordering::Relaxed);
                }
                if final_input && !dec.is_clean() {
                    c.truncated_eof.fetch_add(1, Ordering::Relaxed);
                }
                c.records.fetch_add(out.len() as u64, Ordering::Relaxed);
                Ok(out)
            }
        }
    }
}

/// Sends one decoded batch subject to the shed policy.
fn send_batch(
    idx: usize,
    batch: Vec<RawRecord>,
    tx: &SyncSender<Event>,
    shed: ShedPolicy,
    c: &SourceCounters,
) -> bool {
    if batch.is_empty() {
        return true;
    }
    match shed {
        ShedPolicy::Block => tx.send(Event::Batch(idx, batch)).is_ok(),
        ShedPolicy::Drop => match tx.try_send(Event::Batch(idx, batch)) {
            Ok(()) => true,
            Err(TrySendError::Full(Event::Batch(_, b))) => {
                c.shed_records.fetch_add(b.len() as u64, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_)) => true,
            Err(TrySendError::Disconnected(_)) => false,
        },
    }
}

/// The per-source tailer: supervises open/reopen with backoff, detects
/// restarts (shrunk files), carries torn tails, decodes, and ships
/// batches. Exits when the source ends, a fatal decode error occurs,
/// the stop flag rises, or the consumer hangs up.
fn tail_source(
    idx: usize,
    spec: &SourceSpec,
    cfg: &ServeConfig,
    c: &SourceCounters,
    tx: SyncSender<Event>,
    stop: &AtomicBool,
) {
    let mut backoff = cfg.retry_backoff;
    let mut decode = Decode::for_kind(spec.kind);
    let mut file: Option<std::fs::File> = None;
    let mut offset: u64 = 0;
    let mut is_fifo = false;
    let mut quiet = Instant::now();
    let mut buf = vec![0u8; READ_CHUNK];
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Some(f) = file.as_mut() else {
            match std::fs::File::open(&spec.path) {
                Ok(f) => {
                    #[cfg(unix)]
                    {
                        use std::os::unix::fs::FileTypeExt;
                        is_fifo = f
                            .metadata()
                            .map(|m| m.file_type().is_fifo())
                            .unwrap_or(false);
                    }
                    file = Some(f);
                    backoff = cfg.retry_backoff;
                    quiet = Instant::now();
                }
                Err(_) => {
                    c.open_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(cfg.max_backoff);
                }
            }
            continue;
        };
        // Restart detection (regular files): the path shrank below our
        // offset or was replaced — rewind and re-sniff.
        if !is_fifo {
            match std::fs::metadata(&spec.path) {
                Ok(m) if m.len() < offset => {
                    c.restarts.fetch_add(1, Ordering::Relaxed);
                    file = None;
                    offset = 0;
                    decode = Decode::for_kind(spec.kind);
                    continue;
                }
                Ok(_) => {}
                Err(_) => {
                    // Deleted mid-run: fall back to the open/backoff
                    // path; a reappearing file is a restart.
                    c.restarts.fetch_add(1, Ordering::Relaxed);
                    file = None;
                    offset = 0;
                    decode = Decode::for_kind(spec.kind);
                    continue;
                }
            }
        }
        match f.read(&mut buf) {
            Ok(0) => {
                if is_fifo {
                    // Writer hung up: a FIFO's EOF is final.
                    finish_source(idx, &mut decode, c, &tx, cfg.shed);
                    return;
                }
                if cfg.idle_end.is_some_and(|d| quiet.elapsed() >= d) {
                    finish_source(idx, &mut decode, c, &tx, cfg.shed);
                    return;
                }
                std::thread::sleep(cfg.poll_interval);
            }
            Ok(n) => {
                offset += n as u64;
                quiet = Instant::now();
                c.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                match decode.feed(&buf[..n], false, c) {
                    Ok(batch) => {
                        if !send_batch(idx, batch, &tx, cfg.shed, c) {
                            return; // consumer hung up
                        }
                    }
                    Err(_) => {
                        c.decode_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Event::Fatal(idx, "malformed PTBIN stream".into()));
                        return;
                    }
                }
            }
            Err(_) => {
                // Transient read error: retry through the open path.
                c.open_retries.fetch_add(1, Ordering::Relaxed);
                file = None;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(cfg.max_backoff);
            }
        }
    }
    // Stopped: settle the carry so a complete unterminated final line
    // still counts, then report.
    finish_source(idx, &mut decode, c, &tx, cfg.shed);
}

/// Settles a source's carried state at its end and sends the final
/// batch + `Ended`.
fn finish_source(
    idx: usize,
    decode: &mut Decode,
    c: &SourceCounters,
    tx: &SyncSender<Event>,
    shed: ShedPolicy,
) {
    match decode.feed(&[], true, c) {
        Ok(batch) => {
            send_batch(idx, batch, tx, shed, c);
        }
        Err(_) => {
            c.decode_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    let _ = tx.send(Event::Ended);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPointSpec;
    use std::io::Write;
    use std::sync::atomic::AtomicBool;

    fn access() -> AccessPointSpec {
        AccessPointSpec::new(
            [80],
            [
                "10.0.0.1".parse().unwrap(),
                "10.0.0.2".parse().unwrap(),
                "10.0.0.3".parse().unwrap(),
            ],
        )
    }

    fn session_log() -> String {
        let mut log = String::new();
        for (i, base) in (0..20u64).map(|i| (i, i * 10_000)) {
            let client = format!("192.168.0.9:{}", 5000 + i);
            let port = 4001 + i;
            for line in [
                format!(
                    "{} web httpd 7 {} RECEIVE {client}-10.0.0.1:80 120",
                    1000 + base,
                    7 + i
                ),
                format!(
                    "{} web httpd 7 {} SEND 10.0.0.1:{port}-10.0.0.2:8009 64",
                    2000 + base,
                    7 + i
                ),
                format!(
                    "{} app java 9 {} RECEIVE 10.0.0.1:{port}-10.0.0.2:8009 64",
                    2500 + base,
                    21 + i
                ),
                format!(
                    "{} app java 9 {} SEND 10.0.0.2:8009-10.0.0.1:{port} 256",
                    3000 + base,
                    21 + i
                ),
                format!(
                    "{} web httpd 7 {} RECEIVE 10.0.0.2:8009-10.0.0.1:{port} 256",
                    4500 + base,
                    7 + i
                ),
                format!(
                    "{} web httpd 7 {} SEND 10.0.0.1:80-{client} 512",
                    5000 + base,
                    7 + i
                ),
            ] {
                log.push_str(&line);
                log.push('\n');
            }
        }
        log
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pt-serve-test-{}-{name}", std::process::id()))
    }

    struct Collect {
        sealed: usize,
        kpis: usize,
    }
    impl ServeSink for Collect {
        fn on_sealed(&mut self, cags: &[Cag]) {
            self.sealed += cags.len();
        }
        fn on_kpi(&mut self, _k: &ServeKpi) {
            self.kpis += 1;
        }
    }

    fn quick_config(sources: Vec<SourceSpec>) -> ServeConfig {
        let pipeline = PipelineConfig::new(access()).with_mode(Mode::Streaming);
        let mut cfg = ServeConfig::new(pipeline, sources);
        cfg.poll_interval = Duration::from_millis(2);
        // Wide idle margin: writer threads pause ~10ms between chunks,
        // but on a loaded single-core machine a thread can be starved
        // for well over 100ms — the margin must absorb that or the
        // server declares the source ended mid-write.
        cfg.idle_end = Some(Duration::from_millis(400));
        cfg.kpi_every_records = 16;
        cfg
    }

    #[test]
    fn serves_a_growing_text_file_to_the_end() {
        let log = session_log();
        let path = tmp("grow.log");
        let (head, tail) = log.split_at(log.len() / 2);
        std::fs::write(&path, head).unwrap();
        let cfg = quick_config(vec![SourceSpec::auto(&path)]);
        let server = Server::new(cfg).unwrap();
        // Append the rest (cut mid-line) from a writer thread while
        // the server tails.
        let writer = {
            let path = path.clone();
            let tail = tail.to_owned();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .unwrap();
                let cut = tail.len() / 3;
                f.write_all(&tail.as_bytes()[..cut]).unwrap();
                f.sync_all().unwrap();
                std::thread::sleep(Duration::from_millis(10));
                f.write_all(&tail.as_bytes()[cut..]).unwrap();
            })
        };
        let stop = AtomicBool::new(false);
        let mut sink = Collect { sealed: 0, kpis: 0 };
        let report = server.run(&mut sink, &stop).unwrap();
        writer.join().unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.records_in, 120, "{}", report.stats_line());
        assert_eq!(report.total_cags(), 20, "{}", report.stats_line());
        assert_eq!(report.shed_records(), 0);
        assert!(sink.kpis > 0);
        assert!(report.stats_line().starts_with("serve: records=120"));
    }

    #[test]
    fn serves_two_sources_binary_and_text() {
        let log = session_log();
        // Split by host: web lines to a PTBIN source, app lines text.
        let web: String =
            log.lines()
                .filter(|l| l.contains(" web "))
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                });
        let app: String =
            log.lines()
                .filter(|l| l.contains(" app "))
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                });
        let bin = crate::binfmt::encode_text(&web, 1).unwrap();
        let p_bin = tmp("web.ptbin");
        let p_txt = tmp("app.log");
        std::fs::write(&p_bin, &bin).unwrap();
        std::fs::write(&p_txt, &app).unwrap();
        let cfg = quick_config(vec![SourceSpec::auto(&p_bin), SourceSpec::auto(&p_txt)]);
        let server = Server::new(cfg).unwrap();
        let stop = AtomicBool::new(false);
        let report = server.run(&mut (), &stop).unwrap();
        std::fs::remove_file(&p_bin).ok();
        std::fs::remove_file(&p_txt).ok();
        assert_eq!(report.records_in, 120, "{}", report.stats_line());
        assert_eq!(report.total_cags(), 20, "{}", report.stats_line());
        assert_eq!(report.sources[0].records, 80);
        assert_eq!(report.sources[1].records, 40);
    }

    #[test]
    fn missing_source_is_retried_and_restart_is_detected() {
        let log = session_log();
        let path = tmp("late.log");
        std::fs::remove_file(&path).ok();
        let mut cfg = quick_config(vec![SourceSpec::auto(&path)]);
        cfg.retry_backoff = Duration::from_millis(2);
        let server = Server::new(cfg).unwrap();
        let writer = {
            let path = path.clone();
            let log = log.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                // Appears late, then restarts (shrinks) mid-run: the
                // replacement is strictly shorter than what was read,
                // so the rewind is detected at the next poll.
                std::fs::write(&path, &log).unwrap();
                std::thread::sleep(Duration::from_millis(40));
                std::fs::write(&path, &log[log.len() / 2..]).unwrap();
            })
        };
        let stop = AtomicBool::new(false);
        let report = Server::run(&server, &mut (), &stop).unwrap();
        writer.join().unwrap();
        std::fs::remove_file(&path).ok();
        let s = &report.sources[0];
        assert!(s.open_retries > 0, "{}", report.stats_line());
        assert!(s.restarts >= 1, "{}", report.stats_line());
        // The restart replays the first half: dedup/noise handling may
        // deform, but every original record was read at least once.
        assert!(report.records_in >= 120, "{}", report.stats_line());
    }

    #[test]
    fn stop_flag_drains_cleanly() {
        let log = session_log();
        let path = tmp("stop.log");
        std::fs::write(&path, &log).unwrap();
        let mut cfg = quick_config(vec![SourceSpec::auto(&path)]);
        cfg.idle_end = None; // follow forever; only the flag ends it
        let server = Server::new(cfg).unwrap();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stopper = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(80));
                stop.store(true, Ordering::Relaxed);
            })
        };
        let report = server.run(&mut (), &stop).unwrap();
        stopper.join().unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.records_in, 120, "{}", report.stats_line());
        assert_eq!(report.total_cags(), 20, "{}", report.stats_line());
    }

    #[test]
    fn rejects_batch_mode_and_empty_sources() {
        let p = PipelineConfig::new(access());
        assert!(Server::new(ServeConfig::new(p.clone(), vec![])).is_err());
        let cfg = ServeConfig::new(
            p.with_mode(Mode::Batch),
            vec![SourceSpec::auto("/dev/null")],
        );
        assert!(Server::new(cfg).is_err());
    }

    #[test]
    fn sharded_mode_emits_at_drain() {
        let log = session_log();
        let path = tmp("sharded.log");
        std::fs::write(&path, &log).unwrap();
        let mut cfg = quick_config(vec![SourceSpec::auto(&path)]);
        cfg.pipeline = PipelineConfig::new(access()).with_mode(Mode::Sharded(2));
        let server = Server::new(cfg).unwrap();
        let stop = AtomicBool::new(false);
        let report = server.run(&mut (), &stop).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.cags_sealed, 0, "sharded seals at the final drain");
        assert_eq!(report.total_cags(), 20, "{}", report.stats_line());
    }
}
