//! Core activity model (§2, §3.1 of the paper).
//!
//! An *activity* is one interaction event observed in the kernel: sending
//! or receiving a message, or — after the §3.1 transformation — the BEGIN
//! or END of servicing a request. Each activity carries four attributes:
//! activity type, (local) timestamp, context identifier and message
//! identifier.

use std::fmt;
use std::net::Ipv4Addr;
use std::ops::{Add, AddAssign, Sub};
use std::sync::Arc;

/// A timestamp on some node's **local** clock, in nanoseconds.
///
/// Local timestamps from different nodes are *not* comparable in real
/// time (clock skew); the tracing algorithm never relies on cross-node
/// comparisons for correctness. They are totally ordered anyway because
/// the ranker needs deterministic tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LocalTime(pub u64);

impl LocalTime {
    /// The zero timestamp.
    pub const ZERO: LocalTime = LocalTime(0);

    /// Constructs a timestamp from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        LocalTime(ns)
    }

    /// Nanoseconds since the node's epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the node's epoch, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    ///
    /// Saturating because cross-node skew can make a causally-later
    /// timestamp numerically smaller; the analysis layer treats such
    /// intervals as zero rather than panicking.
    #[inline]
    pub fn saturating_since(self, earlier: LocalTime) -> Nanos {
        Nanos(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference `self - earlier` in nanoseconds.
    #[inline]
    pub fn signed_since(self, earlier: LocalTime) -> i64 {
        self.0 as i64 - earlier.0 as i64
    }
}

impl Add<Nanos> for LocalTime {
    type Output = LocalTime;
    #[inline]
    fn add(self, rhs: Nanos) -> LocalTime {
        LocalTime(self.0 + rhs.0)
    }
}

impl fmt::Display for LocalTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A duration in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Constructs a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Constructs a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Constructs a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Nanoseconds as a raw integer.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in milliseconds (rounded down).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration in seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// The type of an activity (§3.1).
///
/// The discriminant order encodes the ranker's Rule 2 priority:
/// `BEGIN < SEND < END < RECEIVE` (lower pops first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ActivityType {
    /// Start of servicing a new request (a RECEIVE on an access point).
    Begin = 0,
    /// Sending a message through the kernel TCP stack.
    Send = 1,
    /// End of servicing a request (a SEND on an access point).
    End = 2,
    /// Receiving a message through the kernel TCP stack.
    Receive = 3,
}

impl ActivityType {
    /// Rule 2 priority; the head activity with the **lowest** priority
    /// value is chosen as candidate.
    #[inline]
    pub const fn priority(self) -> u8 {
        self as u8
    }

    /// True for `Send` and `End` (both are kernel-level sends).
    #[inline]
    pub const fn is_send_like(self) -> bool {
        matches!(self, ActivityType::Send | ActivityType::End)
    }

    /// True for `Receive` and `Begin` (both are kernel-level receives).
    #[inline]
    pub const fn is_receive_like(self) -> bool {
        matches!(self, ActivityType::Receive | ActivityType::Begin)
    }
}

impl fmt::Display for ActivityType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActivityType::Begin => "BEGIN",
            ActivityType::Send => "SEND",
            ActivityType::End => "END",
            ActivityType::Receive => "RECEIVE",
        };
        f.write_str(s)
    }
}

/// One side of a TCP connection: an IPv4 address and a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointV4 {
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// TCP port.
    pub port: u16,
}

impl EndpointV4 {
    /// Constructs an endpoint.
    pub const fn new(ip: Ipv4Addr, port: u16) -> Self {
        EndpointV4 { ip, port }
    }
}

impl fmt::Display for EndpointV4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

impl std::str::FromStr for EndpointV4 {
    type Err = crate::error::TraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, port) = s
            .rsplit_once(':')
            .ok_or_else(|| crate::error::TraceError::parse(s, "endpoint missing ':'"))?;
        let ip = ip
            .parse::<Ipv4Addr>()
            .map_err(|_| crate::error::TraceError::parse(s, "bad IPv4 address"))?;
        let port = port
            .parse::<u16>()
            .map_err(|_| crate::error::TraceError::parse(s, "bad port"))?;
        Ok(EndpointV4 { ip, port })
    }
}

/// A **directed** communication channel: the `(sender ip:port, receiver
/// ip:port)` part of the paper's message identifier tuple.
///
/// The message-relation index map (`mmap`) is keyed by this value; TCP
/// guarantees FIFO byte delivery per direction, which is what makes
/// size-based n-to-n SEND/RECEIVE matching sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// Sender endpoint.
    pub src: EndpointV4,
    /// Receiver endpoint.
    pub dst: EndpointV4,
}

impl Channel {
    /// Constructs a directed channel.
    pub const fn new(src: EndpointV4, dst: EndpointV4) -> Self {
        Channel { src, dst }
    }

    /// The same connection in the opposite direction.
    #[inline]
    pub const fn reversed(self) -> Channel {
        Channel {
            src: self.dst,
            dst: self.src,
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.src, self.dst)
    }
}

/// Context identifier: the `(hostname, program name, process ID, thread
/// ID)` tuple describing which execution entity performed an activity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContextId {
    /// Node hostname.
    pub hostname: Arc<str>,
    /// Program (executable) name, e.g. `httpd`, `java`, `mysqld`.
    pub program: Arc<str>,
    /// Process ID.
    pub pid: u32,
    /// Kernel thread ID.
    pub tid: u32,
}

impl ContextId {
    /// Constructs a context identifier.
    pub fn new(
        hostname: impl Into<Arc<str>>,
        program: impl Into<Arc<str>>,
        pid: u32,
        tid: u32,
    ) -> Self {
        ContextId {
            hostname: hostname.into(),
            program: program.into(),
            pid,
            tid,
        }
    }
}

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}[{}:{}]",
            self.hostname, self.program, self.pid, self.tid
        )
    }
}

/// A single transformed activity: the unit the ranker and engine operate
/// on (§3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Activity {
    /// Activity type (after the §3.1 BEGIN/END transformation).
    pub ty: ActivityType,
    /// Local timestamp of the node that logged the activity.
    pub ts: LocalTime,
    /// Execution-entity context.
    pub ctx: ContextId,
    /// Directed channel of the underlying kernel send/receive.
    pub channel: Channel,
    /// Message size in bytes for this kernel call.
    pub size: u64,
    /// Opaque ground-truth tag (0 = untagged). **Never consulted by the
    /// tracing algorithm**; carried through so that evaluation harnesses
    /// can check path accuracy against instrumented ground truth, exactly
    /// like the paper's modified-RUBiS request IDs (§5.2).
    pub tag: u64,
    /// `TCP_TRACE v2` stream byte offset of this activity's first
    /// payload byte on its directed channel (`None` for v1 records).
    /// Consulted only by the sharded session router, whose per-channel
    /// byte claims become range-based when both sides carry offsets —
    /// robust to records lost by a partial-capture sniffer.
    pub seq: Option<u64>,
}

impl Activity {
    /// The endpoint on the logging node's side of the channel.
    #[inline]
    pub fn local_endpoint(&self) -> EndpointV4 {
        if self.ty.is_send_like() {
            self.channel.src
        } else {
            self.channel.dst
        }
    }

    /// The remote peer's endpoint.
    #[inline]
    pub fn peer_endpoint(&self) -> EndpointV4 {
        if self.ty.is_send_like() {
            self.channel.dst
        } else {
            self.channel.src
        }
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.ts, self.ctx, self.ty, self.channel, self.size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(s: &str) -> EndpointV4 {
        s.parse().unwrap()
    }

    #[test]
    fn priority_order_matches_paper_rule2() {
        // BEGIN < SEND < END < RECEIVE (§4.1 Rule 2).
        assert!(ActivityType::Begin.priority() < ActivityType::Send.priority());
        assert!(ActivityType::Send.priority() < ActivityType::End.priority());
        assert!(ActivityType::End.priority() < ActivityType::Receive.priority());
    }

    #[test]
    fn send_like_receive_like_partition() {
        for ty in [
            ActivityType::Begin,
            ActivityType::Send,
            ActivityType::End,
            ActivityType::Receive,
        ] {
            assert!(ty.is_send_like() != ty.is_receive_like(), "{ty:?}");
        }
    }

    #[test]
    fn endpoint_parse_roundtrip() {
        let e = ep("10.1.2.3:8080");
        assert_eq!(e.ip, Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(e.port, 8080);
        assert_eq!(e.to_string().parse::<EndpointV4>().unwrap(), e);
    }

    #[test]
    fn endpoint_parse_rejects_garbage() {
        assert!("10.0.0.1".parse::<EndpointV4>().is_err());
        assert!("10.0.0:80".parse::<EndpointV4>().is_err());
        assert!("10.0.0.1:notaport".parse::<EndpointV4>().is_err());
        assert!("10.0.0.1:99999".parse::<EndpointV4>().is_err());
    }

    #[test]
    fn channel_reversed_is_involution() {
        let c = Channel::new(ep("1.1.1.1:10"), ep("2.2.2.2:20"));
        assert_eq!(c.reversed().reversed(), c);
        assert_eq!(c.reversed().src, c.dst);
    }

    #[test]
    fn local_time_arithmetic() {
        let t = LocalTime::from_nanos(1_500);
        assert_eq!(t + Nanos::from_micros(1), LocalTime::from_nanos(2_500));
        assert_eq!(
            t.saturating_since(LocalTime::from_nanos(2_000)),
            Nanos::ZERO
        );
        assert_eq!(t.saturating_since(LocalTime::from_nanos(500)), Nanos(1_000));
        assert_eq!(t.signed_since(LocalTime::from_nanos(2_000)), -500);
    }

    #[test]
    fn nanos_display_units() {
        assert_eq!(Nanos(5).to_string(), "5ns");
        assert_eq!(Nanos::from_micros(2).to_string(), "2.000us");
        assert_eq!(Nanos::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Nanos::from_secs(4).to_string(), "4.000s");
    }

    #[test]
    fn local_and_peer_endpoints() {
        let ch = Channel::new(ep("10.0.0.1:4001"), ep("10.0.0.2:9000"));
        let ctx = ContextId::new("web", "httpd", 1, 1);
        let send = Activity {
            ty: ActivityType::Send,
            ts: LocalTime::ZERO,
            ctx: ctx.clone(),
            channel: ch,
            size: 1,
            tag: 0,
            seq: None,
        };
        assert_eq!(send.local_endpoint(), ch.src);
        assert_eq!(send.peer_endpoint(), ch.dst);
        let recv = Activity {
            ty: ActivityType::Receive,
            ..send.clone()
        };
        assert_eq!(recv.local_endpoint(), ch.dst);
        assert_eq!(recv.peer_endpoint(), ch.src);
    }
}
