//! A fast, **deterministic** hasher for the correlation hot paths.
//!
//! The Ranker and Engine index maps (`mmap`, `cmap`, the send indexes)
//! are hit on every candidate — the stuck-resolution scan alone performs
//! dozens of lookups per noise record. `std`'s default SipHash is
//! DoS-resistant but costs several times more per 16-byte key than
//! needed here, and its per-process random seed makes map iteration
//! order nondeterministic (the correlator never iterates these maps for
//! output, but determinism is still a nice property for debugging).
//!
//! This is the Fx multiply-xor construction (as used by rustc): not
//! collision-resistant against adversaries, which is acceptable because
//! keys are channels/contexts from a trace under analysis, not untrusted
//! network input with an attacker targeting the analyst's hash table.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` state plugging [`FxHasher`] in.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast deterministic hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-xor hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add(u64::from_le_bytes(bytes[..8].try_into().expect("8")));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add(u64::from(u32::from_le_bytes(
                bytes[..4].try_into().expect("4"),
            )));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let c: crate::activity::Channel = crate::activity::Channel::new(
            "10.0.0.1:80".parse().unwrap(),
            "10.0.0.2:9000".parse().unwrap(),
        );
        assert_eq!(hash_of(&c), hash_of(&c));
    }

    #[test]
    fn distinguishes_close_keys() {
        let a: crate::activity::EndpointV4 = "10.0.0.1:80".parse().unwrap();
        let b: crate::activity::EndpointV4 = "10.0.0.1:81".parse().unwrap();
        assert_ne!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn map_works_as_drop_in() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1_000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&500), Some(&1_000));
        assert_eq!(m.len(), 1_000);
    }
}
