//! Spill-to-disk tier for the correlator's memory budget.
//!
//! Under a memory budget the correlator used to *shed* its stalest
//! state — counted, deterministic, but a recall loss: every shed CAG is
//! a request the trace simply forgets. This module provides the
//! buffer-pool-shaped alternative: cold state (unfinished CAGs, orphan
//! chains, `RangeDedup` coverage) is serialized into fixed-size pages
//! of a temp spill file and faulted back on touch, so pressure costs
//! latency instead of accuracy.
//!
//! Design (borrowed from classic buffer-pool managers):
//!
//! * **Page store** — the spill file is an array of [`PAGE_SIZE`]-byte
//!   pages. An object occupies one contiguous *extent* of pages
//!   ([`PageExtent`]); a free-list of extents (coalescing on free)
//!   recycles space, so a long-running `pt serve` reuses pages instead
//!   of growing the file without bound.
//! * **Write-behind** — `put` enqueues the write to a dedicated I/O
//!   thread and returns immediately; the object is held in an in-flight
//!   table until the write completes, and `get` serves from that table
//!   when the disk has not caught up (counted as a queue hit). Spilling
//!   therefore never blocks the correlation hot path on disk latency —
//!   only *faults* pay it.
//! * **Victim selection** — which object to spill is the caller's
//!   policy; the engine uses LRU-K (K = 2) access history over
//!   unfinished CAGs with objects touched since the last sampling
//!   boundary treated as pinned (see `engine::SpillState`).
//!
//! The file is created in the configured spill directory with a
//! `pt-spill-` prefix and removed on drop; `pt serve` additionally
//! sweeps the prefix during drain so a kill between SIGTERM and drop
//! cannot leak artifacts.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};

use crate::fasthash::FxHashMap;

/// Spill page size in bytes. Small enough that a typical unfinished CAG
/// (a dozen vertices) wastes little slack, large enough that extents
/// stay short.
pub const PAGE_SIZE: u64 = 1024;

/// Filename prefix of every spill file; `pt serve`'s drain sweep removes
/// leftovers matching it.
pub const SPILL_FILE_PREFIX: &str = "pt-spill-";

/// One allocated extent: `pages` contiguous pages starting at page
/// index `page`, holding an object of `len` serialized bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageExtent {
    /// First page index.
    pub page: u64,
    /// Number of contiguous pages.
    pub pages: u32,
    /// Serialized object length in bytes (≤ `pages * PAGE_SIZE`).
    pub len: u32,
}

/// Snapshot of a spill file's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillFileStats {
    /// Objects written out (spills).
    pub objects_out: u64,
    /// Objects read back (faults).
    pub objects_in: u64,
    /// Pages written by the I/O thread.
    pub pages_written: u64,
    /// Pages read from disk on faults.
    pub pages_read: u64,
    /// Faults served from the write-behind queue before the disk
    /// caught up (no read I/O needed).
    pub queue_hits: u64,
    /// Serialized bytes spilled out.
    pub bytes_out: u64,
    /// Serialized bytes faulted back.
    pub bytes_in: u64,
}

enum IoMsg {
    Write { offset: u64, data: Arc<[u8]> },
    Shutdown,
}

/// Extent allocator: free extents keyed by start page, coalesced on
/// free, first-fit allocation, high-water growth.
#[derive(Debug, Default)]
struct ExtentAlloc {
    free: BTreeMap<u64, u64>,
    next_page: u64,
}

impl ExtentAlloc {
    fn alloc(&mut self, pages: u64) -> u64 {
        // First fit in page order keeps allocation deterministic.
        let fit = self
            .free
            .iter()
            .find(|(_, &n)| n >= pages)
            .map(|(&start, &n)| (start, n));
        if let Some((start, n)) = fit {
            self.free.remove(&start);
            if n > pages {
                self.free.insert(start + pages, n - pages);
            }
            return start;
        }
        let start = self.next_page;
        self.next_page += pages;
        start
    }

    fn free(&mut self, start: u64, pages: u64) {
        let mut start = start;
        let mut pages = pages;
        // Coalesce with the predecessor…
        if let Some((&p_start, &p_n)) = self.free.range(..start).next_back() {
            if p_start + p_n == start {
                self.free.remove(&p_start);
                start = p_start;
                pages += p_n;
            }
        }
        // …and the successor.
        if let Some(&n_n) = self.free.get(&(start + pages)) {
            self.free.remove(&(start + pages));
            pages += n_n;
        }
        // Trailing free space shrinks the high-water mark instead.
        if start + pages == self.next_page {
            self.next_page = start;
        } else {
            self.free.insert(start, pages);
        }
    }
}

/// A temp-file page store with a write-behind I/O thread. See the
/// module docs for the design; create one per correlator instance (the
/// sharded pipeline gives each worker its own — one spill namespace per
/// shard).
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    /// Reader handle (the I/O thread owns its own clone).
    reader: Mutex<File>,
    tx: Mutex<Option<SyncSender<IoMsg>>>,
    io: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Writes enqueued but not yet on disk, keyed by byte offset.
    inflight: Mutex<FxHashMap<u64, Arc<[u8]>>>,
    alloc: Mutex<ExtentAlloc>,
    objects_out: AtomicU64,
    objects_in: AtomicU64,
    pages_written: Arc<AtomicU64>,
    pages_read: AtomicU64,
    queue_hits: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
}

/// Process-wide counter making spill filenames unique across
/// correlator instances (one file per sharded worker).
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillFile {
    /// Creates a spill file in `dir` and starts the write-behind I/O
    /// thread. The file is removed when the last reference drops.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory is missing
    /// or not writable.
    pub fn create(dir: &Path) -> std::io::Result<SpillFile> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!(
            "{SPILL_FILE_PREFIX}{}-{}.bin",
            std::process::id(),
            seq
        ));
        let file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)?;
        let mut writer = file.try_clone()?;
        let (tx, rx): (SyncSender<IoMsg>, Receiver<IoMsg>) = std::sync::mpsc::sync_channel(256);
        let pages_written = Arc::new(AtomicU64::new(0));
        let sf = SpillFile {
            path,
            reader: Mutex::new(file),
            tx: Mutex::new(Some(tx)),
            io: Mutex::new(None),
            inflight: Mutex::new(FxHashMap::default()),
            alloc: Mutex::new(ExtentAlloc::default()),
            objects_out: AtomicU64::new(0),
            objects_in: AtomicU64::new(0),
            pages_written: Arc::clone(&pages_written),
            pages_read: AtomicU64::new(0),
            queue_hits: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
        };
        let handle = std::thread::Builder::new()
            .name("pt-spill-io".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        IoMsg::Write { offset, data } => {
                            // Write fully before the in-flight entry is
                            // released by `put`'s completion contract:
                            // a fault either sees the in-flight bytes or
                            // finds them on disk, never a torn page.
                            if writer.seek(SeekFrom::Start(offset)).is_ok() {
                                let _ = writer.write_all(&data);
                            }
                            pages_written.fetch_add(
                                data.len().div_ceil(PAGE_SIZE as usize) as u64,
                                Ordering::Relaxed,
                            );
                        }
                        IoMsg::Shutdown => break,
                    }
                }
            })
            .expect("spawn spill I/O thread");
        *sf.io.lock().unwrap() = Some(handle);
        Ok(sf)
    }

    /// The spill file's path (diagnostics and the serve drain sweep).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Spills one serialized object, returning its extent. The write
    /// happens behind the caller's back on the I/O thread; until it
    /// lands, faults are served from the in-flight table.
    pub fn put(&self, bytes: Vec<u8>) -> PageExtent {
        let len = bytes.len() as u32;
        let pages = (bytes.len() as u64).div_ceil(PAGE_SIZE).max(1);
        let page = self.alloc.lock().unwrap().alloc(pages);
        let offset = page * PAGE_SIZE;
        let data: Arc<[u8]> = bytes.into();
        self.inflight
            .lock()
            .unwrap()
            .insert(offset, Arc::clone(&data));
        self.objects_out.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(len as u64, Ordering::Relaxed);
        // Enqueue; on a full queue this blocks until the I/O thread
        // drains (bounded write-behind, not unbounded buffering).
        if let Some(tx) = self.tx.lock().unwrap().as_ref() {
            let _ = tx.send(IoMsg::Write { offset, data });
        }
        PageExtent {
            page,
            pages: pages as u32,
            len,
        }
    }

    /// Faults one object back, consuming its extent (the pages return
    /// to the free list).
    pub fn get(&self, extent: PageExtent) -> Vec<u8> {
        let offset = extent.page * PAGE_SIZE;
        self.objects_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in
            .fetch_add(extent.len as u64, Ordering::Relaxed);
        // In-flight first: the disk may not have caught up. The entry
        // stays in the table until explicitly trimmed — removal here
        // would race the I/O thread's pending write.
        let hit = self.inflight.lock().unwrap().get(&offset).cloned();
        let out = if let Some(data) = hit {
            self.queue_hits.fetch_add(1, Ordering::Relaxed);
            data[..extent.len as usize].to_vec()
        } else {
            let mut buf = vec![0u8; extent.len as usize];
            let mut f = self.reader.lock().unwrap();
            f.seek(SeekFrom::Start(offset)).expect("seek spill file");
            f.read_exact(&mut buf).expect("read spill extent");
            self.pages_read
                .fetch_add(extent.pages as u64, Ordering::Relaxed);
            buf
        };
        self.free(extent);
        out
    }

    /// Returns an extent's pages to the free list without reading it
    /// (the object was dropped, e.g. an evicted spilled CAG).
    pub fn free(&self, extent: PageExtent) {
        let offset = extent.page * PAGE_SIZE;
        self.inflight.lock().unwrap().remove(&offset);
        self.alloc
            .lock()
            .unwrap()
            .free(extent.page, extent.pages as u64);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SpillFileStats {
        SpillFileStats {
            objects_out: self.objects_out.load(Ordering::Relaxed),
            objects_in: self.objects_in.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            pages_read: self.pages_read.load(Ordering::Relaxed),
            queue_hits: self.queue_hits.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
        }
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.lock().unwrap().take() {
            let _ = tx.send(IoMsg::Shutdown);
        }
        if let Some(h) = self.io.lock().unwrap().take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Removes every spill file this process created in `dir`
/// ([`SPILL_FILE_PREFIX`] + our pid). [`SpillFile`]'s `Drop` already
/// unlinks its own file; this sweep is the drain-path backstop for
/// files whose owner was torn down without running destructors. Files
/// of other processes (live or crashed) are left alone. Returns the
/// number of files removed.
pub fn sweep_process_spill_files(dir: &Path) -> usize {
    let mine = format!("{SPILL_FILE_PREFIX}{}-", std::process::id());
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        if entry.file_name().to_string_lossy().starts_with(&mine)
            && std::fs::remove_file(entry.path()).is_ok()
        {
            removed += 1;
        }
    }
    removed
}

/// Serializes a CAG into a compact spill object (little-endian, string
/// contexts length-prefixed and re-interned on decode).
pub(crate) fn encode_cag(cag: &crate::cag::Cag, buf: &mut Vec<u8>) {
    use codec::*;
    put_u64(buf, cag.id);
    put_u8(buf, cag.finished as u8);
    put_u32(buf, cag.vertices.len() as u32);
    for v in &cag.vertices {
        put_u8(buf, activity_type_code(v.ty));
        put_u64(buf, v.ts.0);
        put_u64(buf, v.ts_last.0);
        put_str(buf, &v.ctx.hostname);
        put_str(buf, &v.ctx.program);
        put_u32(buf, v.ctx.pid);
        put_u32(buf, v.ctx.tid);
        put_channel(buf, v.channel);
        put_u64(buf, v.size);
        put_u32(buf, v.tags.len() as u32);
        for &t in &v.tags {
            put_u64(buf, t);
        }
        put_u64(buf, v.ctx_parent.map_or(u64::MAX, |p| p as u64));
        put_u64(buf, v.msg_parent.map_or(u64::MAX, |p| p as u64));
    }
}

/// Decodes a CAG spill object produced by [`encode_cag`].
pub(crate) fn decode_cag(bytes: &[u8]) -> crate::cag::Cag {
    let mut d = codec::Dec::new(bytes);
    let cag = decode_cag_from(&mut d);
    debug_assert!(d.is_empty(), "trailing bytes in CAG spill object");
    cag
}

/// Cursor-based counterpart of [`decode_cag`]: the encoding is
/// self-delimiting, so several CAGs can be concatenated in one buffer
/// (the distributed wire protocol's Output frames do exactly that).
pub(crate) fn decode_cag_from(d: &mut codec::Dec<'_>) -> crate::cag::Cag {
    let id = d.u64();
    let finished = d.u8() != 0;
    let n = d.u32() as usize;
    let mut vertices = Vec::with_capacity(n);
    for _ in 0..n {
        let ty = activity_type_from_code(d.u8());
        let ts = crate::activity::LocalTime(d.u64());
        let ts_last = crate::activity::LocalTime(d.u64());
        let hostname = d.str().to_owned();
        let program = d.str().to_owned();
        let pid = d.u32();
        let tid = d.u32();
        let channel = codec::get_channel(d);
        let size = d.u64();
        let n_tags = d.u32() as usize;
        let mut tags = Vec::with_capacity(n_tags);
        for _ in 0..n_tags {
            tags.push(d.u64());
        }
        let ctx_parent = decode_parent(d.u64());
        let msg_parent = decode_parent(d.u64());
        vertices.push(crate::cag::Vertex {
            ty,
            ts,
            ts_last,
            ctx: crate::activity::ContextId::new(hostname, program, pid, tid),
            channel,
            size,
            tags,
            ctx_parent,
            msg_parent,
        });
    }
    crate::cag::Cag {
        id,
        vertices,
        finished,
    }
}

fn decode_parent(v: u64) -> Option<usize> {
    (v != u64::MAX).then_some(v as usize)
}

pub(crate) fn activity_type_code(ty: crate::activity::ActivityType) -> u8 {
    use crate::activity::ActivityType::*;
    match ty {
        Begin => 0,
        Send => 1,
        End => 2,
        Receive => 3,
    }
}

pub(crate) fn activity_type_from_code(code: u8) -> crate::activity::ActivityType {
    use crate::activity::ActivityType::*;
    match code {
        0 => Begin,
        1 => Send,
        2 => End,
        _ => Receive,
    }
}

/// Little-endian byte-cursor helpers for spill object serialization.
pub(crate) mod codec {
    use crate::activity::{Channel, EndpointV4};

    pub fn put_channel(buf: &mut Vec<u8>, ch: Channel) {
        put_u32(buf, u32::from(ch.src.ip));
        put_u32(buf, ch.src.port as u32);
        put_u32(buf, u32::from(ch.dst.ip));
        put_u32(buf, ch.dst.port as u32);
    }

    pub fn get_channel(d: &mut Dec<'_>) -> Channel {
        let src_ip = std::net::Ipv4Addr::from(d.u32());
        let src_port = d.u32() as u16;
        let dst_ip = std::net::Ipv4Addr::from(d.u32());
        let dst_port = d.u32() as u16;
        Channel::new(
            EndpointV4 {
                ip: src_ip,
                port: src_port,
            },
            EndpointV4 {
                ip: dst_ip,
                port: dst_port,
            },
        )
    }
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
        buf.push(v);
    }

    pub fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_u32(buf, s.len() as u32);
        buf.extend_from_slice(s.as_bytes());
    }

    /// A consuming read cursor over a spill object.
    pub struct Dec<'a> {
        buf: &'a [u8],
    }

    impl<'a> Dec<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            Dec { buf }
        }

        pub fn u64(&mut self) -> u64 {
            let (head, rest) = self.buf.split_at(8);
            self.buf = rest;
            u64::from_le_bytes(head.try_into().expect("8 bytes"))
        }

        pub fn u32(&mut self) -> u32 {
            let (head, rest) = self.buf.split_at(4);
            self.buf = rest;
            u32::from_le_bytes(head.try_into().expect("4 bytes"))
        }

        pub fn u8(&mut self) -> u8 {
            let (head, rest) = self.buf.split_at(1);
            self.buf = rest;
            head[0]
        }

        pub fn str(&mut self) -> &'a str {
            let len = self.u32() as usize;
            let (head, rest) = self.buf.split_at(len);
            self.buf = rest;
            std::str::from_utf8(head).expect("utf8 spill string")
        }

        pub fn is_empty(&self) -> bool {
            self.buf.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_small_and_multi_page() {
        let sf = SpillFile::create(&std::env::temp_dir()).unwrap();
        let small = vec![7u8; 100];
        let large: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let e1 = sf.put(small.clone());
        let e2 = sf.put(large.clone());
        assert_eq!(e1.pages, 1);
        assert_eq!(e2.pages, 5);
        assert_eq!(sf.get(e2), large);
        assert_eq!(sf.get(e1), small);
        let st = sf.stats();
        assert_eq!(st.objects_out, 2);
        assert_eq!(st.objects_in, 2);
        assert_eq!(st.bytes_out, 5100);
        assert_eq!(st.bytes_in, 5100);
    }

    #[test]
    fn freed_extents_are_reused_and_coalesced() {
        let sf = SpillFile::create(&std::env::temp_dir()).unwrap();
        let a = sf.put(vec![1; 1000]); // page 0
        let b = sf.put(vec![2; 3000]); // pages 1-3
        let c = sf.put(vec![3; 1000]); // page 4
        assert_eq!((a.page, b.page, c.page), (0, 1, 4));
        sf.free(a);
        sf.free(b);
        // Pages 0-3 coalesce; a 4-page object must slot into them.
        let d = sf.put(vec![4; 4000]);
        assert_eq!(d.page, 0);
        assert_eq!(sf.get(d), vec![4; 4000]);
        assert_eq!(sf.get(c), vec![3; 1000]);
    }

    #[test]
    fn reads_before_writeback_are_served_from_the_queue() {
        // put() then immediate get() must return the bytes even if the
        // I/O thread has not written them yet; the queue-hit counter
        // proves at least the accounting path exists (the race itself
        // cannot be forced deterministically).
        let sf = SpillFile::create(&std::env::temp_dir()).unwrap();
        for i in 0..64u8 {
            let e = sf.put(vec![i; 2000]);
            assert_eq!(sf.get(e), vec![i; 2000]);
        }
    }

    #[test]
    fn file_is_removed_on_drop() {
        let sf = SpillFile::create(&std::env::temp_dir()).unwrap();
        let path = sf.path().to_path_buf();
        assert!(path.exists());
        drop(sf);
        assert!(!path.exists());
    }

    #[test]
    fn create_in_missing_dir_errors() {
        assert!(SpillFile::create(Path::new("/nonexistent-spill-dir-pt")).is_err());
    }

    #[test]
    fn alloc_first_fit_and_hwm_shrink() {
        let mut a = ExtentAlloc::default();
        assert_eq!(a.alloc(2), 0);
        assert_eq!(a.alloc(1), 2);
        a.free(0, 2);
        // 1-page object fits into the 2-page hole (first fit).
        assert_eq!(a.alloc(1), 0);
        // Freeing the tail coalesces with the free page 1 and shrinks
        // the high-water mark past both.
        a.free(2, 1);
        assert_eq!(a.next_page, 1);
        a.free(0, 1);
        assert_eq!(a.next_page, 0);
    }
}
