//! Topology-generality tests: the paper claims PreciseTracer covers the
//! concurrent-server design patterns of Stevens' UNIX Network
//! Programming — not just three-tier pipelines. These tests correlate
//! hand-built logs for deeper chains, fan-out (one tier querying two
//! backends in parallel), and iterative single-tier servers.

use std::fmt::Write as _;

use tracer_core::prelude::*;

/// A small builder for synthetic TCP_TRACE logs.
#[derive(Default)]
struct Log {
    text: String,
    uid: u64,
    tags: Vec<u64>,
}

impl Log {
    #[allow(clippy::too_many_arguments)]
    fn rec(
        &mut self,
        ts: u64,
        host: &str,
        prog: &str,
        tid: u32,
        op: &str,
        src: &str,
        dst: &str,
        size: u64,
    ) -> u64 {
        self.uid += 1;
        self.tags.push(self.uid);
        writeln!(
            self.text,
            "{ts} {host} {prog} {tid} {tid} {op} {src}-{dst} {size}"
        )
        .expect("write to string");
        self.uid
    }

    fn records(&self) -> Vec<RawRecord> {
        let mut recs = parse_log(&self.text).expect("valid log");
        for (r, &tag) in recs.iter_mut().zip(&self.tags) {
            r.tag = tag;
        }
        recs
    }
}

fn correlate(log: &Log, internal: &[&str]) -> CorrelationOutput {
    let access = AccessPointSpec::new(
        [80],
        internal
            .iter()
            .map(|s| s.parse().unwrap())
            .collect::<Vec<_>>(),
    );
    Pipeline::new(PipelineConfig::new(access))
        .expect("valid config")
        .run(Source::records(log.records()))
        .expect("valid config")
}

#[test]
fn five_tier_chain_traces_exactly() {
    // client → t1:80 → t2 → t3 → t4 → t5 and all the way back.
    let mut log = Log::default();
    let hosts = ["t1", "t2", "t3", "t4", "t5"];
    let ips = ["10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4", "10.0.0.5"];
    let mut t = 1_000u64;
    log.rec(
        t,
        "t1",
        "p1",
        7,
        "RECEIVE",
        "192.168.0.9:5000",
        "10.0.0.1:80",
        200,
    );
    // Forward path.
    for i in 0..4 {
        t += 1_000;
        let src = format!("{}:40{i}", ips[i]);
        let dst = format!("{}:9000", ips[i + 1]);
        log.rec(
            t,
            hosts[i],
            &format!("p{}", i + 1),
            7,
            "SEND",
            &src,
            &dst,
            100 + i as u64,
        );
        t += 500;
        log.rec(
            t,
            hosts[i + 1],
            &format!("p{}", i + 2),
            7,
            "RECEIVE",
            &src,
            &dst,
            100 + i as u64,
        );
    }
    // Return path.
    for i in (0..4).rev() {
        t += 1_000;
        let src = format!("{}:9000", ips[i + 1]);
        let dst = format!("{}:40{i}", ips[i]);
        log.rec(
            t,
            hosts[i + 1],
            &format!("p{}", i + 2),
            7,
            "SEND",
            &src,
            &dst,
            300 + i as u64,
        );
        t += 500;
        log.rec(
            t,
            hosts[i],
            &format!("p{}", i + 1),
            7,
            "RECEIVE",
            &src,
            &dst,
            300 + i as u64,
        );
    }
    t += 1_000;
    log.rec(
        t,
        "t1",
        "p1",
        7,
        "SEND",
        "10.0.0.1:80",
        "192.168.0.9:5000",
        999,
    );
    let out = correlate(&log, &ips);
    assert_eq!(out.cags.len(), 1);
    let cag = &out.cags[0];
    cag.validate().expect("valid");
    assert_eq!(cag.sorted_tags(), log.tags);
    assert_eq!(cag.vertices.len(), 18);
    // Components of all five tiers appear.
    let comps = cag.component_latencies();
    assert!(comps.keys().any(|c| c.to_string() == "p12p2"));
    assert!(comps.keys().any(|c| c.to_string() == "p42p5"));
}

#[test]
fn fan_out_to_two_backends_builds_branching_cag() {
    // The app tier sends two queries to two *different* databases before
    // reading either answer (parallel fan-out), then joins.
    let mut log = Log::default();
    log.rec(
        1_000,
        "web",
        "httpd",
        7,
        "RECEIVE",
        "192.168.0.9:5000",
        "10.0.0.1:80",
        200,
    );
    log.rec(
        2_000,
        "web",
        "httpd",
        7,
        "SEND",
        "10.0.0.1:401",
        "10.0.0.2:9000",
        100,
    );
    log.rec(
        2_500,
        "app",
        "java",
        9,
        "RECEIVE",
        "10.0.0.1:401",
        "10.0.0.2:9000",
        100,
    );
    // Fan-out: two sends back-to-back on different channels.
    log.rec(
        3_000,
        "app",
        "java",
        9,
        "SEND",
        "10.0.0.2:500",
        "10.0.0.3:3306",
        50,
    );
    log.rec(
        3_100,
        "app",
        "java",
        9,
        "SEND",
        "10.0.0.2:501",
        "10.0.0.4:3306",
        60,
    );
    log.rec(
        3_500,
        "dbA",
        "mysqld",
        11,
        "RECEIVE",
        "10.0.0.2:500",
        "10.0.0.3:3306",
        50,
    );
    log.rec(
        3_600,
        "dbB",
        "mysqld",
        12,
        "RECEIVE",
        "10.0.0.2:501",
        "10.0.0.4:3306",
        60,
    );
    log.rec(
        4_000,
        "dbA",
        "mysqld",
        11,
        "SEND",
        "10.0.0.3:3306",
        "10.0.0.2:500",
        500,
    );
    log.rec(
        4_100,
        "dbB",
        "mysqld",
        12,
        "SEND",
        "10.0.0.4:3306",
        "10.0.0.2:501",
        600,
    );
    // Join: answers read in reverse order.
    log.rec(
        4_700,
        "app",
        "java",
        9,
        "RECEIVE",
        "10.0.0.4:3306",
        "10.0.0.2:501",
        600,
    );
    log.rec(
        4_800,
        "app",
        "java",
        9,
        "RECEIVE",
        "10.0.0.3:3306",
        "10.0.0.2:500",
        500,
    );
    log.rec(
        5_000,
        "app",
        "java",
        9,
        "SEND",
        "10.0.0.2:9000",
        "10.0.0.1:401",
        900,
    );
    log.rec(
        5_400,
        "web",
        "httpd",
        7,
        "RECEIVE",
        "10.0.0.2:9000",
        "10.0.0.1:401",
        900,
    );
    log.rec(
        6_000,
        "web",
        "httpd",
        7,
        "SEND",
        "10.0.0.1:80",
        "192.168.0.9:5000",
        999,
    );
    let out = correlate(&log, &["10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4"]);
    assert_eq!(out.cags.len(), 1, "{}", out.metrics.summary());
    let cag = &out.cags[0];
    cag.validate().expect("valid");
    assert_eq!(cag.sorted_tags(), log.tags);
    // Both database tiers contribute message edges.
    let comps: Vec<String> = cag
        .component_latencies()
        .keys()
        .map(|c| c.to_string())
        .collect();
    assert!(comps.contains(&"java2mysqld".to_string()), "{comps:?}");
    assert!(comps.contains(&"mysqld2java".to_string()), "{comps:?}");
}

#[test]
fn iterative_single_tier_server() {
    // Stevens' iteration model: one process serves requests back to
    // back on different connections, no backend.
    let mut log = Log::default();
    let mut expected = Vec::new();
    for i in 0..5u64 {
        let t0 = 1_000 + i * 100_000;
        let client = format!("192.168.0.9:{}", 5000 + i);
        let a = log.rec(
            t0,
            "web",
            "httpd",
            7,
            "RECEIVE",
            &client,
            "10.0.0.1:80",
            120,
        );
        let b = log.rec(
            t0 + 2_000,
            "web",
            "httpd",
            7,
            "SEND",
            "10.0.0.1:80",
            &client,
            512,
        );
        expected.push(vec![a, b]);
    }
    let out = correlate(&log, &["10.0.0.1"]);
    assert_eq!(out.cags.len(), 5);
    let got: Vec<Vec<u64>> = out.cags.iter().map(|c| c.sorted_tags()).collect();
    assert_eq!(got, expected);
}

#[test]
fn pattern_separates_fanout_from_chain() {
    // The branching CAG and a linear 2-query CAG must land in different
    // isomorphism classes even with identical vertex counts.
    use tracer_core::pattern::canonical_signature;
    let mut fan = Log::default();
    fan.rec(
        1_000,
        "web",
        "httpd",
        7,
        "RECEIVE",
        "192.168.0.9:5000",
        "10.0.0.1:80",
        200,
    );
    fan.rec(
        3_000,
        "web",
        "httpd",
        7,
        "SEND",
        "10.0.0.1:500",
        "10.0.0.3:3306",
        50,
    );
    fan.rec(
        3_100,
        "web",
        "httpd",
        7,
        "SEND",
        "10.0.0.1:501",
        "10.0.0.3:3307",
        60,
    );
    fan.rec(
        3_500,
        "db",
        "mysqld",
        11,
        "RECEIVE",
        "10.0.0.1:500",
        "10.0.0.3:3306",
        50,
    );
    fan.rec(
        3_600,
        "db",
        "mysqld",
        12,
        "RECEIVE",
        "10.0.0.1:501",
        "10.0.0.3:3307",
        60,
    );
    fan.rec(
        4_000,
        "db",
        "mysqld",
        11,
        "SEND",
        "10.0.0.3:3306",
        "10.0.0.1:500",
        500,
    );
    fan.rec(
        4_100,
        "db",
        "mysqld",
        12,
        "SEND",
        "10.0.0.3:3307",
        "10.0.0.1:501",
        600,
    );
    fan.rec(
        4_700,
        "web",
        "httpd",
        7,
        "RECEIVE",
        "10.0.0.3:3306",
        "10.0.0.1:500",
        500,
    );
    fan.rec(
        4_800,
        "web",
        "httpd",
        7,
        "RECEIVE",
        "10.0.0.3:3307",
        "10.0.0.1:501",
        600,
    );
    fan.rec(
        6_000,
        "web",
        "httpd",
        7,
        "SEND",
        "10.0.0.1:80",
        "192.168.0.9:5000",
        999,
    );

    let mut chain = Log::default();
    chain.rec(
        1_000,
        "web",
        "httpd",
        7,
        "RECEIVE",
        "192.168.0.9:5000",
        "10.0.0.1:80",
        200,
    );
    chain.rec(
        3_000,
        "web",
        "httpd",
        7,
        "SEND",
        "10.0.0.1:500",
        "10.0.0.3:3306",
        50,
    );
    chain.rec(
        3_500,
        "db",
        "mysqld",
        11,
        "RECEIVE",
        "10.0.0.1:500",
        "10.0.0.3:3306",
        50,
    );
    chain.rec(
        4_000,
        "db",
        "mysqld",
        11,
        "SEND",
        "10.0.0.3:3306",
        "10.0.0.1:500",
        500,
    );
    chain.rec(
        4_200,
        "web",
        "httpd",
        7,
        "RECEIVE",
        "10.0.0.3:3306",
        "10.0.0.1:500",
        500,
    );
    chain.rec(
        4_300,
        "web",
        "httpd",
        7,
        "SEND",
        "10.0.0.1:501",
        "10.0.0.3:3307",
        60,
    );
    chain.rec(
        4_600,
        "db",
        "mysqld",
        12,
        "RECEIVE",
        "10.0.0.1:501",
        "10.0.0.3:3307",
        60,
    );
    chain.rec(
        5_000,
        "db",
        "mysqld",
        12,
        "SEND",
        "10.0.0.3:3307",
        "10.0.0.1:501",
        600,
    );
    chain.rec(
        5_300,
        "web",
        "httpd",
        7,
        "RECEIVE",
        "10.0.0.3:3307",
        "10.0.0.1:501",
        600,
    );
    chain.rec(
        6_000,
        "web",
        "httpd",
        7,
        "SEND",
        "10.0.0.1:80",
        "192.168.0.9:5000",
        999,
    );

    let internal = &["10.0.0.1", "10.0.0.3"];
    let a = correlate(&fan, internal);
    let b = correlate(&chain, internal);
    assert_eq!(a.cags.len(), 1);
    assert_eq!(b.cags.len(), 1);
    let (ka, _, _) = canonical_signature(&a.cags[0]);
    let (kb, _, _) = canonical_signature(&b.cags[0]);
    assert_eq!(a.cags[0].vertices.len(), b.cags[0].vertices.len());
    assert_ne!(ka, kb, "fan-out and chain must be different patterns");
}
