//! Property tests of the correlation algorithm on synthetic activity
//! streams (independent of the RUBiS simulator): random request
//! populations with random message chunking, clock skews, interleavings
//! and window sizes must always correlate exactly.

use std::sync::Arc;

use proptest::prelude::*;
use tracer_core::prelude::*;
use tracer_core::ranker::RankerOptions;

/// A synthetic three-tier deployment: client → web:80 → app:9000 →
/// db:3306, one node per tier, with per-node clock offsets.
#[derive(Debug, Clone)]
struct Synth {
    /// Per-request start times (true time, ns).
    starts: Vec<u64>,
    /// Per-request backend query count (0 = static request).
    queries: Vec<u8>,
    /// Chunk pattern selector per request.
    chunks: Vec<u8>,
    /// Clock offsets for web/app/db in ns.
    offsets: [i64; 3],
    window_ms: u64,
}

fn synth_strategy() -> impl Strategy<Value = Synth> {
    (
        prop::collection::vec(0u64..2_000_000_000, 1..20),
        prop::collection::vec(0u8..4, 20),
        prop::collection::vec(0u8..8, 20),
        [-300_000_000i64..300_000_000, -300_000_000i64..300_000_000],
        1u64..1_000,
    )
        .prop_map(|(starts, queries, chunks, [o1, o2], window_ms)| Synth {
            starts,
            queries,
            chunks,
            offsets: [0, o1, o2],
            window_ms,
        })
}

const HOSTS: [&str; 3] = ["web", "app", "db"];
const PROGS: [&str; 3] = ["httpd", "java", "mysqld"];
const EPOCH: i64 = 10_000_000_000;

struct Gen {
    records: Vec<RawRecord>,
    truth: Vec<Vec<u64>>,
    uid: u64,
}

impl Gen {
    fn local(&self, node: usize, offsets: &[i64; 3], t: u64) -> LocalTime {
        LocalTime::from_nanos((t as i64 + EPOCH + offsets[node]).max(0) as u64)
    }

    #[allow(clippy::too_many_arguments)]
    fn rec(
        &mut self,
        req: usize,
        node: usize,
        offsets: &[i64; 3],
        t: u64,
        tid: u32,
        op: tracer_core::raw::RawOp,
        src: EndpointV4,
        dst: EndpointV4,
        size: u64,
    ) {
        let uid = self.uid;
        self.uid += 1;
        self.truth[req].push(uid);
        self.records.push(RawRecord {
            ts: self.local(node, offsets, t),
            hostname: Arc::from(HOSTS[node]),
            program: Arc::from(PROGS[node]),
            pid: 100 + node as u32,
            tid,
            op,
            src,
            dst,
            size,
            tag: uid,
            retrans: false,
            seq: None,
        });
    }

    /// Emits one message as `parts` send chunks and `parts` receive
    /// chunks (sizes re-split on the receive side).
    #[allow(clippy::too_many_arguments)]
    fn message(
        &mut self,
        req: usize,
        offsets: &[i64; 3],
        from: (usize, u32),
        to: (usize, u32),
        src: EndpointV4,
        dst: EndpointV4,
        t_send: u64,
        t_recv: u64,
        size: u64,
        parts: u8,
    ) {
        use tracer_core::raw::RawOp;
        let parts = u64::from(parts % 3) + 1;
        let part = (size / parts).max(1);
        let mut sent = 0;
        let mut i = 0;
        while sent < size {
            let n = part.min(size - sent);
            self.rec(
                req,
                from.0,
                offsets,
                t_send + i * 2_000,
                from.1,
                RawOp::Send,
                src,
                dst,
                n,
            );
            sent += n;
            i += 1;
        }
        // Receiver re-chunks differently: two uneven reads when possible.
        let first = if size > 3 { size / 3 } else { size };
        let mut read = 0;
        let mut j = 0;
        while read < size {
            let n = if j == 0 { first } else { size - read };
            self.rec(
                req,
                to.0,
                offsets,
                t_recv + j * 3_000,
                to.1,
                RawOp::Receive,
                src,
                dst,
                n,
            );
            read += n;
            j += 1;
        }
    }
}

/// Builds the synthetic log; each request uses distinct worker threads
/// and ports, respecting the paper's one-request-per-entity assumption.
fn build(s: &Synth) -> (Vec<RawRecord>, Vec<Vec<u64>>) {
    use tracer_core::raw::RawOp;
    let mut g = Gen {
        records: Vec::new(),
        truth: vec![Vec::new(); s.starts.len()],
        uid: 1,
    };
    let o = &s.offsets;
    let ep = |ip: &str, port: u16| EndpointV4::new(ip.parse().unwrap(), port);
    for (r, &t0) in s.starts.iter().enumerate() {
        let q = s.queries[r % s.queries.len()];
        let parts = s.chunks[r % s.chunks.len()];
        let tid = 1000 + r as u32;
        let client = ep("192.168.0.9", 20_000 + r as u16);
        let web_front = ep("10.0.0.1", 80);
        let web_out = ep("10.0.0.1", 30_000 + r as u16);
        let app_in = ep("10.0.0.2", 9_000);
        let app_out = ep("10.0.0.2", 31_000 + r as u16);
        let db_in = ep("10.0.0.3", 3_306);
        let mut t = t0;
        // BEGIN (client untraced: receive only).
        g.rec(r, 0, o, t, tid, RawOp::Receive, client, web_front, 300);
        t += 50_000;
        if q > 0 {
            // web → app request.
            g.message(
                r,
                o,
                (0, tid),
                (1, tid),
                web_out,
                app_in,
                t,
                t + 200_000,
                600,
                parts,
            );
            t += 400_000;
            for _ in 0..q {
                g.message(
                    r,
                    o,
                    (1, tid),
                    (2, tid),
                    app_out,
                    db_in,
                    t,
                    t + 150_000,
                    250,
                    parts,
                );
                t += 300_000;
                g.message(
                    r,
                    o,
                    (2, tid),
                    (1, tid),
                    db_in,
                    app_out,
                    t,
                    t + 150_000,
                    2_000 + 137 * r as u64,
                    parts.wrapping_add(1),
                );
                t += 300_000;
            }
            // app → web response.
            g.message(
                r,
                o,
                (1, tid),
                (0, tid),
                app_in,
                web_out,
                t,
                t + 200_000,
                5_000,
                parts,
            );
            t += 400_000;
        } else {
            t += 500_000;
        }
        // END: response to the client in two chunks.
        g.rec(r, 0, o, t, tid, RawOp::Send, web_front, client, 2_048);
        g.rec(
            r,
            0,
            o,
            t + 2_000,
            tid,
            RawOp::Send,
            web_front,
            client,
            1_024,
        );
    }
    let mut truth: Vec<Vec<u64>> = g.truth;
    for t in &mut truth {
        t.sort_unstable();
    }
    (g.records, truth)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Exactness on arbitrary synthetic populations: every request's
    /// records — and nothing else — form one CAG.
    #[test]
    fn synthetic_populations_correlate_exactly(s in synth_strategy()) {
        let (records, truth) = build(&s);
        let access = AccessPointSpec::new(
            [80],
            ["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap(), "10.0.0.3".parse().unwrap()],
        );
        let config = CorrelatorConfig::new(access)
            .with_window(Nanos::from_millis(s.window_ms));
        let out = Pipeline::new(config.into()).unwrap().run(records.into()).unwrap();
        prop_assert_eq!(out.cags.len(), truth.len(), "{}", out.metrics.summary());
        let mut got: Vec<Vec<u64>> = out.cags.iter().map(|c| c.sorted_tags()).collect();
        got.sort();
        let mut want = truth;
        want.sort();
        prop_assert_eq!(got, want);
        for cag in &out.cags {
            prop_assert!(cag.validate().is_ok());
        }
    }

    /// Byte conservation: the merged SEND vertex sizes equal the sum of
    /// the original chunk sizes on every channel.
    #[test]
    fn merging_conserves_bytes(s in synth_strategy()) {
        let (records, _) = build(&s);
        let sent_total: u64 = records
            .iter()
            .filter(|r| matches!(r.op, tracer_core::raw::RawOp::Send))
            .map(|r| r.size)
            .sum();
        let access = AccessPointSpec::new(
            [80],
            ["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap(), "10.0.0.3".parse().unwrap()],
        );
        let config = CorrelatorConfig::new(access).with_window(Nanos::from_millis(10));
        let out = Pipeline::new(config.into()).unwrap().run(records.into()).unwrap();
        let vertex_send_total: u64 = out
            .cags
            .iter()
            .flat_map(|c| c.vertices.iter())
            .filter(|v| v.ty.is_send_like())
            .map(|v| v.size)
            .sum();
        prop_assert_eq!(vertex_send_total, sent_total);
    }

    /// Ranker options that weaken the algorithm cannot *improve* on the
    /// full configuration, and the full configuration is always exact.
    #[test]
    fn swap_disabled_is_never_better(s in synth_strategy()) {
        let (records, truth) = build(&s);
        let access = AccessPointSpec::new(
            [80],
            ["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap(), "10.0.0.3".parse().unwrap()],
        );
        let base = CorrelatorConfig::new(access).with_window(Nanos::from_millis(s.window_ms));
        let weak = base.clone().with_ranker(RankerOptions { swap: false, ..base.ranker });
        let full = Pipeline::new(base.into()).unwrap().run(records.clone().into()).unwrap();
        let weak_out = Pipeline::new(weak.into()).unwrap().run(records.into()).unwrap();
        prop_assert_eq!(full.cags.len(), truth.len());
        prop_assert!(weak_out.cags.len() <= full.cags.len());
    }
}
