//! Error-path coverage for `raw::parse_log`: malformed TCP_TRACE lines
//! must surface as typed [`TraceError`] variants — never panics — and
//! the error must identify both the offending line and the reason.

use tracer_core::prelude::*;
use tracer_core::TraceError;

/// Parses `line` expecting a `TraceError::Parse` and returns its reason.
fn parse_err(line: &str) -> String {
    match parse_log(line) {
        Err(TraceError::Parse { input, reason }) => {
            // Depending on which field failed, the error echoes either
            // the whole line or just the offending fragment.
            assert!(
                line.contains(input.trim_end_matches("...")),
                "error should echo the offending input: {input:?} vs {line:?}"
            );
            reason
        }
        Err(other) => panic!("expected TraceError::Parse for {line:?}, got {other:?}"),
        Ok(recs) => panic!("expected parse failure for {line:?}, got {recs:?}"),
    }
}

const VALID: &str = "1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120";

#[test]
fn missing_fields_name_the_first_absent_one() {
    assert!(parse_err("1000").contains("missing field: hostname"));
    assert!(parse_err("1000 web").contains("missing field: program"));
    assert!(parse_err("1000 web httpd").contains("missing field: pid"));
    assert!(parse_err("1000 web httpd 7").contains("missing field: tid"));
    assert!(parse_err("1000 web httpd 7 7").contains("missing field: op"));
    assert!(parse_err("1000 web httpd 7 7 RECEIVE").contains("missing field: channel"));
    assert!(
        parse_err("1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80")
            .contains("missing field: size")
    );
}

#[test]
fn malformed_scalar_fields_are_typed_parse_errors() {
    assert!(parse_err(&VALID.replace("1000 ", "12.5 ")).contains("bad timestamp"));
    assert!(parse_err(&VALID.replace(" 7 7 ", " seven 7 ")).contains("bad pid"));
    assert!(parse_err(&VALID.replace(" 7 7 ", " 7 -1 ")).contains("bad tid"));
    assert!(parse_err(&VALID.replace(" 120", " lots")).contains("bad size"));
    assert!(parse_err(&VALID.replace(" 120", " 120 extra")).contains("trailing fields"));
}

#[test]
fn bad_op_is_rejected() {
    let reason = parse_err(&VALID.replace("RECEIVE", "RECV"));
    assert!(reason.contains("expected SEND or RECEIVE"), "{reason}");
}

#[test]
fn bad_endpoints_are_rejected() {
    // No '-' separating the two endpoints.
    assert!(parse_err(&VALID.replace('-', "+")).contains("channel missing '-'"));
    // Endpoint without a port.
    assert!(parse_err(&VALID.replace("192.168.0.9:5000", "192.168.0.9"))
        .contains("endpoint missing ':'"));
    // Non-numeric and out-of-range IP octets.
    assert!(parse_err(&VALID.replace("192.168.0.9", "192.168.0.x")).contains("bad IPv4 address"));
    assert!(parse_err(&VALID.replace("192.168.0.9", "300.0.0.1")).contains("bad IPv4 address"));
    // Port outside u16.
    assert!(parse_err(&VALID.replace(":5000", ":70000")).contains("bad port"));
}

#[test]
fn first_bad_line_aborts_a_multi_line_parse() {
    let text = format!("{VALID}\nnot a record\n{VALID}\n");
    match parse_log(&text) {
        Err(TraceError::Parse { input, .. }) => assert!(input.starts_with("not a record")),
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn error_display_is_stable_for_cli_assertions() {
    let err = parse_log("garbage line").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("cannot parse trace record"), "{msg}");
    assert!(msg.contains("garbage line"), "{msg}");
}

/// Out-of-order timestamps are *not* a parse error: the paper's probe
/// merges per-node logs, so the ranker re-sorts within its window. The
/// full pipeline must accept a shuffled log without panicking and still
/// correlate it exactly.
#[test]
fn out_of_order_timestamps_parse_and_correlate() {
    let log = "\
2000 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:9000 64
1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120
4000 app java 9 21 SEND 10.0.0.2:9000-10.0.0.1:4001 256
2500 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 64
5000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512
4400 web httpd 7 7 RECEIVE 10.0.0.2:9000-10.0.0.1:4001 256
";
    let records = parse_log(log).expect("out-of-order lines still parse");
    assert_eq!(records.len(), 6);
    let access = AccessPointSpec::new(
        [80],
        ["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap()],
    );
    let out = Pipeline::new(PipelineConfig::new(access))
        .expect("valid config")
        .run(Source::records(records))
        .expect("shuffled log correlates without error");
    assert_eq!(out.cags.len(), 1);
    assert_eq!(out.cags[0].vertices.len(), 6);
    assert!(out.cags[0].validate().is_ok());
}
